//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls against the vendored
//! `serde` crate's value-tree model. The input is parsed directly from
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline), which is sufficient because every derived type in this
//! workspace is a non-generic struct or enum.
//!
//! Supported shapes:
//! - named-field structs (with `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes)
//! - newtype structs (serialized transparently)
//! - enums with unit variants (`"Variant"`), one-field tuple variants
//!   (`{"Variant": value}`), and struct variants
//!   (`{"Variant": {..fields..}}`) — upstream's externally-tagged format

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` via the value-tree model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` via the value-tree model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    /// Tuple struct with the given arity (only 1 is supported downstream).
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum FieldDefault {
    /// No attribute: absence falls back to `Deserialize::from_missing`.
    Required,
    /// `#[serde(default)]`.
    Std,
    /// `#[serde(default = "path")]`.
    Path(String),
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes leading `#[...]` attributes, returning the field default
    /// if any of them is a `#[serde(default...)]`.
    fn eat_attrs(&mut self) -> FieldDefault {
        let mut default = FieldDefault::Required;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if let Some(d) = parse_serde_attr(g.stream()) {
                        default = d;
                    }
                }
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
        default
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, etc.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips a type expression up to a top-level `,` (angle-bracket aware),
    /// without consuming the comma.
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Extracts a `default` spec from the inside of a `#[...]` group, if it is
/// a `serde(...)` attribute carrying one.
fn parse_serde_attr(stream: TokenStream) -> Option<FieldDefault> {
    let mut c = Cursor::new(stream);
    if !c.eat_ident("serde") {
        return None;
    }
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("serde_derive: malformed #[serde] attribute, found {other:?}"),
    };
    let mut inner = Cursor::new(group.stream());
    if !inner.eat_ident("default") {
        panic!(
            "serde_derive (vendored): unsupported #[serde(...)] attribute: {}",
            group.stream()
        );
    }
    if inner.eat_punct('=') {
        match inner.next() {
            Some(TokenTree::Literal(lit)) => {
                let s = lit.to_string();
                let path = s.trim_matches('"').to_string();
                Some(FieldDefault::Path(path))
            }
            other => panic!("serde_derive: expected path literal after default =, found {other:?}"),
        }
    } else {
        Some(FieldDefault::Std)
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();

    let keyword = loop {
        if c.eat_ident("struct") {
            break "struct";
        }
        if c.eat_ident("enum") {
            break "enum";
        }
        if c.next().is_none() {
            panic!("serde_derive: expected `struct` or `enum`");
        }
    };

    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported ({name})");
        }
    }

    let body = match c.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde_derive: expected item body for {name}, found {other:?}"),
    };

    let kind = match (keyword, body.delimiter()) {
        ("struct", Delimiter::Brace) => Kind::NamedStruct(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Kind::TupleStruct(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Kind::Enum(parse_variants(body.stream())),
        _ => panic!("serde_derive: unsupported item shape for {name}"),
    };

    Item { name, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.eat_attrs();
        c.eat_visibility();
        let name = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    if c.at_end() {
        return 0;
    }
    let mut count = 1;
    loop {
        c.skip_type();
        if c.eat_punct(',') {
            if c.at_end() {
                break; // trailing comma
            }
            count += 1;
        } else {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.eat_attrs();
        let name = c.expect_ident();
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                if arity != 1 {
                    panic!(
                        "serde_derive (vendored): tuple variant {name} must have exactly \
                         one field, has {arity}"
                    );
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "map.insert(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Kind::TupleStruct(arity) => {
            if *arity != 1 {
                panic!("serde_derive (vendored): tuple struct {name} must have exactly one field");
            }
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{v}(inner) => {{\n\
                         let mut map = ::serde::Map::new();\n\
                         map.insert(\"{v}\".to_string(), ::serde::Serialize::to_value(inner));\n\
                         ::serde::Value::Object(map)\n}}\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut fields = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fields.insert(\"{0}\".to_string(), \
                                 ::serde::Serialize::to_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n{inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(\"{v}\".to_string(), ::serde::Value::Object(fields));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            v = v.name,
                            binds = bindings.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression evaluating to the field's value when its key is absent.
fn missing_expr(item: &str, f: &Field) -> String {
    match &f.default {
        FieldDefault::Std => "::std::default::Default::default()".to_string(),
        FieldDefault::Path(p) => format!("{p}()"),
        FieldDefault::Required => format!(
            "match ::serde::Deserialize::from_missing() {{\n\
             ::std::option::Option::Some(v) => v,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::DeError::msg(\"missing field `{field}` in {item}\")),\n}}",
            field = f.name,
        ),
    }
}

/// Struct-literal field initializers reading from an object `obj`.
fn named_field_inits(item: &str, fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields {
        s.push_str(&format!(
            "{field}: match obj.get(\"{field}\") {{\n\
             ::std::option::Option::Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            field = f.name,
            missing = missing_expr(item, f),
        ));
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => format!(
            "let obj = v.as_object().ok_or_else(|| \
             ::serde::DeError::msg(\"expected object for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{\n{inits}}})",
            inits = named_field_inits(name, fields),
        ),
        Kind::TupleStruct(arity) => {
            if *arity != 1 {
                panic!("serde_derive (vendored): tuple struct {name} must have exactly one field");
            }
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => keyed_arms.push_str(&format!(
                        "if let ::std::option::Option::Some(inner) = obj.get(\"{v}\") {{\n\
                         return ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(inner)?));\n}}\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => keyed_arms.push_str(&format!(
                        "if let ::std::option::Option::Some(inner) = obj.get(\"{v}\") {{\n\
                         let obj = inner.as_object().ok_or_else(|| \
                         ::serde::DeError::msg(\"expected object for {name}::{v}\"))?;\n\
                         return ::std::result::Result::Ok({name}::{v} {{\n{inits}}});\n}}\n",
                        v = v.name,
                        inits = named_field_inits(name, fields),
                    )),
                }
            }
            format!(
                "if let ::serde::Value::String(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                 {keyed_arms}\
                 let _ = obj;\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::msg(\
                 \"unrecognised {name} variant\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
