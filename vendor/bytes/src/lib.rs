//! Offline vendored stand-in for the [`bytes`] crate.
//!
//! `Vec<u8>`-backed [`Bytes`] / [`BytesMut`] plus the [`Buf`] / [`BufMut`]
//! accessors this workspace's wire protocol uses. Upstream's zero-copy
//! reference counting is intentionally omitted: frames here are built
//! once and read once, so an owned buffer is equivalent.
//!
//! [`bytes`]: https://crates.io/crates/bytes

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer for frame construction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a growing buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access over a byte cursor, mirroring `bytes::Buf`.
///
/// Every accessor panics when the buffer has too few bytes remaining,
/// matching upstream behaviour.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xdead_beef);
        buf.put_u8(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-2.5);
        assert_eq!(buf.len(), 4 + 1 + 8 + 4);

        let frame = buf.freeze();
        assert_eq!(&frame[0..4], &0xdead_beefu32.to_le_bytes());

        let mut cursor: &[u8] = &frame;
        assert_eq!(cursor.get_u32_le(), 0xdead_beef);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.get_f32_le(), -2.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let data = [1u8, 2];
        let mut cursor: &[u8] = &data;
        cursor.get_u32_le();
    }
}
