//! Offline vendored stand-in for the [`serde_json`] crate.
//!
//! JSON printing and parsing over the vendored `serde` crate's [`Value`]
//! tree, covering the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], the [`json!`] macro,
//! and the [`Value`]/[`Map`]/[`Number`] types.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// Error from JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstructs `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, flat arrays, object literals with string-literal keys,
/// and any serializable expression — the shapes this workspace writes.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value must serialize")
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-walk UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg(format!("invalid token at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": "x\ny"}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        assert!(compact.contains("\"a\":[1,2.5,-3]"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1f32, 1.0 / 3.0, f32::MAX, f32::MIN_POSITIVE, -2.5e-20] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
        for &f in &[0.1f64, 1.0 / 3.0, 1e300] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"name": "x", "n": 3, "acc": 0.5});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"name":"x","n":3,"acc":0.5}"#);
        assert_eq!(json!(null), Value::Null);
        let arr = json!([1, 2]);
        assert_eq!(to_string(&arr).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({"a": 1});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn u64_seed_round_trips() {
        let seed: u64 = u64::MAX - 3;
        let s = to_string(&seed).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(seed, back);
    }
}
