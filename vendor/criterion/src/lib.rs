//! Offline vendored stand-in for the [`criterion`] crate.
//!
//! A minimal wall-clock benchmark harness exposing the macro/builder
//! surface this workspace uses: [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], [`Bencher::iter`], and [`black_box`]. Statistics are
//! simple (mean/median of timed samples) but honest; there are no HTML
//! reports or regression baselines.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from the standard library.
pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, id, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; drop would also do).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally carrying a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into the printable benchmark id.
pub trait IntoBenchmarkId {
    /// The final id text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: BencherMode,
    /// Iterations per sample, chosen during warm-up.
    iters_per_sample: u64,
    /// Collected per-iteration times (seconds), one entry per sample.
    samples: Vec<f64>,
}

enum BencherMode {
    /// Warm-up: estimate cost per iteration.
    Calibrate { spent: Duration, budget: Duration },
    /// Measurement: record `samples`.
    Measure,
}

impl Bencher {
    /// Times `routine`, running it in batches sized during warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            BencherMode::Calibrate { spent, budget } => {
                let mut iters = 0u64;
                while *spent < *budget {
                    let start = Instant::now();
                    black_box(routine());
                    *spent += start.elapsed();
                    iters += 1;
                }
                // Aim for roughly measurement_time / sample_size per sample.
                self.iters_per_sample = iters.max(1);
            }
            BencherMode::Measure => {
                let iters = self.iters_per_sample.max(1);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let total = start.elapsed().as_secs_f64();
                self.samples.push(total / iters as f64);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, id: &str, mut f: F) {
    // Warm-up pass: run the routine for warm_up_time to estimate cost.
    let mut bencher = Bencher {
        mode: BencherMode::Calibrate {
            spent: Duration::ZERO,
            budget: criterion.warm_up_time,
        },
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let warm_iters = bencher.iters_per_sample;
    let warm_secs = criterion.warm_up_time.as_secs_f64().max(1e-9);
    let per_iter = warm_secs / warm_iters as f64;
    let per_sample_budget = criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    let iters_per_sample = ((per_sample_budget / per_iter).round() as u64).max(1);

    // Measurement pass: sample_size timed batches.
    bencher.mode = BencherMode::Measure;
    bencher.iters_per_sample = iters_per_sample;
    bencher.samples.clear();
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
    }

    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = sorted[sorted.len() / 2];
    println!(
        "bench: {id:<50} mean {:>12}  median {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(median),
        sorted.len(),
        iters_per_sample,
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_tiny_benchmark() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("incr", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(count > 0);
    }
}
