//! Offline vendored stand-in for the [`proptest`] crate.
//!
//! Implements the property-testing surface this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] implementations for numeric ranges,
//! [`any`], [`collection::vec`], and the `prop_assert*`/`prop_assume!`
//! macros. Cases are generated from a deterministic seed derived from the
//! test name, so failures reproduce exactly; there is no shrinking —
//! the failing inputs are printed instead.
//!
//! [`proptest`]: https://crates.io/crates/proptest

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors `proptest::proptest!` for the shapes
/// this workspace writes: an optional `#![proptest_config(...)]` header
/// followed by `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    &$cfg,
                    |__rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(
                            let $arg = $crate::Strategy::generate(&($strat), __rng);
                        )*
                        // Snapshot inputs now: the body may consume them.
                        let __inputs = format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                            $(&$arg),*
                        );
                        let __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        match __case() {
                            ::std::result::Result::Ok(()) => ::std::result::Result::Ok(()),
                            ::std::result::Result::Err(e) => {
                                if let $crate::TestCaseError::Fail(_) = &e {
                                    eprint!("proptest case inputs:\n{__inputs}");
                                }
                                ::std::result::Result::Err(e)
                            }
                        }
                    },
                );
            }
        )*
    };
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
}

/// Driver behind [`proptest!`]: runs `cfg.cases` deterministic cases.
pub fn run_cases(
    name: &str,
    cfg: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    use rand::SeedableRng;

    let base = seed_for(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    // Allow generous rejection headroom, like upstream's max_global_rejects.
    let max_attempts = cfg.cases.saturating_mul(16).max(1024);
    while passed < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest `{name}`: too many rejected cases ({passed}/{} passed after \
                 {attempts} attempts)",
                cfg.cases
            );
        }
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(attempts as u64));
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {attempts}: {msg}");
            }
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_hold(x in 0usize..10, f in -1.0f32..1.0, b in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(b || !b);
        }

        fn vec_lengths(v in collection::vec(0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        fn nested_vec(m in collection::vec(collection::vec(0u8..=255, 4), 2..4)) {
            prop_assert!(m.iter().all(|row| row.len() == 4));
        }

        fn assume_rejects(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("nope".to_string()))
        });
    }
}
