//! Offline vendored stand-in for the [`rand`] crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of the exact `rand`
//! API surface it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality,
//! fast, and fully deterministic. Note the stream is **not** bit-compatible
//! with upstream `rand`'s ChaCha12-based `StdRng`; nothing in this
//! workspace depends on upstream streams, only on per-seed determinism.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// A random number generator seeded from explicit entropy.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random value of a supported type (`bool`, ints, unit
    /// floats) — mirrors `rand::Rng::gen`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distribution of "a plain random value" for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        uniform_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        uniform_f32(rng)
    }
}

/// Uniform in `[0, 1)` with 53 random bits.
fn uniform_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1)` with 24 random bits.
fn uniform_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let draw = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_range {
    ($($t:ty => $uniform:ident),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start + (self.end - self.start) * $uniform(rng);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let v = lo + (hi - lo) * $uniform(rng);
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_float_range!(f32 => uniform_f32, f64 => uniform_f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    ///
    /// Seeded through SplitMix64 per Blackman & Vigna's reference
    /// recommendation, so nearby `u64` seeds produce well-decorrelated
    /// streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(0.5..=2.0);
            assert!((0.5..=2.0).contains(&g));
        }
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            if f < 0.25 {
                lo_seen = true;
            }
            if f > 0.75 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen, "uniform draws should cover the range");
    }
}
