//! Offline vendored stand-in for the [`rand_distr`] crate.
//!
//! Implements exactly the surface this workspace uses: the
//! [`Distribution`] trait plus [`Normal`] and [`LogNormal`] over `f32`
//! and `f64`, sampled with Box–Muller. Streams are deterministic per
//! RNG seed but not bit-compatible with upstream `rand_distr` (nothing
//! here depends on upstream streams).
//!
//! [`rand_distr`]: https://crates.io/crates/rand_distr

use rand::Rng;

/// Types that can produce samples of `T` from an [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The standard deviation (or shape parameter) was negative or NaN.
    BadVariance,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and non-negative"),
        }
    }
}

impl std::error::Error for Error {}

/// Floating-point ops the distributions need, implemented for `f32`/`f64`
/// so `Normal<F>` can offer one generic constructor (letting inference
/// resolve `F` from the arguments, as upstream does).
pub trait Float: Copy + PartialOrd {
    /// Archimedes' constant at this precision.
    const PI: Self;
    /// Zero.
    const ZERO: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// `self * rhs`.
    fn mul(self, rhs: Self) -> Self;
    /// `self + rhs`.
    fn add(self, rhs: Self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Square root of `-2 * self`.
    fn neg_two_ln_sqrt(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Whether the value is NaN.
    fn is_nan(self) -> bool;
    /// Two at this precision.
    const TWO: Self;
    /// Uniform draw in `[0, 1)`.
    fn unit<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_float {
    ($f:ty, $pi:expr, $shift:expr, $denom:expr) => {
        impl Float for $f {
            const PI: $f = $pi;
            const ZERO: $f = 0.0;
            const MIN_POSITIVE: $f = <$f>::MIN_POSITIVE;
            const TWO: $f = 2.0;

            fn mul(self, rhs: Self) -> Self {
                self * rhs
            }

            fn add(self, rhs: Self) -> Self {
                self + rhs
            }

            fn ln(self) -> Self {
                <$f>::ln(self)
            }

            fn neg_two_ln_sqrt(self) -> Self {
                (-2.0 * <$f>::ln(self)).sqrt()
            }

            fn cos(self) -> Self {
                <$f>::cos(self)
            }

            fn exp(self) -> Self {
                <$f>::exp(self)
            }

            fn is_nan(self) -> bool {
                <$f>::is_nan(self)
            }

            fn unit<R: Rng + ?Sized>(rng: &mut R) -> Self {
                (rng.next_u64() >> $shift) as $f * (1.0 / $denom as $f)
            }
        }
    };
}

impl_float!(f32, std::f32::consts::PI, 40, (1u64 << 24));
impl_float!(f64, std::f64::consts::PI, 11, (1u64 << 53));

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates `N(mean, std_dev²)`; errors if `std_dev` is negative or NaN.
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        if std_dev.is_nan() || std_dev < F::ZERO {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: two uniforms -> one standard normal draw. u1 is
        // nudged away from zero so ln(u1) stays finite.
        let mut u1 = F::unit(rng);
        if u1 < F::MIN_POSITIVE {
            u1 = F::MIN_POSITIVE;
        }
        let u2 = F::unit(rng);
        let r = u1.neg_two_ln_sqrt();
        let theta = F::TWO.mul(F::PI).mul(u2);
        self.mean.add(self.std_dev.mul(r.mul(theta.cos())))
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl<F: Float> LogNormal<F> {
    /// Creates `exp(N(mu, sigma²))`; errors if `sigma` is negative or NaN.
    pub fn new(mu: F, sigma: F) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_match() {
        let dist = Normal::new(3.0f64, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn f32_inference_from_arguments() {
        let dist = Normal::new(0.0f32, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x: f32 = dist.sample(&mut rng);
        assert!(x.is_finite());
    }

    #[test]
    fn lognormal_is_positive() {
        let dist = LogNormal::new(0.0f64, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn negative_std_dev_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(LogNormal::new(0.0f64, -0.5).is_err());
    }
}
