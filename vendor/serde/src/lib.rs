//! Offline vendored stand-in for the [`serde`] crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a simplified serialization framework with the same public
//! shape it relies on: `#[derive(Serialize, Deserialize)]`, the
//! [`Serialize`] / [`Deserialize`] traits, and (via the companion
//! `serde_json` stand-in) JSON round-tripping.
//!
//! Instead of upstream's visitor-based zero-copy machinery, this
//! implementation converts through an owned [`Value`] tree — dramatically
//! simpler, and fully sufficient for the config/checkpoint/report sizes
//! this workspace handles.
//!
//! [`serde`]: https://crates.io/crates/serde

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Map, Number, Value};

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent from the input.
    ///
    /// `None` means "absence is an error" (unless the field carries a
    /// `#[serde(default)]` attribute). `Option<T>` overrides this so
    /// missing optional fields deserialize to `None`, matching upstream
    /// serde's behaviour.
    fn from_missing() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .ok_or_else(|| DeError::msg(format!("expected integer, got {}", v.kind())))?;
                n.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| {
                        DeError::msg(format!("number {n} out of range for {}", stringify!($t)))
                    })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_u64(*self))
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_number()
            .ok_or_else(|| DeError::msg(format!("expected integer, got {}", v.kind())))?;
        n.as_u64()
            .ok_or_else(|| DeError::msg(format!("number {n} out of range for u64")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so JSON round-trips recover the bit pattern.
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_number()
            .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))?;
        Ok(n.as_f64() as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_number()
            .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))?;
        Ok(n.as_f64())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::msg(format!(
                "expected 2-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::msg(format!(
                "expected 3-element array, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            other => Err(DeError::msg(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}
