//! The owned value tree shared by the `serde` and `serde_json`
//! stand-ins.

/// An arbitrary JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// Short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The contained number, if this is a `Number`.
    pub fn as_number(&self) -> Option<&Number> {
        match self {
            Value::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The contained string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The contained object, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A JSON number: either an exact integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer (covers every integer this workspace serializes
    /// except large `u64` seeds).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Double-precision float.
    Float(f64),
}

impl Number {
    /// Wraps a signed integer.
    pub fn from_i64(i: i64) -> Self {
        Number::Int(i)
    }

    /// Wraps an unsigned integer, compactly as `Int` when it fits.
    pub fn from_u64(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => Number::Int(i),
            Err(_) => Number::UInt(u),
        }
    }

    /// Wraps a float.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// This number as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// This number as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// This number as `f64` (lossy for huge integers, like upstream).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        // Keep integral floats recognisable as numbers
                        // ("2.0" rather than "2" would also be fine, but
                        // "2.0" round-trips unambiguously as float).
                        write!(f, "{x:.1}")
                    } else {
                        // `{}` on f64 prints the shortest string that
                        // round-trips, so floats survive JSON exactly.
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/inf; upstream serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring
/// `serde_json::Map<String, Value>` with `preserve_order` semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` at `key`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}
