//! # HierAdMo
//!
//! A from-scratch Rust reproduction of *Hierarchical Federated Learning
//! with Adaptive Momentum in Multi-Tier Networks* (Yang, Fu, Bao, Yuan,
//! Zhou — IEEE ICDCS 2023).
//!
//! HierAdMo runs Nesterov momentum at **two** levels of a
//! worker → edge → cloud federation and adapts the edge momentum factor
//! `γℓ` online from the measured agreement (cosine) between worker
//! gradients and momenta, so the two momenta never fight each other.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `hieradmo-core` | HierAdMo + 10 baselines, driver, theory |
//! | [`models`] | `hieradmo-models` | linear/logistic/MLP/CNN/VGG/ResNet zoo |
//! | [`data`] | `hieradmo-data` | synthetic datasets, non-iid partitioners |
//! | [`topology`] | `hieradmo-topology` | hierarchies, schedules, weights |
//! | [`netsim`] | `hieradmo-netsim` | trace-driven delay simulation |
//! | [`simrt`] | `hieradmo-simrt` | event-driven co-simulation runtime |
//! | [`metrics`] | `hieradmo-metrics` | curves, summaries, tables |
//! | [`tensor`] | `hieradmo-tensor` | vectors/matrices/conv substrate |
//!
//! # Quickstart
//!
//! ```
//! use hieradmo::core::algorithms::HierAdMo;
//! use hieradmo::core::{run, RunConfig};
//! use hieradmo::data::partition::x_class_partition;
//! use hieradmo::data::synthetic::SyntheticDataset;
//! use hieradmo::models::zoo;
//! use hieradmo::topology::Hierarchy;
//!
//! // 2 edges × 2 workers on a 2-class non-iid MNIST-like problem.
//! let tt = SyntheticDataset::mnist_like(10, 5, 1);
//! let hierarchy = Hierarchy::balanced(2, 2);
//! let shards = x_class_partition(&tt.train, 4, 2, 1);
//! let model = zoo::logistic_regression(&tt.train, 1);
//!
//! let cfg = RunConfig { tau: 5, pi: 2, total_iters: 20, eval_every: 20, ..RunConfig::default() };
//! let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
//! let result = run(&algo, &model, &hierarchy, &shards, &tt.test, &cfg)?;
//! println!("accuracy: {:?}", result.curve.final_accuracy());
//! # Ok::<(), hieradmo::core::RunError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries that regenerate every table
//! and figure of the paper.

pub use hieradmo_core as core;
pub use hieradmo_data as data;
pub use hieradmo_metrics as metrics;
pub use hieradmo_models as models;
pub use hieradmo_netsim as netsim;
pub use hieradmo_simrt as simrt;
pub use hieradmo_tensor as tensor;
pub use hieradmo_topology as topology;

/// Convenience re-exports for the common workflow: build data → partition
/// → pick a model and an algorithm → run.
///
/// ```
/// use hieradmo::prelude::*;
///
/// let tt = SyntheticDataset::mnist_like(10, 5, 1);
/// let shards = x_class_partition(&tt.train, 4, 5, 1);
/// let model = zoo::logistic_regression(&tt.train, 1);
/// let cfg = RunConfig { tau: 5, pi: 2, total_iters: 10, eval_every: 10, ..RunConfig::default() };
/// let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
/// let res = run(&algo, &model, &Hierarchy::balanced(2, 2), &shards, &tt.test, &cfg)?;
/// assert!(res.curve.final_accuracy().is_some());
/// # Ok::<(), hieradmo::core::RunError>(())
/// ```
pub mod prelude {
    pub use hieradmo_core::algorithms::{
        Cfl, FastSlowMo, FedAdc, FedAvg, FedMom, FedNag, GammaMode, HierAdMo, HierFavg, Mime,
        SlowMo,
    };
    pub use hieradmo_core::{run, RunConfig, RunError, RunResult, Strategy};
    pub use hieradmo_data::partition::{dirichlet_partition, iid_partition, x_class_partition};
    pub use hieradmo_data::synthetic::SyntheticDataset;
    pub use hieradmo_data::{Batcher, Dataset, FeatureShape, Sample, Target};
    pub use hieradmo_metrics::{ConvergenceCurve, EvalPoint, MeanStd};
    pub use hieradmo_models::{zoo, Model, Sequential};
    pub use hieradmo_tensor::Vector;
    pub use hieradmo_topology::{Hierarchy, Schedule, Weights};
}
