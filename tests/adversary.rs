//! Chaos-grade suite for the Byzantine-resilient aggregation layer.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Equivalence** — an adversarial run is the *same trajectory* in the
//!    core driver and the co-simulation under full sync, bitwise, for any
//!    thread count (including the noise-drawing attack, which proves the
//!    per-worker adversary RNG streams are aligned across engines); and a
//!    defense whose rule never triggers (zero trim, unreachable clip
//!    threshold) is bitwise identical to the plain data-weighted mean.
//! 2. **Defense** — a strict minority of sign-flipping workers under the
//!    coordinate-wise trimmed mean or median lands within 2 % of the clean
//!    final accuracy, while the undefended mean visibly degrades.
//! 3. **Determinism** — the same `(AdversaryPlan, FaultPlan, seed)` replays
//!    bitwise across thread counts, poisoned-upload counters included.
//! 4. **Plumbing** — counters export through `SimRunRecord`; invalid plans
//!    are rejected before any event is processed.

mod common;

use common::{
    assert_bitwise_equal, sim_config, sim_fixture, small_tier_trees, tiered_fixture,
    tiered_sim_config, wide_sim_fixture,
};
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RobustAggregator, RunConfig, RunError};
use hieradmo::metrics::export::{sim_run_from_json, sim_run_to_json, SimRunRecord};
use hieradmo::models::zoo;
use hieradmo::netsim::{
    AdversaryPlan, AttackModel, ByzantineWorker, CrashProfile, FaultPlan, LinkFaults,
};
use hieradmo::simrt::{simulate, SimError, SyncPolicy};
use proptest::prelude::*;

/// One attacker of each flavor on the 2 × 2 fixture (worker 1 stays
/// honest): a model flipper, a noise injector and a momentum poisoner.
fn mixed_plan() -> AdversaryPlan {
    AdversaryPlan {
        byzantine: vec![
            ByzantineWorker {
                worker: 0,
                attack: AttackModel::SignFlip { scale: 3.0 },
            },
            ByzantineWorker {
                worker: 2,
                attack: AttackModel::GaussianNoise { norm: 4.0 },
            },
            ByzantineWorker {
                worker: 3,
                attack: AttackModel::MomentumPoison { scale: 5.0 },
            },
        ],
    }
}

// ---------------------------------------------------------------------
// 1. Equivalence gates.
// ---------------------------------------------------------------------

/// Under full sync an adversarial run is the same trajectory in both
/// engines, for every defense and thread count. `GaussianNoise` is in the
/// plan on purpose: it only replays bitwise if the co-simulation draws
/// from the same per-worker training-seed streams as the core driver.
#[test]
fn adversarial_full_sync_is_bitwise_identical_to_core_driver() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    for aggregator in [
        RobustAggregator::Mean,
        RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
        RobustAggregator::Median,
        RobustAggregator::NormClip { threshold: 1.0 },
    ] {
        let cfg = RunConfig {
            adversary: mixed_plan(),
            aggregator,
            ..f.cfg.clone()
        };
        let model = zoo::logistic_regression(&f.train, 1);
        let reference = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
        for threads in [1usize, 4] {
            let cfg = RunConfig {
                threads: Some(threads),
                ..cfg.clone()
            };
            let sim = simulate(
                &algo,
                &model,
                &f.hierarchy,
                &f.shards,
                &f.test,
                &cfg,
                &sim_config(7, SyncPolicy::FullSync),
            )
            .unwrap();
            let label = format!("{} threads={threads}", aggregator.label());
            assert_bitwise_equal(&reference, &sim, &label);
            // Both engines tallied the exact same corruption, worker by
            // worker (the sim's actor list leads with the workers).
            for (i, counters) in reference.adversaries.iter().enumerate() {
                assert_eq!(
                    &sim.adversaries[i].counters, counters,
                    "{label}: worker {i} adversary counters differ"
                );
            }
        }
    }
}

/// A defense whose rule never triggers takes the exact
/// `Vector::weighted_average` code path: a zero-trim trimmed mean and an
/// unreachable clip threshold reproduce the plain-mean run bitwise.
#[test]
fn degenerate_defenses_match_plain_mean_bitwise() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let model = zoo::logistic_regression(&f.train, 1);
    let base = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).unwrap();
    for aggregator in [
        // trim_ratio 0.1 over at most 2 children trims ⌊0.2⌋ = 0 entries.
        RobustAggregator::TrimmedMean { trim_ratio: 0.1 },
        RobustAggregator::NormClip { threshold: 1e30 },
    ] {
        let cfg = RunConfig {
            aggregator,
            ..f.cfg.clone()
        };
        let r = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
        let label = aggregator.label();
        assert_eq!(base.curve, r.curve, "{label}: curve differs");
        assert_eq!(
            base.final_params, r.final_params,
            "{label}: final params differ"
        );
        assert_eq!(base.gamma_trace, r.gamma_trace, "{label}: gamma differs");
    }
}

// ---------------------------------------------------------------------
// 2. Defense.
// ---------------------------------------------------------------------

/// The acceptance gate: one sign-flipping worker per edge (2 of 8, a
/// strict minority everywhere) under the trimmed mean or median lands
/// within 2 % of the clean final accuracy, while the plain mean degrades.
#[test]
fn minority_sign_flip_is_defended_by_trimmed_mean_and_median() {
    let f = wide_sim_fixture();
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let model = zoo::logistic_regression(&f.train, 1);
    // Workers 0 and 4: the first worker of each 4-worker edge.
    let attack = AdversaryPlan::uniform([0usize, 4], AttackModel::SignFlip { scale: 3.0 });
    let run_acc = |aggregator: RobustAggregator, adversary: AdversaryPlan| {
        let cfg = RunConfig {
            aggregator,
            adversary,
            ..f.cfg.clone()
        };
        let r = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
        assert!(
            r.final_params.is_finite(),
            "{}: non-finite model",
            aggregator.label()
        );
        r.curve.final_accuracy().unwrap()
    };
    let clean = run_acc(RobustAggregator::Mean, AdversaryPlan::none());
    let undefended = run_acc(RobustAggregator::Mean, attack.clone());
    let trimmed = run_acc(
        RobustAggregator::TrimmedMean { trim_ratio: 0.25 },
        attack.clone(),
    );
    let median = run_acc(RobustAggregator::Median, attack);
    assert!(
        undefended < clean - 0.05,
        "the attack must visibly degrade the plain mean: {undefended} vs clean {clean}"
    );
    assert!(
        trimmed >= clean - 0.02,
        "trimmed mean must stay within 2% of clean: {trimmed} vs {clean}"
    );
    assert!(
        median >= clean - 0.02,
        "median must stay within 2% of clean: {median} vs {clean}"
    );
}

/// The HierAdMo-specific vector: poisoning only the momentum upload. The
/// Eq. 7 factor must stay inside `[0, 0.99]` for every round (the NaN
/// regression guarded in `core::adaptive`) and the model must stay finite
/// even with no robust defense at all.
#[test]
fn momentum_poison_keeps_adaptive_gamma_in_range() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let model = zoo::logistic_regression(&f.train, 1);
    let cfg = RunConfig {
        adversary: AdversaryPlan::uniform([0usize], AttackModel::MomentumPoison { scale: 50.0 }),
        ..f.cfg.clone()
    };
    let r = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
    assert!(r.final_params.is_finite());
    for &(k, g) in &r.gamma_trace {
        assert!(
            (0.0..=0.99).contains(&g),
            "round {k}: poisoned momentum pushed gamma to {g}"
        );
    }
}

// ---------------------------------------------------------------------
// 3. Determinism.
// ---------------------------------------------------------------------

/// Adversary and fault plans compose: the same `(AdversaryPlan, FaultPlan,
/// seed)` replays the whole co-simulation bitwise across thread counts —
/// trajectory, clock, event count, fault counters and poisoned-upload
/// counters.
#[test]
fn combined_adversary_and_fault_plans_replay_bitwise_across_threads() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let faults = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.05,
            min_downtime_ms: 20.0,
            max_downtime_ms: 200.0,
        }),
        link: Some(LinkFaults::flaky()),
        ..FaultPlan::none()
    };
    let model = zoo::logistic_regression(&f.train, 1);
    let run_with = |threads: usize| {
        let cfg = RunConfig {
            threads: Some(threads),
            adversary: mixed_plan(),
            aggregator: RobustAggregator::Median,
            ..f.cfg.clone()
        };
        simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &sim_config(
                7,
                SyncPolicy::Deadline {
                    quorum: 0.5,
                    timeout_ms: 50.0,
                },
            )
            .with_faults(faults.clone()),
        )
        .unwrap()
    };
    let a = run_with(1);
    let b = run_with(4);
    assert_eq!(a.curve, b.curve);
    assert_eq!(a.timed_curve, b.timed_curve);
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.simulated_seconds, b.simulated_seconds);
    assert_eq!(a.events, b.events);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.adversaries, b.adversaries);
    // The plan was live: every Byzantine worker tallied poisoned uploads,
    // everyone else (honest worker, edges, cloud) tallied nothing.
    for adv in &a.adversaries {
        match adv.actor.as_str() {
            "worker-0" | "worker-2" | "worker-3" => assert!(
                adv.counters.poisoned_uploads > 0,
                "{} poisoned nothing",
                adv.actor
            ),
            _ => assert!(
                adv.counters.is_zero(),
                "{} must stay honest, counted {:?}",
                adv.actor,
                adv.counters
            ),
        }
    }
}

// ---------------------------------------------------------------------
// 4. Plumbing: export and validation.
// ---------------------------------------------------------------------

#[test]
fn adversary_counters_export_through_sim_run_record() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let model = zoo::logistic_regression(&f.train, 1);
    let cfg = RunConfig {
        adversary: mixed_plan(),
        aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
        ..f.cfg.clone()
    };
    let sim = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &cfg,
        &sim_config(7, SyncPolicy::FullSync),
    )
    .unwrap();
    assert_eq!(sim.adversaries.len(), 7, "4 workers + 2 edges + cloud");
    let record = SimRunRecord::new(
        sim.algorithm.clone(),
        sim.policy.clone(),
        sim.timed_curve.clone(),
        0.9,
        sim.utilization.clone(),
    )
    .with_faults(sim.faults.clone())
    .with_adversaries(sim.adversaries.clone());
    let back = sim_run_from_json(&sim_run_to_json(&record)).unwrap();
    assert_eq!(back, record);
    assert!(back.adversaries[0].counters.poisoned_uploads > 0);
    // The noise injector drew two calibrated vectors per upload.
    assert_eq!(
        back.adversaries[2].counters.noise_injections,
        2 * back.adversaries[2].counters.poisoned_uploads
    );
}

#[test]
fn invalid_adversary_plans_are_rejected_before_the_run() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let model = zoo::logistic_regression(&f.train, 1);

    // A plan naming a worker outside the topology: both engines refuse.
    let out_of_range = RunConfig {
        adversary: AdversaryPlan::uniform([99usize], AttackModel::SignFlip { scale: 1.0 }),
        ..f.cfg.clone()
    };
    let err = run(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &out_of_range,
    )
    .unwrap_err();
    assert!(matches!(err, RunError::BadConfig(_)), "got {err}");
    let err = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &out_of_range,
        &sim_config(7, SyncPolicy::FullSync),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Adversary(_)), "got {err}");

    // Non-finite attack parameters fail RunConfig validation everywhere.
    let bad_scale = RunConfig {
        adversary: AdversaryPlan::uniform(
            [0usize],
            AttackModel::SignFlip {
                scale: f32::INFINITY,
            },
        ),
        ..f.cfg.clone()
    };
    let err = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &bad_scale).unwrap_err();
    assert!(matches!(err, RunError::BadConfig(_)), "got {err}");
    let err = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &bad_scale,
        &sim_config(7, SyncPolicy::FullSync),
    )
    .unwrap_err();
    assert!(
        matches!(err, SimError::Run(RunError::BadConfig(_))),
        "got {err}"
    );

    // An invalid defense is rejected the same way.
    let bad_defense = RunConfig {
        aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.5 },
        ..f.cfg.clone()
    };
    let err = run(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &bad_defense,
    )
    .unwrap_err();
    assert!(matches!(err, RunError::BadConfig(_)), "got {err}");
}

/// Depth-4 adversary smoke for the CI `adversary-smoke` step: Byzantine
/// workers addressed by tier path, defended by a trimmed mean, replay
/// bitwise across engines and thread counts on an N-tier tree — the
/// middle-tier reductions must neither consume nor skip any adversary
/// RNG draws.
#[test]
fn depth_4_adversary_smoke() {
    use hieradmo::core::run_tiered;
    use hieradmo::topology::{TierPath, TierSpec, TierTree};

    let tree = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(2, 5),
    ])
    .unwrap();
    let f = tiered_fixture(&tree);
    // One attacker per region, by path; GaussianNoise draws RNG, so a
    // misaligned stream breaks bitwise equality immediately.
    let paths = [TierPath(vec![0, 0, 0]), TierPath(vec![1, 1, 0])];
    let plan =
        AdversaryPlan::uniform_at_paths(&tree, &paths, AttackModel::GaussianNoise { norm: 4.0 })
            .unwrap();
    assert_eq!(
        plan.byzantine.iter().map(|b| b.worker).collect::<Vec<_>>(),
        vec![0, 6]
    );
    let cfg = RunConfig {
        adversary: plan,
        aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
        ..f.cfg.clone()
    };
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let reference = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &cfg).unwrap();
    for threads in [1usize, 4] {
        let cfg = RunConfig {
            threads: Some(threads),
            ..cfg.clone()
        };
        let sim = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &tiered_sim_config(&tree, 7, SyncPolicy::FullSync),
        )
        .unwrap();
        assert_bitwise_equal(
            &reference,
            &sim,
            &format!("depth-4 adversary threads={threads}"),
        );
        let poisoned: u64 = sim
            .adversaries
            .iter()
            .map(|a| a.counters.poisoned_uploads)
            .sum();
        assert!(poisoned >= 2, "both attackers must actually fire");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Path-addressed attackers generalize past the fixtures: on random
    /// small tier trees the first worker of the leftmost branch
    /// sign-flips under the trimmed mean, and the tiered core driver
    /// matches the full-sync co-simulation bitwise, poison tally
    /// included.
    #[test]
    fn path_addressed_attacks_are_bitwise_on_random_trees(tree in small_tier_trees()) {
        use hieradmo::core::run_tiered;
        use hieradmo::topology::TierPath;

        let f = tiered_fixture(&tree);
        let path = TierPath(vec![0; tree.levels().len()]);
        let plan = AdversaryPlan::uniform_at_paths(
            &tree,
            &[path],
            AttackModel::SignFlip { scale: 3.0 },
        )
        .unwrap();
        prop_assert_eq!(plan.byzantine[0].worker, 0, "the leftmost path is flat worker 0");
        let cfg = RunConfig {
            adversary: plan,
            aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
            ..f.cfg.clone()
        };
        let model = zoo::logistic_regression(&f.train, 1);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        let reference = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &cfg).unwrap();
        let sim = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &tiered_sim_config(&tree, 31, SyncPolicy::FullSync),
        )
        .unwrap();
        assert_bitwise_equal(&reference, &sim, &format!("random tree {:?}", tree.levels()));
        let poisoned: u64 = sim
            .adversaries
            .iter()
            .map(|a| a.counters.poisoned_uploads)
            .sum();
        prop_assert!(poisoned >= 1, "the attacker must actually fire");
    }
}
