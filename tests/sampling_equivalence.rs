//! Virtual-population gates: full participation delegates to the classic
//! engines bitwise, sampled runs agree bitwise between the tick-driven
//! and event-driven engines, results are invariant to thread count, and
//! the 100k-registered/512-sampled scale smoke replays identically.

mod common;

use common::{sim_config, sim_fixture};
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::population::{run_virtual, ClientSampling, WorkerPopulation};
use hieradmo::core::{run, RobustAggregator, RunConfig, RunResult};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::data::Dataset;
use hieradmo::models::zoo;
use hieradmo::netsim::{AdversaryPlan, Architecture, AttackModel, NetworkEnv};
use hieradmo::simrt::{simulate, simulate_virtual, SimConfig, SimResult, SyncPolicy};

/// A 2-edge federation of 100 registered workers per edge over 4 shards,
/// with a config whose eval rounds (k = 2 at t = 10, k = 4 at t = 20)
/// cover a mid-cloud-window boundary and the final cloud boundary.
fn virtual_fixture() -> (WorkerPopulation, Vec<Dataset>, Dataset, RunConfig) {
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let population = WorkerPopulation::uniform(2, 100, 4).unwrap();
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 10,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 3 },
        ..RunConfig::default()
    };
    (population, shards, tt.test, cfg)
}

fn virtual_sim_config(net_seed: u64) -> SimConfig {
    // 4 worker-device profiles acting as a pool over the population.
    SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        SyncPolicy::FullSync,
    )
}

fn assert_same_trajectory(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.curve, b.curve, "{label}: curve differs");
    assert_eq!(a.final_params, b.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, b.gamma_trace, "{label}: gamma differs");
    assert_eq!(a.cos_trace, b.cos_trace, "{label}: cos differs");
}

fn assert_core_sim_equal(a: &RunResult, sim: &SimResult, label: &str) {
    assert_eq!(a.curve, sim.curve, "{label}: curve differs");
    assert_eq!(a.final_params, sim.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, sim.gamma_trace, "{label}: gamma differs");
    assert_eq!(a.cos_trace, sim.cos_trace, "{label}: cos differs");
}

/// Full participation (the default) must reproduce the classic
/// tick-driven trajectory bitwise — the delegation gate of ISSUE 7.
#[test]
fn full_participation_delegates_to_classic_run_bitwise() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(f.cfg.eta, f.cfg.gamma);
    let model = zoo::logistic_regression(&f.train, 7);
    let legacy = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).unwrap();

    // The population whose edges mirror the fixture's hierarchy; with 4
    // round-robin shards over 4 workers, worker g holds shard g — the
    // same assignment the legacy run used.
    let population = WorkerPopulation::from_hierarchy(&f.hierarchy, 4).unwrap();
    for sampling in [
        ClientSampling::Full,
        ClientSampling::Fraction { fraction: 1.0 },
    ] {
        let cfg = RunConfig {
            sampling,
            ..f.cfg.clone()
        };
        let virt = run_virtual(&algo, &model, &population, &f.shards, &f.test, &cfg).unwrap();
        assert_same_trajectory(&legacy, &virt, "full-participation delegation");
    }
}

/// The event-driven engine's full-participation path delegates to the
/// classic `simulate` — trajectory *and* time axis identical.
#[test]
fn full_participation_delegates_to_classic_simulate_bitwise() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(f.cfg.eta, f.cfg.gamma);
    let model = zoo::logistic_regression(&f.train, 7);
    let sim = sim_config(9, SyncPolicy::FullSync);
    let legacy = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &sim,
    )
    .unwrap();

    let population = WorkerPopulation::from_hierarchy(&f.hierarchy, 4).unwrap();
    let virt =
        simulate_virtual(&algo, &model, &population, &f.shards, &f.test, &f.cfg, &sim).unwrap();
    assert_eq!(legacy.curve, virt.curve);
    assert_eq!(legacy.timed_curve, virt.timed_curve);
    assert_eq!(legacy.final_params, virt.final_params);
    assert_eq!(legacy.events, virt.events);
    assert_eq!(legacy.simulated_seconds, virt.simulated_seconds);
}

/// The sampled regime's cross-engine gate: the tick-driven and
/// event-driven engines agree bitwise on the model trajectory.
#[test]
fn sampled_runs_agree_across_engines_bitwise() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let core = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_core_sim_equal(&core, &sim, "sampled cross-engine");
    assert!(core.curve.final_accuracy().is_some());
    assert!(sim.simulated_seconds > 0.0);
    assert!(sim.events > 0);
    // The trajectory must not depend on the network seed.
    let sim2 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(1234),
    )
    .unwrap();
    assert_eq!(sim.curve, sim2.curve, "net seed leaked into training");
    assert_ne!(
        sim.simulated_seconds, sim2.simulated_seconds,
        "different net seeds should draw different delays"
    );
}

/// Sampled results are bitwise identical for every engine thread count.
#[test]
fn sampled_runs_are_thread_count_invariant() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let one = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let cfg4 = RunConfig {
        threads: Some(4),
        ..cfg.clone()
    };
    let four = run_virtual(&algo, &model, &population, &shards, &test, &cfg4).unwrap();
    assert_same_trajectory(&one, &four, "threads 1 vs 4");

    let s1 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    let s4 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg4,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_eq!(s1.curve, s4.curve);
    assert_eq!(s1.final_params, s4.final_params);
    assert_eq!(s1.simulated_seconds, s4.simulated_seconds);
    assert_eq!(s1.events, s4.events);
}

/// Sampling composes with a robust aggregator and a Byzantine adversary
/// addressed by *global* (population) worker id — identically in both
/// engines, counters included.
#[test]
fn sampling_composes_with_robustness_and_adversaries() {
    let (population, shards, test, mut cfg) = virtual_fixture();
    cfg.aggregator = RobustAggregator::TrimmedMean { trim_ratio: 0.25 };
    // Mark a whole residue stripe of edge 0 Byzantine so sampled cohorts
    // regularly include an attacker.
    let byzantine: Vec<usize> = (0..100).step_by(3).collect();
    cfg.adversary = AdversaryPlan::uniform(byzantine, AttackModel::SignFlip { scale: 2.0 });
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let core = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_core_sim_equal(&core, &sim, "robust + adversary sampled");
    // Someone must actually have been sampled and poisoned, and both
    // engines must agree on every per-attacker tally.
    let total: u64 = core.adversaries.iter().map(|c| c.poisoned_uploads).sum();
    assert!(total > 0, "no Byzantine worker was ever sampled");
    assert_eq!(core.adversaries.len(), sim.adversaries.len());
    for (c, s) in core.adversaries.iter().zip(sim.adversaries.iter()) {
        assert_eq!(*c, s.counters);
    }
}

/// The CI scale smoke: 100k registered workers, 512 sampled per round,
/// replayed bitwise at 1 and 4 engine threads. Memory stays cohort-sized
/// — the 100k registered workers never materialize.
#[test]
fn scale_smoke_100k_registered_512_sampled_is_deterministic() {
    let tt = SyntheticDataset::mnist_like(60, 30, 5);
    let shards = x_class_partition(&tt.train, 4, 2, 5);
    let population = WorkerPopulation::uniform(8, 12_500, 4).unwrap();
    assert_eq!(population.total_workers(), 100_000);
    let cfg = RunConfig {
        tau: 2,
        pi: 1,
        total_iters: 4,
        eval_every: 4,
        batch_size: 8,
        seed: 7,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 64 },
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&tt.train, 3);
    let one = run_virtual(&algo, &model, &population, &shards, &tt.test, &cfg).unwrap();
    let cfg4 = RunConfig {
        threads: Some(4),
        ..cfg.clone()
    };
    let four = run_virtual(&algo, &model, &population, &shards, &tt.test, &cfg4).unwrap();
    assert_same_trajectory(&one, &four, "scale smoke threads 1 vs 4");

    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &tt.test,
        &cfg,
        &virtual_sim_config(3),
    )
    .unwrap();
    assert_core_sim_equal(&one, &sim, "scale smoke cross-engine");
    // O(active) scheduling: far fewer events than one per registered
    // worker, despite 100k registrations.
    assert!(
        sim.events < 10_000,
        "event count {} should be cohort-sized, not population-sized",
        sim.events
    );
}

/// The sampled paths reject what they cannot honor, with actionable
/// messages.
#[test]
fn sampled_paths_validate_their_restrictions() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);

    // Oversized per-edge sample.
    let big = RunConfig {
        sampling: ClientSampling::PerEdge { count: 101 },
        ..cfg.clone()
    };
    let err = run_virtual(&algo, &model, &population, &shards, &test, &big).unwrap_err();
    assert!(format!("{err}").contains("exceeds"), "{err}");

    // Dropout cannot combine with sampling.
    let drop = RunConfig {
        dropout: 0.5,
        ..cfg.clone()
    };
    let err = run_virtual(&algo, &model, &population, &shards, &test, &drop).unwrap_err();
    assert!(format!("{err}").contains("dropout"), "{err}");

    // The event-driven engine additionally requires FullSync.
    let mut relaxed = virtual_sim_config(9);
    relaxed.policy = SyncPolicy::Deadline {
        quorum: 0.5,
        timeout_ms: 100.0,
    };
    let err =
        simulate_virtual(&algo, &model, &population, &shards, &test, &cfg, &relaxed).unwrap_err();
    assert!(format!("{err}").contains("FullSync"), "{err}");

    // A full-participation delegation over a million workers is refused
    // (that is exactly what sampling is for).
    let huge = WorkerPopulation::uniform(4, 300_000, 4).unwrap();
    let full = RunConfig {
        sampling: ClientSampling::Full,
        ..cfg.clone()
    };
    let err = run_virtual(&algo, &model, &huge, &shards, &test, &full).unwrap_err();
    assert!(format!("{err}").contains("sampling"), "{err}");
}
