//! Virtual-population gates: full participation delegates to the classic
//! engines bitwise, sampled runs agree bitwise between the tick-driven
//! and event-driven engines, results are invariant to thread count, and
//! the 100k-registered/512-sampled scale smoke replays identically.
//!
//! The deep-tree extension adds the depth × policy × chaos matrix: every
//! `{3, 4, 5}`-deep sampled tree completes under every [`SyncPolicy`]
//! with and without faults and adversaries, replays bitwise at any
//! thread count, and — where exactness is promised (full sync, no
//! faults) — matches the tick-driven engine bit for bit. Sampling
//! streams themselves are pinned: Floyd's cohorts are uniform, per-tier-
//! path seeds never collide, and the current trajectory is hard-coded so
//! a silent reseeding cannot pass review.

mod common;

use std::collections::HashSet;

use common::{
    matrix_policies, sampled_fault_plan, sampled_matrix_trees, sampled_tier_fixture, sim_config,
    sim_fixture, small_tier_trees,
};
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::population::{
    adversary_stream, batcher_seed, delay_stream, fault_stream, run_virtual, run_virtual_tiered,
    run_virtual_tiered_until, worker_round_seed, ClientSampling, CohortSampler, WorkerPopulation,
};
use hieradmo::core::{run, run_tiered, FlState, RobustAggregator, RunConfig, RunError, RunResult};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::data::Dataset;
use hieradmo::models::zoo;
use hieradmo::netsim::{
    AdversaryPlan, Architecture, AttackModel, FaultPlan, LinkFaults, NetworkEnv, PermanentCrash,
};
use hieradmo::simrt::{simulate, simulate_virtual, SimConfig, SimError, SimResult, SyncPolicy};
use hieradmo::tensor::Vector;
use hieradmo::topology::{TierSpec, TierTree, Weights};
use proptest::prelude::*;

/// A 2-edge federation of 100 registered workers per edge over 4 shards,
/// with a config whose eval rounds (k = 2 at t = 10, k = 4 at t = 20)
/// cover a mid-cloud-window boundary and the final cloud boundary.
fn virtual_fixture() -> (WorkerPopulation, Vec<Dataset>, Dataset, RunConfig) {
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let population = WorkerPopulation::uniform(2, 100, 4).unwrap();
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 10,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 3 },
        ..RunConfig::default()
    };
    (population, shards, tt.test, cfg)
}

fn virtual_sim_config(net_seed: u64) -> SimConfig {
    // 4 worker-device profiles acting as a pool over the population.
    SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        SyncPolicy::FullSync,
    )
}

fn assert_same_trajectory(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.curve, b.curve, "{label}: curve differs");
    assert_eq!(a.final_params, b.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, b.gamma_trace, "{label}: gamma differs");
    assert_eq!(a.cos_trace, b.cos_trace, "{label}: cos differs");
}

fn assert_core_sim_equal(a: &RunResult, sim: &SimResult, label: &str) {
    assert_eq!(a.curve, sim.curve, "{label}: curve differs");
    assert_eq!(a.final_params, sim.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, sim.gamma_trace, "{label}: gamma differs");
    assert_eq!(a.cos_trace, sim.cos_trace, "{label}: cos differs");
}

/// Full participation (the default) must reproduce the classic
/// tick-driven trajectory bitwise — the delegation gate of ISSUE 7.
#[test]
fn full_participation_delegates_to_classic_run_bitwise() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(f.cfg.eta, f.cfg.gamma);
    let model = zoo::logistic_regression(&f.train, 7);
    let legacy = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).unwrap();

    // The population whose edges mirror the fixture's hierarchy; with 4
    // round-robin shards over 4 workers, worker g holds shard g — the
    // same assignment the legacy run used.
    let population = WorkerPopulation::from_hierarchy(&f.hierarchy, 4).unwrap();
    for sampling in [
        ClientSampling::Full,
        ClientSampling::Fraction { fraction: 1.0 },
    ] {
        let cfg = RunConfig {
            sampling,
            ..f.cfg.clone()
        };
        let virt = run_virtual(&algo, &model, &population, &f.shards, &f.test, &cfg).unwrap();
        assert_same_trajectory(&legacy, &virt, "full-participation delegation");
    }
}

/// The event-driven engine's full-participation path delegates to the
/// classic `simulate` — trajectory *and* time axis identical.
#[test]
fn full_participation_delegates_to_classic_simulate_bitwise() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(f.cfg.eta, f.cfg.gamma);
    let model = zoo::logistic_regression(&f.train, 7);
    let sim = sim_config(9, SyncPolicy::FullSync);
    let legacy = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &sim,
    )
    .unwrap();

    let population = WorkerPopulation::from_hierarchy(&f.hierarchy, 4).unwrap();
    let virt =
        simulate_virtual(&algo, &model, &population, &f.shards, &f.test, &f.cfg, &sim).unwrap();
    assert_eq!(legacy.curve, virt.curve);
    assert_eq!(legacy.timed_curve, virt.timed_curve);
    assert_eq!(legacy.final_params, virt.final_params);
    assert_eq!(legacy.events, virt.events);
    assert_eq!(legacy.simulated_seconds, virt.simulated_seconds);
}

/// The sampled regime's cross-engine gate: the tick-driven and
/// event-driven engines agree bitwise on the model trajectory.
#[test]
fn sampled_runs_agree_across_engines_bitwise() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let core = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_core_sim_equal(&core, &sim, "sampled cross-engine");
    assert!(core.curve.final_accuracy().is_some());
    assert!(sim.simulated_seconds > 0.0);
    assert!(sim.events > 0);
    // The trajectory must not depend on the network seed.
    let sim2 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(1234),
    )
    .unwrap();
    assert_eq!(sim.curve, sim2.curve, "net seed leaked into training");
    assert_ne!(
        sim.simulated_seconds, sim2.simulated_seconds,
        "different net seeds should draw different delays"
    );
}

/// Sampled results are bitwise identical for every engine thread count.
#[test]
fn sampled_runs_are_thread_count_invariant() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let one = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let cfg4 = RunConfig {
        threads: Some(4),
        ..cfg.clone()
    };
    let four = run_virtual(&algo, &model, &population, &shards, &test, &cfg4).unwrap();
    assert_same_trajectory(&one, &four, "threads 1 vs 4");

    let s1 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    let s4 = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg4,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_eq!(s1.curve, s4.curve);
    assert_eq!(s1.final_params, s4.final_params);
    assert_eq!(s1.simulated_seconds, s4.simulated_seconds);
    assert_eq!(s1.events, s4.events);
}

/// Sampling composes with a robust aggregator and a Byzantine adversary
/// addressed by *global* (population) worker id — identically in both
/// engines, counters included.
#[test]
fn sampling_composes_with_robustness_and_adversaries() {
    let (population, shards, test, mut cfg) = virtual_fixture();
    cfg.aggregator = RobustAggregator::TrimmedMean { trim_ratio: 0.25 };
    // Mark a whole residue stripe of edge 0 Byzantine so sampled cohorts
    // regularly include an attacker.
    let byzantine: Vec<usize> = (0..100).step_by(3).collect();
    cfg.adversary = AdversaryPlan::uniform(byzantine, AttackModel::SignFlip { scale: 2.0 });
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let core = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    assert_core_sim_equal(&core, &sim, "robust + adversary sampled");
    // Someone must actually have been sampled and poisoned, and both
    // engines must agree on every per-attacker tally.
    let total: u64 = core.adversaries.iter().map(|c| c.poisoned_uploads).sum();
    assert!(total > 0, "no Byzantine worker was ever sampled");
    assert_eq!(core.adversaries.len(), sim.adversaries.len());
    for (c, s) in core.adversaries.iter().zip(sim.adversaries.iter()) {
        assert_eq!(*c, s.counters);
    }
}

/// Link faults compose with sampling: the retry/duplicate protocol only
/// stretches virtual time (delivery eventually succeeds), so the FullSync
/// trajectory stays bitwise the tick-driven engine's, while the fault
/// tallies and the longer clock show the protocol actually ran — and the
/// whole chaos cell replays deterministically.
#[test]
fn link_faults_compose_with_sampling() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);
    let core = run_virtual(&algo, &model, &population, &shards, &test, &cfg).unwrap();
    let clean = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &test,
        &cfg,
        &virtual_sim_config(9),
    )
    .unwrap();
    let flaky_sim = virtual_sim_config(9).with_faults(FaultPlan {
        link: Some(LinkFaults::flaky()),
        ..FaultPlan::none()
    });
    let flaky =
        simulate_virtual(&algo, &model, &population, &shards, &test, &cfg, &flaky_sim).unwrap();
    assert_core_sim_equal(&core, &flaky, "flaky links sampled");
    assert!(
        flaky.simulated_seconds > clean.simulated_seconds,
        "retry penalties must stretch the virtual clock"
    );
    let tally = |r: &SimResult| {
        r.faults
            .iter()
            .map(|f| {
                f.counters.messages_lost
                    + f.counters.transfer_failures
                    + f.counters.retries
                    + f.counters.duplicates_received
            })
            .sum::<u64>()
    };
    assert_eq!(tally(&clean), 0, "fault-free run tallied link faults");
    assert!(tally(&flaky) > 0, "no link fault ever fired");
    let again =
        simulate_virtual(&algo, &model, &population, &shards, &test, &cfg, &flaky_sim).unwrap();
    assert_eq!(flaky.simulated_seconds, again.simulated_seconds);
    assert_eq!(flaky.events, again.events, "duplicate events must replay");
    for (a, b) in flaky.faults.iter().zip(again.faults.iter()) {
        assert_eq!(a.actor, b.actor);
        assert_eq!(a.counters, b.counters, "{}: tallies must replay", a.actor);
    }
}

/// The CI scale smoke: 100k registered workers, 512 sampled per round,
/// replayed bitwise at 1 and 4 engine threads. Memory stays cohort-sized
/// — the 100k registered workers never materialize.
#[test]
fn scale_smoke_100k_registered_512_sampled_is_deterministic() {
    let tt = SyntheticDataset::mnist_like(60, 30, 5);
    let shards = x_class_partition(&tt.train, 4, 2, 5);
    let population = WorkerPopulation::uniform(8, 12_500, 4).unwrap();
    assert_eq!(population.total_workers(), 100_000);
    let cfg = RunConfig {
        tau: 2,
        pi: 1,
        total_iters: 4,
        eval_every: 4,
        batch_size: 8,
        seed: 7,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 64 },
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&tt.train, 3);
    let one = run_virtual(&algo, &model, &population, &shards, &tt.test, &cfg).unwrap();
    let cfg4 = RunConfig {
        threads: Some(4),
        ..cfg.clone()
    };
    let four = run_virtual(&algo, &model, &population, &shards, &tt.test, &cfg4).unwrap();
    assert_same_trajectory(&one, &four, "scale smoke threads 1 vs 4");

    let sim = simulate_virtual(
        &algo,
        &model,
        &population,
        &shards,
        &tt.test,
        &cfg,
        &virtual_sim_config(3),
    )
    .unwrap();
    assert_core_sim_equal(&one, &sim, "scale smoke cross-engine");
    // O(active) scheduling: far fewer events than one per registered
    // worker, despite 100k registrations.
    assert!(
        sim.events < 10_000,
        "event count {} should be cohort-sized, not population-sized",
        sim.events
    );
}

/// Every formerly-gated combination that remains unsupported fails with
/// its typed error — no panics, no silent fallbacks. The lifted gates
/// (policies, faults, dropout, depth > 3 with sampling) are absent from
/// this table by construction; their positive coverage is
/// [`depth_policy_chaos_matrix`].
#[test]
fn sampled_paths_validate_their_restrictions() {
    let (population, shards, test, cfg) = virtual_fixture();
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&shards[0], 7);

    fn run_kind(e: &RunError) -> &'static str {
        match e {
            RunError::BadConfig(_) => "bad-config",
            RunError::Schedule(_) => "schedule",
            RunError::Topology(_) => "topology",
            RunError::Data(_) => "data",
        }
    }
    fn sim_kind(e: &SimError) -> (&'static str, String) {
        let kind = match e {
            SimError::Policy(_) => "policy",
            SimError::Fault(_) => "fault",
            SimError::Net(_) => "net",
            SimError::Adversary(_) => "adversary",
            SimError::Run(inner) => run_kind(inner),
        };
        (kind, e.to_string())
    }

    let core_err = |cfg: &RunConfig, pop: &WorkerPopulation| {
        let e = run_virtual(&algo, &model, pop, &shards, &test, cfg).unwrap_err();
        (run_kind(&e), e.to_string())
    };
    let core_tiered_err = |cfg: &RunConfig, tree: &TierTree| {
        let e =
            run_virtual_tiered(&algo, &model, &population, &shards, &test, cfg, tree).unwrap_err();
        (run_kind(&e), e.to_string())
    };
    let sim_err = |cfg: &RunConfig, sim: &SimConfig| {
        sim_kind(
            &simulate_virtual(&algo, &model, &population, &shards, &test, cfg, sim).unwrap_err(),
        )
    };

    let huge = WorkerPopulation::uniform(4, 300_000, 4).unwrap();
    let beyond = AdversaryPlan::uniform([1_000_000usize], AttackModel::SignFlip { scale: 2.0 });
    let cases: Vec<(&str, &str, &str, (&'static str, String))> = vec![
        (
            "oversized per-edge sample",
            "bad-config",
            "exceeds",
            core_err(
                &RunConfig {
                    sampling: ClientSampling::PerEdge { count: 101 },
                    ..cfg.clone()
                },
                &population,
            ),
        ),
        (
            "full materialization of a million-worker registry",
            "data",
            "sampling",
            core_err(
                &RunConfig {
                    sampling: ClientSampling::Full,
                    ..cfg.clone()
                },
                &huge,
            ),
        ),
        (
            "adversary id beyond the registry (tick engine)",
            "bad-config",
            "registers only",
            core_err(
                &RunConfig {
                    adversary: beyond.clone(),
                    ..cfg.clone()
                },
                &population,
            ),
        ),
        (
            "adversary id beyond the registry (event engine)",
            "adversary",
            "registers only",
            sim_err(
                &RunConfig {
                    adversary: beyond.clone(),
                    ..cfg.clone()
                },
                &virtual_sim_config(9),
            ),
        ),
        (
            "permanent crash beyond the registry",
            "fault",
            "registered population",
            sim_err(
                &cfg,
                &virtual_sim_config(9).with_faults(FaultPlan {
                    permanent: vec![PermanentCrash {
                        worker: 1_000_000,
                        at_ms: 1.0,
                    }],
                    ..FaultPlan::none()
                }),
            ),
        ),
        ("two-tier architecture with sampling", "net", "ThreeTier", {
            let mut sim = virtual_sim_config(9);
            sim.architecture = Architecture::TwoTier;
            sim_err(&cfg, &sim)
        }),
        ("empty device-profile pool", "net", "device-profile", {
            let mut sim = virtual_sim_config(9);
            sim.env.worker_devices.clear();
            sim_err(&cfg, &sim)
        }),
        (
            "legacy edges/workers_per_edge fields (tick engine)",
            "bad-config",
            "legacy",
            core_err(
                &RunConfig {
                    edges: Some(2),
                    ..cfg.clone()
                },
                &population,
            ),
        ),
        (
            "legacy edges/workers_per_edge fields (event engine)",
            "bad-config",
            "legacy",
            sim_err(
                &RunConfig {
                    edges: Some(2),
                    ..cfg.clone()
                },
                &virtual_sim_config(9),
            ),
        ),
        (
            "tier tree spanning the wrong edge count",
            "bad-config",
            "tier tree spans",
            core_tiered_err(&cfg, &TierTree::three_tier(3, 100, 5, 2)),
        ),
        (
            "tier tree with the wrong registered leaf width",
            "bad-config",
            "workers per edge",
            sim_err(
                &cfg,
                &virtual_sim_config(9).with_tiers(TierTree::three_tier(2, 50, 5, 2)),
            ),
        ),
        (
            "tier tree whose (tau, pi) disagree with the config",
            "bad-config",
            "disagrees",
            sim_err(
                &cfg,
                &virtual_sim_config(9).with_tiers(TierTree::three_tier(2, 100, 5, 4)),
            ),
        ),
        ("bad deadline quorum", "policy", "(0, 1]", {
            let mut sim = virtual_sim_config(9);
            sim.policy = SyncPolicy::Deadline {
                quorum: 1.5,
                timeout_ms: 100.0,
            };
            sim_err(&cfg, &sim)
        }),
        (
            "snapshot stop off the edge-boundary grid",
            "bad-config",
            "stop_at",
            {
                let tree = TierTree::three_tier(2, 100, 5, 2);
                let e = run_virtual_tiered_until(
                    &algo,
                    &model,
                    &population,
                    &shards,
                    &test,
                    &cfg,
                    &tree,
                    7,
                )
                .unwrap_err();
                (run_kind(&e), e.to_string())
            },
        ),
    ];

    for (label, want_kind, needle, (kind, msg)) in cases {
        assert_eq!(kind, want_kind, "{label}: wrong error kind ({msg})");
        assert!(
            msg.contains(needle),
            "{label}: message should mention {needle:?}: {msg}"
        );
    }
}

/// The pinning gate of the per-tier-path sampler: Floyd's cohorts and
/// the depth-3 sampled trajectory are hard-coded, so any reseeding of
/// the cohort streams (however plausible-looking) fails loudly here
/// instead of silently shifting every sampled result in the repo.
#[test]
fn sampled_trajectory_and_cohorts_are_pinned() {
    // Flat cohort pins: seed 42, Floyd's without replacement, ascending.
    let flat = CohortSampler::new(42);
    assert_eq!(flat.cohort(0, 1, 100, 3), vec![20, 71, 73]);
    assert_eq!(flat.cohort(1, 1, 100, 3), vec![30, 42, 87]);
    assert_eq!(flat.cohort(0, 4, 100, 3), vec![6, 36, 84]);
    assert_eq!(
        flat.cohort(3, 7, 1_000_000, 8),
        vec![24_755, 311_397, 351_175, 427_735, 521_171, 630_470, 876_410, 990_848]
    );

    // A depth-3 tree and its pass-through extension derive the *same*
    // per-edge streams as the flat sampler: the tier-path fold collapses
    // identity levels, so pre-tree sampled trajectories are unchanged.
    let d3 = CohortSampler::for_tree(42, &TierTree::three_tier(4, 100, 5, 2));
    let padded = CohortSampler::for_tree(
        42,
        &TierTree::new(vec![
            TierSpec::new(4, 2),
            TierSpec::pass_through(1),
            TierSpec::new(100, 5),
        ])
        .unwrap(),
    );
    for e in 0..4 {
        for r in [1, 4, 7] {
            assert_eq!(
                flat.cohort(e, r, 100, 3),
                d3.cohort(e, r, 100, 3),
                "e{e} r{r}"
            );
            assert_eq!(
                flat.cohort(e, r, 100, 3),
                padded.cohort(e, r, 100, 3),
                "e{e} r{r}"
            );
        }
    }

    // Trajectory pin: the depth-3 sampled run of the seed fixture. These
    // literals round-trip exactly (Rust float Debug), so equality below
    // is bitwise.
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let population = WorkerPopulation::uniform(2, 100, 4).unwrap();
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 10,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 3 },
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let model = zoo::logistic_regression(&tt.train, 1);
    let flat_run = run_virtual(&algo, &model, &population, &shards, &tt.test, &cfg).unwrap();
    assert_eq!(
        &flat_run.final_params.as_slice()[..4],
        &[0.04330813, 0.002263323, 0.0059279623, -0.028702375],
        "head of the pinned sampled params moved"
    );
    let sum: f32 = flat_run.final_params.as_slice().iter().sum();
    assert_eq!(sum, -1.1442246, "pinned sampled param sum moved");
    assert_eq!(
        flat_run.gamma_trace,
        vec![
            (1, 0.006566262),
            (2, 0.027501052),
            (3, 0.03984092),
            (4, 0.045479402)
        ],
        "pinned sampled gamma trace moved"
    );

    // And the tiered spellings of the same shape reproduce it bitwise.
    let d3_tree = TierTree::three_tier(2, 100, 5, 2);
    let tiered = run_virtual_tiered(
        &algo,
        &model,
        &population,
        &shards,
        &tt.test,
        &cfg,
        &d3_tree,
    )
    .unwrap();
    assert_same_trajectory(&flat_run, &tiered, "depth-3 tiered vs flat sampled");
    let padded_tree = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::pass_through(1),
        TierSpec::new(100, 5),
    ])
    .unwrap();
    let padded_run = run_virtual_tiered(
        &algo,
        &model,
        &population,
        &shards,
        &tt.test,
        &cfg,
        &padded_tree,
    )
    .unwrap();
    assert_same_trajectory(
        &flat_run,
        &padded_run,
        "pass-through tiered vs flat sampled",
    );
}

/// Floyd's without-replacement sampler is (empirically) uniform: over
/// 4000 rounds of 5-of-20 cohorts, each worker's selection count sits
/// within a chi-square bound of the expected 1000. Deterministic — the
/// seed is fixed — so this is a regression pin, not a flaky statistical
/// test.
#[test]
fn floyd_sampling_is_uniform_chi_square() {
    let sampler = CohortSampler::new(7);
    let (population, k, rounds) = (20u64, 5usize, 4000usize);
    let mut counts = vec![0u64; population as usize];
    for r in 1..=rounds {
        let ids = sampler.cohort(0, r, population, k);
        assert_eq!(ids.len(), k, "round {r}: wrong cohort size");
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "round {r}: cohort not strictly ascending: {ids:?}"
        );
        for id in ids {
            assert!(id < population, "round {r}: id {id} out of range");
            counts[id as usize] += 1;
        }
    }
    let expected = (rounds * k) as f64 / population as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&o| {
            let d = o as f64 - expected;
            d * d / expected
        })
        .sum();
    // 19 degrees of freedom: P(chi2 > 60) < 1e-5 under uniformity.
    assert!(
        chi2 < 60.0,
        "chi-square {chi2:.1} over bound; counts = {counts:?}"
    );
}

/// No stream family ever collides: the per-(worker, round) seed
/// re-derivations are pairwise distinct across families and indices, and
/// per-edge cohort streams are distinct across *tier paths* — two trees
/// with the same edge count but different shapes sample different
/// cohorts at every (edge, round).
#[test]
fn stream_derivations_never_collide_across_tier_paths() {
    let mut seeds = HashSet::new();
    for g in 0..64u64 {
        for r in 0..64u64 {
            for (family, value) in [
                ("worker_round", worker_round_seed(42, g, r)),
                ("batcher", batcher_seed(42, g, r)),
                ("adversary", adversary_stream(g, r)),
                ("delay", delay_stream(g, r)),
                ("fault", fault_stream(g, r)),
            ] {
                assert!(
                    seeds.insert(value),
                    "stream collision at family {family}, worker {g}, round {r}"
                );
            }
        }
    }
    assert_eq!(seeds.len(), 5 * 64 * 64);

    // Two 8-edge trees of different shapes: a depth-5 binary tree and a
    // depth-4 wide tree. Every (tree, edge, round) cohort is distinct —
    // the sampler keys on the full tier path, not the flat edge index.
    let deep = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(1000, 5),
    ])
    .unwrap();
    let wide = TierTree::new(vec![
        TierSpec::new(4, 2),
        TierSpec::new(2, 2),
        TierSpec::new(1000, 5),
    ])
    .unwrap();
    let mut cohorts: HashSet<Vec<u64>> = HashSet::new();
    for tree in [&deep, &wide] {
        let sampler = CohortSampler::for_tree(42, tree);
        for e in 0..tree.num_edges() {
            for r in 1..=16usize {
                assert!(
                    cohorts.insert(sampler.cohort(e, r, 1000, 4)),
                    "cohort stream collision at depth {}, edge {e}, round {r}",
                    tree.depth()
                );
            }
        }
    }
    assert_eq!(cohorts.len(), 2 * 8 * 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Weights::from_cohort` is a partition of unity at every depth of
    /// every small tree: worker shares sum to 1 within each edge, edge
    /// (population) shares sum to 1 globally, and the attached tree's
    /// subtree weights sum to 1 under every parent at every middle depth.
    #[test]
    fn cohort_weights_partition_unity_at_every_depth(
        tree in small_tier_trees(),
        cohort_pick in 0usize..4,
        raw in proptest::collection::vec(1u64..50, 4),
    ) {
        let leaf = tree.levels().last().unwrap().fanout;
        let c = 1 + cohort_pick % leaf;
        let population = WorkerPopulation::from_tier_tree(&tree, 4).unwrap();
        let edge_totals = population.edge_data_samples(&raw);

        let mut levels = tree.levels().to_vec();
        levels.last_mut().unwrap().fanout = c;
        let cohort_tree = TierTree::new(levels).unwrap();
        let h = cohort_tree.edge_hierarchy();
        let (num_workers, num_edges) = (h.num_workers(), h.num_edges());
        let w = Weights::from_cohort(&h, &vec![1u64; num_workers], edge_totals);

        for e in 0..num_edges {
            let per_edge: f64 = h.edge_workers(e).map(|i| w.worker_in_edge(i)).sum();
            prop_assert!((per_edge - 1.0).abs() < 1e-9, "edge {} workers sum to {}", e, per_edge);
        }
        let edges_total: f64 = (0..num_edges).map(|e| w.edge_in_total(e)).sum();
        prop_assert!((edges_total - 1.0).abs() < 1e-9, "edge shares sum to {}", edges_total);
        let total: f64 = (0..num_workers).map(|i| w.worker_in_total(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "worker shares sum to {}", total);

        let x0 = Vector::from(vec![1.0, -2.0, 0.5]);
        let mut s = FlState::new(h, w, &x0);
        s.attach_tree(cohort_tree.clone());
        for d in 1..cohort_tree.levels().len() {
            let fanout = cohort_tree.levels()[d - 1].fanout;
            for parent in 0..cohort_tree.nodes_at(d - 1) {
                let sum: f64 = (parent * fanout..(parent + 1) * fanout)
                    .map(|n| s.subtree_weight(d, n))
                    .sum();
                prop_assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "depth {} parent {} subtree weights sum to {}", d, parent, sum
                );
            }
        }
    }
}

/// The tentpole gate: depth {3, 4, 5} × {FullSync, Deadline, AsyncAge} ×
/// {clean, faults, adversary}. Every cell completes, replays bitwise,
/// and is invariant to the engine thread count; FullSync cells without
/// faults additionally match the tick-driven engine bit for bit — per-
/// tier γ traces included — because that is where exactness is promised.
#[test]
fn depth_policy_chaos_matrix() {
    for tree in sampled_matrix_trees() {
        let f = sampled_tier_fixture(&tree);
        let algo = HierAdMo::adaptive(f.cfg.eta, f.cfg.gamma);
        let model = zoo::logistic_regression(&f.train, 1);
        let adversary_cfg = RunConfig {
            adversary: AdversaryPlan::uniform(
                (0..f.population.total_workers() as usize).step_by(3),
                AttackModel::SignFlip { scale: 2.0 },
            ),
            aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.25 },
            ..f.cfg.clone()
        };
        let variants = [
            ("clean", f.cfg.clone(), FaultPlan::none()),
            ("faults", f.cfg.clone(), sampled_fault_plan()),
            ("adversary", adversary_cfg, FaultPlan::none()),
        ];
        for policy in matrix_policies() {
            for (chaos, cfg, faults) in &variants {
                let label = format!(
                    "depth={} policy={} chaos={chaos}",
                    tree.depth(),
                    policy.label()
                );
                let sim = SimConfig::new(
                    NetworkEnv::paper_testbed(4),
                    Architecture::ThreeTier,
                    50_000,
                    7,
                    policy,
                )
                .with_tiers(tree.clone())
                .with_faults(faults.clone());
                let run_sim = |threads: usize| {
                    let cfg = RunConfig {
                        threads: Some(threads),
                        ..cfg.clone()
                    };
                    simulate_virtual(&algo, &model, &f.population, &f.shards, &f.test, &cfg, &sim)
                        .unwrap_or_else(|e| panic!("{label}: {e}"))
                };
                let s1 = run_sim(1);
                assert!(
                    s1.curve.final_accuracy().is_some(),
                    "{label}: no evaluation"
                );
                assert!(
                    s1.events > 0 && s1.simulated_seconds > 0.0,
                    "{label}: empty run"
                );
                let s1b = run_sim(1);
                let s4 = run_sim(4);
                for (other, tag) in [(&s1b, "replay"), (&s4, "threads 1 vs 4")] {
                    assert_eq!(s1.curve, other.curve, "{label} [{tag}]: curve");
                    assert_eq!(
                        s1.final_params, other.final_params,
                        "{label} [{tag}]: params"
                    );
                    assert_eq!(s1.gamma_trace, other.gamma_trace, "{label} [{tag}]: gamma");
                    assert_eq!(
                        s1.tier_gamma, other.tier_gamma,
                        "{label} [{tag}]: tier gamma"
                    );
                    assert_eq!(
                        s1.simulated_seconds, other.simulated_seconds,
                        "{label} [{tag}]: clock"
                    );
                    assert_eq!(s1.events, other.events, "{label} [{tag}]: events");
                }
                if *chaos == "faults" {
                    let w = s1
                        .faults
                        .iter()
                        .find(|a| a.actor == "workers")
                        .expect("aggregate worker fault tally");
                    assert!(
                        w.counters.crashes + w.counters.delay_spikes > 0,
                        "{label}: the fault plan never engaged"
                    );
                }
                if matches!(policy, SyncPolicy::FullSync) && faults.is_empty() {
                    let core = run_virtual_tiered(
                        &algo,
                        &model,
                        &f.population,
                        &f.shards,
                        &f.test,
                        cfg,
                        &tree,
                    )
                    .unwrap_or_else(|e| panic!("{label}: core engine: {e}"));
                    assert_core_sim_equal(&core, &s1, &label);
                    assert_eq!(
                        core.tier_gamma, s1.tier_gamma,
                        "{label}: tier gamma cross-engine"
                    );
                    if tree.depth() > 3 {
                        assert!(
                            s1.tier_gamma.iter().any(|t| !t.is_empty()),
                            "{label}: middle tiers never fired"
                        );
                    }
                }
            }
        }
    }
}

/// Full participation at every matrix depth delegates to the seed
/// engines bitwise: the tick-driven virtual path reproduces
/// `run_tiered`, and the event-driven virtual path reproduces `simulate`
/// — trajectory, per-tier γ, event count and clock all identical.
#[test]
fn full_participation_sampled_runs_delegate_at_every_depth() {
    for tree in sampled_matrix_trees() {
        let f = sampled_tier_fixture(&tree);
        let cfg = RunConfig {
            sampling: ClientSampling::Full,
            ..f.cfg.clone()
        };
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        let model = zoo::logistic_regression(&f.train, 1);
        let worker_shards = f.population.materialize_shards(&f.shards);
        let label = format!("depth={} full participation", tree.depth());

        let reference = run_tiered(&algo, &model, &tree, &worker_shards, &f.test, &cfg).unwrap();
        let virt = run_virtual_tiered(
            &algo,
            &model,
            &f.population,
            &f.shards,
            &f.test,
            &cfg,
            &tree,
        )
        .unwrap();
        assert_same_trajectory(&reference, &virt, &label);
        assert_eq!(reference.tier_gamma, virt.tier_gamma, "{label}: tier gamma");

        let sim = SimConfig::new(
            NetworkEnv::paper_testbed(tree.num_workers()),
            Architecture::ThreeTier,
            50_000,
            7,
            SyncPolicy::FullSync,
        )
        .with_tiers(tree.clone());
        let sim_ref = simulate(
            &algo,
            &model,
            &tree.edge_hierarchy(),
            &worker_shards,
            &f.test,
            &cfg,
            &sim,
        )
        .unwrap();
        let sim_virt =
            simulate_virtual(&algo, &model, &f.population, &f.shards, &f.test, &cfg, &sim).unwrap();
        assert_eq!(sim_ref.curve, sim_virt.curve, "{label}: sim curve");
        assert_eq!(
            sim_ref.timed_curve, sim_virt.timed_curve,
            "{label}: timed curve"
        );
        assert_eq!(
            sim_ref.final_params, sim_virt.final_params,
            "{label}: sim params"
        );
        assert_eq!(sim_ref.events, sim_virt.events, "{label}: events");
        assert_eq!(
            sim_ref.simulated_seconds, sim_virt.simulated_seconds,
            "{label}: clock"
        );
        assert_eq!(
            sim_ref.tier_gamma, sim_virt.tier_gamma,
            "{label}: sim tier gamma"
        );
    }
}
