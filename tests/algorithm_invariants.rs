//! Per-algorithm structural invariants, checked by driving the strategy
//! hooks directly on a hand-built federation state with analytic
//! (quadratic-bowl) gradients — no datasets, no models, pure protocol.

use hieradmo::core::algorithms::table2_lineup;
use hieradmo::core::state::FlState;
use hieradmo::core::strategy::{Strategy, Tier};
use hieradmo::tensor::Vector;
use hieradmo::topology::{Hierarchy, Weights};

const DIM: usize = 6;
const TAU: usize = 4;
const PI: usize = 2;

/// Per-worker quadratic objective `F_i(x) = ½‖x − cᵢ‖²`, whose gradient is
/// `x − cᵢ` — heterogeneous minima emulate non-iid data exactly.
fn centre(worker: usize) -> Vector {
    (0..DIM)
        .map(|d| ((worker * 7 + d * 3) % 5) as f32 - 2.0)
        .collect()
}

/// Drives `rounds` full cloud rounds of the algorithm on its natural
/// topology; returns the final state.
fn drive(algo: &dyn Strategy, rounds: usize) -> FlState {
    let hierarchy = match algo.tier() {
        Tier::Three => Hierarchy::balanced(2, 2),
        Tier::Two => Hierarchy::two_tier(4),
    };
    let weights = Weights::from_samples(&hierarchy, &[1, 2, 3, 4]);
    let mut state = FlState::new(hierarchy, weights, &Vector::filled(DIM, 1.0));
    algo.init(&mut state);
    let mut t = 0;
    for _round in 0..rounds {
        for k in 1..=PI {
            for _ in 0..TAU {
                t += 1;
                for i in 0..state.workers.len() {
                    let c = centre(i);
                    let mut grad = |p: &Vector, g: &mut Vector| *g = p - &c;
                    algo.local_step(t, &mut state.workers[i], &mut grad);
                }
            }
            for edge in 0..state.hierarchy.num_edges() {
                algo.edge_aggregate(k, &mut state.edge_view(edge));
            }
        }
        algo.cloud_aggregate(1, &mut state);
    }
    state
}

#[test]
fn all_algorithms_synchronize_workers_at_cloud_aggregation() {
    for algo in table2_lineup(0.05, 0.5, 0.5) {
        let state = drive(algo.as_ref(), 1);
        let reference = &state.workers[0].x;
        for (i, w) in state.workers.iter().enumerate() {
            assert_eq!(
                &w.x,
                reference,
                "{}: worker {i} not synchronized after cloud aggregation",
                algo.name()
            );
        }
        assert!(
            reference.is_finite(),
            "{}: non-finite synchronized model",
            algo.name()
        );
    }
}

#[test]
fn all_algorithms_approach_the_weighted_optimum() {
    // The global objective is Σᵢ wᵢ·½‖x − cᵢ‖² with minimum at the
    // weighted centre mean. Every algorithm must contract toward it.
    let weights = [1.0f64, 2.0, 3.0, 4.0];
    let total: f64 = weights.iter().sum();
    let mut optimum = Vector::zeros(DIM);
    for (i, w) in weights.iter().enumerate() {
        optimum.axpy((*w / total) as f32, &centre(i));
    }
    for algo in table2_lineup(0.05, 0.5, 0.5) {
        let start_dist = Vector::filled(DIM, 1.0).distance(&optimum);
        let state = drive(algo.as_ref(), 20);
        let end_dist = state.workers[0].x.distance(&optimum);
        assert!(
            end_dist < start_dist * 0.5,
            "{}: did not contract toward the optimum ({start_dist} -> {end_dist})",
            algo.name()
        );
    }
}

#[test]
fn hieradmo_family_records_gamma_and_cosine() {
    use hieradmo::core::algorithms::HierAdMo;
    let adaptive = HierAdMo::adaptive(0.05, 0.5);
    let state = drive(&adaptive, 2);
    for e in &state.edges {
        assert!(
            (0.0..=0.99).contains(&e.gamma_edge),
            "adaptive γℓ out of range: {}",
            e.gamma_edge
        );
        assert!(
            (-1.0..=1.0).contains(&e.cos_theta),
            "cos θ out of range: {}",
            e.cos_theta
        );
    }
    let reduced = HierAdMo::reduced(0.05, 0.5, 0.3);
    let state = drive(&reduced, 1);
    for e in &state.edges {
        assert_eq!(e.gamma_edge, 0.3, "reduced variant must keep γℓ fixed");
    }
}

#[test]
fn momentum_free_algorithms_leave_momentum_state_untouched() {
    use hieradmo::core::algorithms::{FedAvg, HierFavg};
    for algo in [&HierFavg::new(0.05) as &dyn Strategy, &FedAvg::new(0.05)] {
        let state = drive(algo, 2);
        for (i, w) in state.workers.iter().enumerate() {
            // y was initialized to x⁰ and never written by SGD algorithms.
            assert_eq!(
                w.y,
                Vector::filled(DIM, 1.0),
                "{}: worker {i} momentum parameter was modified",
                algo.name()
            );
        }
    }
}

#[test]
fn data_weights_shape_the_aggregate() {
    // An algorithm run with skewed weights must land nearer the heavy
    // worker's optimum than a uniform-weight run does.
    use hieradmo::core::algorithms::HierFavg;
    let algo = HierFavg::new(0.05);
    let hierarchy = Hierarchy::two_tier(2);

    let run_with = |samples: [u64; 2]| {
        let weights = Weights::from_samples(&hierarchy, &samples);
        let mut state = FlState::new(hierarchy.clone(), weights, &Vector::zeros(DIM));
        for _ in 0..40 {
            for i in 0..2 {
                let c = centre(i);
                let mut grad = |p: &Vector, g: &mut Vector| *g = p - &c;
                algo.local_step(1, &mut state.workers[i], &mut grad);
            }
            algo.edge_aggregate(1, &mut state.edge_view(0));
            algo.cloud_aggregate(1, &mut state);
        }
        state.workers[0].x.clone()
    };

    let uniform = run_with([1, 1]);
    let skewed = run_with([1, 9]);
    let c1 = centre(1);
    assert!(
        skewed.distance(&c1) < uniform.distance(&c1),
        "weighting worker 1 by 9:1 should pull the model toward its optimum"
    );
}
