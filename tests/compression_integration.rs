//! Cross-crate integration: lossy uplink compression (core extension)
//! joined with the netsim wire-time model — compressed federations must
//! both still learn *and* demonstrably spend less emulated time on
//! communication.

use hieradmo::core::compression::{Compression, QuantizedHierFavg};
use hieradmo::core::{run, RunConfig};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::models::{zoo, Model};
use hieradmo::netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo::tensor::Vector;
use hieradmo::topology::{Hierarchy, Schedule};

fn problem() -> (
    hieradmo::data::Dataset,
    hieradmo::data::Dataset,
    Vec<hieradmo::data::Dataset>,
    hieradmo::models::Sequential,
) {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: hieradmo::data::FeatureShape::Flat(32),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 40, 15, 31);
    let shards = x_class_partition(&tt.train, 4, 2, 31);
    let model = zoo::logistic_regression(&tt.train, 31);
    (tt.train, tt.test, shards, model)
}

#[test]
fn compressed_federation_learns_and_saves_wire_time() {
    let (_, test, shards, model) = problem();
    let cfg = RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: 200,
        batch_size: 16,
        eval_every: 200,
        threads: Some(1),
        ..RunConfig::default()
    };
    let h = Hierarchy::balanced(2, 2);

    let dense = QuantizedHierFavg::new(cfg.eta, Compression::None);
    let sparse = QuantizedHierFavg::new(
        cfg.eta,
        Compression::TopK {
            k: model.dim() / 10,
        },
    );
    let dense_res = run(&dense, &model, &h, &shards, &test, &cfg).unwrap();
    let sparse_res = run(&sparse, &model, &h, &shards, &test, &cfg).unwrap();

    let dense_acc = dense_res.curve.final_accuracy().unwrap();
    let sparse_acc = sparse_res.curve.final_accuracy().unwrap();
    assert!(
        sparse_acc > dense_acc - 0.15,
        "10% top-k with error feedback should stay near dense: {sparse_acc} vs {dense_acc}"
    );

    // Wire accounting: the top-k payload must buy real emulated time on
    // the same schedule.
    let probe = Vector::filled(model.dim(), 0.5);
    let dense_bytes = Compression::None.compress(&probe, 0).wire_bytes();
    let sparse_bytes = Compression::TopK {
        k: model.dim() / 10,
    }
    .compress(&probe, 0)
    .wire_bytes();
    assert!(
        sparse_bytes * 4 < dense_bytes,
        "top-10% should be ≲ 20% of dense bytes"
    );

    let env = NetworkEnv::paper_testbed(4);
    let time = |bytes: u64| {
        simulate_timeline(
            &env,
            &TraceConfig::new(
                Schedule::three_tier(10, 2, 200).unwrap(),
                Hierarchy::balanced(2, 2),
                Architecture::ThreeTier,
                bytes,
                7,
            ),
        )
        .total_seconds()
    };
    // Use an inflated model dimension so serialization dominates jitter.
    let scale = 500u64;
    assert!(
        time(sparse_bytes * scale) < time(dense_bytes * scale),
        "compressed uplink should cut emulated wall-clock"
    );
}

#[test]
fn error_feedback_matters_under_aggressive_compression() {
    // With 1%-top-k, the residual keeps small coordinates alive; a
    // feedback-equipped run must not collapse.
    let (_, test, shards, model) = problem();
    let cfg = RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: 300,
        batch_size: 16,
        eval_every: 300,
        threads: Some(1),
        ..RunConfig::default()
    };
    let h = Hierarchy::balanced(2, 2);
    let k = (model.dim() / 100).max(1);
    let aggressive = QuantizedHierFavg::new(cfg.eta, Compression::TopK { k });
    let res = run(&aggressive, &model, &h, &shards, &test, &cfg).unwrap();
    let acc = res.curve.final_accuracy().unwrap();
    assert!(
        acc > 0.4,
        "1% top-k with error feedback should still clear random chance by a wide margin: {acc}"
    );
}

#[test]
fn centralized_optimizers_agree_with_federated_limit() {
    // One worker, τ = 1, π = 1: HierFAVG with a single worker IS
    // centralized SGD — the curves must coincide exactly.
    use hieradmo::core::algorithms::HierFavg;
    use hieradmo::models::optim::{train_full_batch, Sgd};

    let (train, test, _, model) = problem();
    let cfg = RunConfig {
        eta: 0.05,
        tau: 1,
        pi: 1,
        total_iters: 30,
        batch_size: usize::MAX >> 1, // full batch (capped by Batcher)
        eval_every: 30,
        threads: Some(1),
        ..RunConfig::default()
    };
    let h = Hierarchy::two_tier(1);
    let shards = vec![train.clone()];
    let fed = run(&HierFavg::new(0.05), &model, &h, &shards, &test, &cfg).unwrap();

    let mut central = model.clone();
    let mut opt = Sgd::new(0.05);
    train_full_batch(&mut central, &mut opt, &train, 30);

    let gap = fed.final_params.distance(&central.params());
    assert!(
        gap < 1e-3,
        "single-worker federation must equal centralized SGD, gap = {gap}"
    );
}
