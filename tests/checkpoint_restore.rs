//! Mid-run checkpoint/restore: a run stopped at an edge boundary, saved,
//! reloaded and resumed must reproduce the uninterrupted trajectory
//! bitwise — curve, γℓ trace and final parameters.

mod common;

use common::sim_fixture;
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{
    run, run_resumed, run_until, RunConfig, RunError, RunResult, TrainingSnapshot,
};
use hieradmo::models::zoo;

/// The equivalence fixture stretched to 40 ticks so the stop point (t=15,
/// an edge boundary k=3 that is *not* a cloud boundary) leaves plenty of
/// run on both sides, with eval points in both segments.
fn cfg(dropout: f64) -> (common::SimFixture, RunConfig) {
    let f = sim_fixture(dropout);
    let cfg = RunConfig {
        total_iters: 40,
        ..f.cfg.clone()
    };
    (f, cfg)
}

fn check_restore_round_trip(dropout: f64, resumed_threads: Option<usize>) {
    let (f, cfg) = cfg(dropout);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);

    let full = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
    let (first, snap) =
        run_until(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, 15).unwrap();
    assert_eq!(snap.tick, 15);
    assert_eq!(snap.algorithm, "HierAdMo");

    // The snapshot survives serialization bit-for-bit.
    let snap = TrainingSnapshot::from_json(&snap.to_json()).unwrap();

    let resumed_cfg = RunConfig {
        threads: resumed_threads,
        ..cfg.clone()
    };
    let resumed = run_resumed(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &resumed_cfg,
        &snap,
    )
    .unwrap();

    // The two segments partition the uninterrupted run exactly.
    assert!(first.curve.points().iter().all(|p| p.iteration <= 15));
    assert!(resumed.curve.points().iter().all(|p| p.iteration > 15));
    let concat: Vec<_> = first
        .curve
        .points()
        .iter()
        .chain(resumed.curve.points())
        .copied()
        .collect();
    assert_eq!(
        concat,
        full.curve.points().to_vec(),
        "dropout={dropout}: concatenated curves must match the full run bitwise"
    );

    let concat_gamma: Vec<_> = first
        .gamma_trace
        .iter()
        .chain(&resumed.gamma_trace)
        .copied()
        .collect();
    assert_eq!(concat_gamma, full.gamma_trace, "gamma trace differs");
    let concat_cos: Vec<_> = first
        .cos_trace
        .iter()
        .chain(&resumed.cos_trace)
        .copied()
        .collect();
    assert_eq!(concat_cos, full.cos_trace, "cos trace differs");

    assert_eq!(
        resumed.final_params, full.final_params,
        "dropout={dropout}: resumed run must land on the exact same model"
    );
}

#[test]
fn restore_at_edge_boundary_matches_uninterrupted_run() {
    check_restore_round_trip(0.0, Some(1));
}

#[test]
fn restore_replays_dropout_draws_exactly() {
    check_restore_round_trip(0.3, Some(1));
}

#[test]
fn restore_is_thread_count_invariant() {
    check_restore_round_trip(0.0, Some(4));
}

/// Resuming under an active `AdversaryPlan` replays the adversary RNG
/// streams instead of storing them: the stop/resume trajectory must match
/// the uninterrupted adversarial run bitwise. `GaussianNoise` is in the
/// plan on purpose — it is the only stateful attack, so the test fails if
/// the fast-forward path skips the wrong number of draws.
#[test]
fn restore_replays_adversary_streams_exactly() {
    use hieradmo::core::RobustAggregator;
    use hieradmo::netsim::{AdversaryPlan, AttackModel, ByzantineWorker};

    let (f, base) = cfg(0.0);
    let cfg = RunConfig {
        adversary: AdversaryPlan {
            byzantine: vec![
                ByzantineWorker {
                    worker: 0,
                    attack: AttackModel::GaussianNoise { norm: 4.0 },
                },
                ByzantineWorker {
                    worker: 3,
                    attack: AttackModel::MomentumPoison { scale: 5.0 },
                },
            ],
        },
        aggregator: RobustAggregator::Median,
        ..base
    };
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);

    let full = run(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg).unwrap();
    let (first, snap) =
        run_until(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, 15).unwrap();
    // The adversary draws from replayable streams; nothing of it is stored.
    let snap = TrainingSnapshot::from_json(&snap.to_json()).unwrap();
    let resumed =
        run_resumed(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, &snap).unwrap();

    let concat: Vec<_> = first
        .curve
        .points()
        .iter()
        .chain(resumed.curve.points())
        .copied()
        .collect();
    assert_eq!(
        concat,
        full.curve.points().to_vec(),
        "adversarial stop/resume must match the uninterrupted run bitwise"
    );
    assert_eq!(
        resumed.final_params, full.final_params,
        "adversarial resume must land on the exact same model"
    );
}

/// Depth-4 stop/resume: the snapshot is taken at an edge round that is a
/// *middle*-tier boundary but not a root boundary (k=2 with the region
/// tier syncing every 2 edge rounds and the root every 4), survives a
/// JSON round-trip carrying the middle-tier states, and resumes under a
/// different thread count bitwise identically to the uninterrupted
/// N-tier run — γ traces, per-tier γ traces and final model included.
#[test]
fn restore_at_a_middle_tier_boundary_is_bitwise_on_depth_4_trees() {
    use common::tiered_fixture;
    use hieradmo::core::{run_tiered, run_tiered_resumed, run_tiered_until};
    use hieradmo::topology::{TierSpec, TierTree};

    let tree = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(2, 5),
    ])
    .unwrap();
    let f = tiered_fixture(&tree);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);

    // Tick 10 = edge round 2: the region tier (period 2) just fired,
    // the root (period 4) did not — a non-leaf, non-root boundary.
    let stop = 2 * f.cfg.tau;
    assert_eq!(stop % (f.cfg.tau * tree.sync_rounds(1)), 0);
    assert_ne!(stop % (f.cfg.tau * tree.pi_total()), 0);

    let full = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &f.cfg).unwrap();
    let (first, snap) =
        run_tiered_until(&algo, &model, &tree, &f.shards, &f.test, &f.cfg, stop).unwrap();
    assert_eq!(snap.tick, stop);
    assert_eq!(
        snap.middle.len(),
        1,
        "the snapshot must carry the middle tier"
    );
    assert_eq!(snap.middle[0].len(), 2, "two region nodes");

    // The middle tier survives serialization bit-for-bit.
    let snap = TrainingSnapshot::from_json(&snap.to_json()).unwrap();

    let resumed_cfg = RunConfig {
        threads: Some(4),
        ..f.cfg.clone()
    };
    let resumed = run_tiered_resumed(
        &algo,
        &model,
        &tree,
        &f.shards,
        &f.test,
        &resumed_cfg,
        &snap,
    )
    .unwrap();

    let concat: Vec<_> = first
        .curve
        .points()
        .iter()
        .chain(resumed.curve.points())
        .copied()
        .collect();
    assert_eq!(
        concat,
        full.curve.points().to_vec(),
        "depth-4 stop/resume must match the uninterrupted run bitwise"
    );
    let concat_gamma: Vec<_> = first
        .gamma_trace
        .iter()
        .chain(&resumed.gamma_trace)
        .copied()
        .collect();
    assert_eq!(concat_gamma, full.gamma_trace, "gamma trace differs");
    assert_eq!(full.tier_gamma.len(), 1);
    let concat_tier: Vec<_> = first.tier_gamma[0]
        .iter()
        .chain(&resumed.tier_gamma[0])
        .copied()
        .collect();
    assert_eq!(
        concat_tier, full.tier_gamma[0],
        "the region tier's γ trace must partition exactly"
    );
    assert_eq!(
        resumed.final_params, full.final_params,
        "depth-4 resume must land on the exact same model"
    );

    // A snapshot whose middle-tier shape disagrees with the tree is
    // rejected before any training step.
    let mut wrong = snap.clone();
    wrong.middle.clear();
    let err = run_tiered_resumed(&algo, &model, &tree, &f.shards, &f.test, &f.cfg, &wrong);
    assert!(matches!(err, Err(RunError::Data(_))));
}

#[test]
fn file_round_trip_preserves_the_snapshot() {
    let (f, cfg) = cfg(0.0);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let (_, snap) = run_until(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, 20).unwrap();

    let dir = std::env::temp_dir().join("hieradmo-restore-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid_run.json");
    snap.save(&path).unwrap();
    let back = TrainingSnapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back, snap);
}

#[test]
fn invalid_stop_points_and_snapshots_are_rejected() {
    let (f, cfg) = cfg(0.0);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let go_until = |stop: usize| -> Result<(RunResult, TrainingSnapshot), RunError> {
        run_until(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, stop)
    };

    // Off-boundary, zero and past-the-end stop points.
    assert!(matches!(go_until(7), Err(RunError::BadConfig(_))));
    assert!(matches!(go_until(0), Err(RunError::BadConfig(_))));
    assert!(matches!(go_until(45), Err(RunError::BadConfig(_))));

    let (_, snap) = go_until(15).unwrap();

    // Wrong algorithm: HierAdMo-R is a different strategy.
    let other = HierAdMo::reduced(0.05, 0.5, 0.5);
    let err = run_resumed(
        &other,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &cfg,
        &snap,
    );
    assert!(matches!(err, Err(RunError::BadConfig(_))));

    // A snapshot at (or past) the end of the run cannot be resumed.
    let (_, done) = go_until(40).unwrap();
    let err = run_resumed(&algo, &model, &f.hierarchy, &f.shards, &f.test, &cfg, &done);
    assert!(matches!(err, Err(RunError::BadConfig(_))));

    // Shape mismatch: snapshot against a smaller hierarchy.
    let mut short = snap.clone();
    short.workers.truncate(2);
    let err = run_resumed(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &cfg,
        &short,
    );
    assert!(matches!(err, Err(RunError::Data(_))));
}

/// Sampled deep-tree stop/resume: a depth-4 *virtual-population* run
/// snapshots at a middle-tier boundary (not a root boundary), survives a
/// JSON round-trip, and resumes under a different thread count bitwise
/// identically to the uninterrupted sampled run. Cohorts re-materialize
/// from `(seed, worker, round)` streams, so the snapshot stores no RNG
/// state — this test is the gate on that claim.
#[test]
fn sampled_deep_tree_restore_at_middle_boundary_is_bitwise() {
    use common::{sampled_matrix_trees, sampled_tier_fixture};
    use hieradmo::core::population::{
        run_virtual_tiered, run_virtual_tiered_resumed, run_virtual_tiered_until,
    };

    // The depth-4 matrix tree: tau = 2, region tier syncing every 2 edge
    // rounds, root every 4. eval_every = 4 puts eval points in both
    // segments.
    let tree = sampled_matrix_trees()[1].clone();
    let f = sampled_tier_fixture(&tree);
    let cfg = RunConfig {
        eval_every: 4,
        ..f.cfg.clone()
    };
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.05, 0.5);

    // Tick 4 = edge round 2: a middle boundary, not a root boundary.
    let stop = 2 * cfg.tau;
    assert_eq!(stop % (cfg.tau * tree.sync_rounds(1)), 0);
    assert_ne!(stop % (cfg.tau * tree.pi_total()), 0);

    let full = run_virtual_tiered(
        &algo,
        &model,
        &f.population,
        &f.shards,
        &f.test,
        &cfg,
        &tree,
    )
    .unwrap();
    let (first, snap) = run_virtual_tiered_until(
        &algo,
        &model,
        &f.population,
        &f.shards,
        &f.test,
        &cfg,
        &tree,
        stop,
    )
    .unwrap();
    assert_eq!(snap.tick, stop);
    assert_eq!(
        snap.middle.len(),
        1,
        "the snapshot must carry the middle tier"
    );
    assert_eq!(snap.middle[0].len(), 2, "two region nodes");

    // The middle tier survives serialization bit-for-bit.
    let snap = TrainingSnapshot::from_json(&snap.to_json()).unwrap();

    let resumed_cfg = RunConfig {
        threads: Some(4),
        ..cfg.clone()
    };
    let resumed = run_virtual_tiered_resumed(
        &algo,
        &model,
        &f.population,
        &f.shards,
        &f.test,
        &resumed_cfg,
        &tree,
        &snap,
    )
    .unwrap();

    assert!(first.curve.points().iter().all(|p| p.iteration <= stop));
    assert!(resumed.curve.points().iter().all(|p| p.iteration > stop));
    let concat: Vec<_> = first
        .curve
        .points()
        .iter()
        .chain(resumed.curve.points())
        .copied()
        .collect();
    assert_eq!(
        concat,
        full.curve.points().to_vec(),
        "sampled depth-4 stop/resume must match the uninterrupted run bitwise"
    );
    let concat_gamma: Vec<_> = first
        .gamma_trace
        .iter()
        .chain(&resumed.gamma_trace)
        .copied()
        .collect();
    assert_eq!(concat_gamma, full.gamma_trace, "gamma trace differs");
    assert_eq!(full.tier_gamma.len(), 1);
    let concat_tier: Vec<_> = first.tier_gamma[0]
        .iter()
        .chain(&resumed.tier_gamma[0])
        .copied()
        .collect();
    assert_eq!(
        concat_tier, full.tier_gamma[0],
        "the region tier's γ trace must partition exactly"
    );
    assert_eq!(
        resumed.final_params, full.final_params,
        "sampled depth-4 resume must land on the exact same model"
    );

    // A snapshot that lost its middle tier is rejected before training.
    let mut wrong = snap.clone();
    wrong.middle.clear();
    let err = run_virtual_tiered_resumed(
        &algo,
        &model,
        &f.population,
        &f.shards,
        &f.test,
        &cfg,
        &tree,
        &wrong,
    );
    assert!(matches!(err, Err(RunError::Data(_))));
}
