//! Wire-protocol integration: the exact vectors Algorithm 1 exchanges,
//! captured from a live federation state, survive encode → decode and the
//! netsim payload accounting matches the encoded frames.

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::state::FlState;
use hieradmo::core::Strategy;
use hieradmo::netsim::payload::payload_bytes;
use hieradmo::netsim::proto::Message;
use hieradmo::tensor::Vector;
use hieradmo::topology::{Hierarchy, Weights};

/// Drives one edge interval of HierAdMo on quadratic objectives and
/// returns the state right before an edge aggregation.
fn state_before_aggregation() -> FlState {
    let hierarchy = Hierarchy::balanced(2, 2);
    let weights = Weights::uniform(&hierarchy);
    let mut state = FlState::new(hierarchy, weights, &Vector::filled(8, 0.5));
    let algo = HierAdMo::adaptive(0.05, 0.5);
    for t in 1..=5 {
        for i in 0..4 {
            let centre: Vector = (0..8).map(|d| ((i + d) % 3) as f32).collect();
            let mut grad = |p: &Vector, g: &mut Vector| *g = p - &centre;
            algo.local_step(t, &mut state.workers[i], &mut grad);
        }
    }
    state
}

#[test]
fn worker_upload_round_trips_live_state() {
    let state = state_before_aggregation();
    for (i, w) in state.workers.iter().enumerate() {
        let msg = Message::WorkerUpload {
            sender: i as u32,
            round: 1,
            y: w.y.clone(),
            x: w.x.clone(),
            grad_sum: w.grad_accum.clone(),
            y_sum: w.y_accum.clone(),
        };
        let decoded = Message::decode(&msg.encode()).expect("valid frame");
        assert_eq!(decoded, msg, "worker {i} upload corrupted in transit");
    }
}

#[test]
fn edge_and_cloud_messages_round_trip() {
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let mut state = state_before_aggregation();
    algo.edge_aggregate(1, &mut state.edge_view(0));
    algo.edge_aggregate(1, &mut state.edge_view(1));
    for (l, e) in state.edges.iter().enumerate() {
        let broadcast = Message::EdgeBroadcast {
            sender: l as u32,
            round: 1,
            y_minus: e.y_minus.clone(),
            x_plus: e.x_plus.clone(),
        };
        let decoded = Message::decode(&broadcast.encode()).expect("valid frame");
        assert_eq!(decoded, broadcast);
    }
    algo.cloud_aggregate(1, &mut state);
    let cloud = Message::CloudBroadcast {
        round: 1,
        y: state.cloud.y_plus.clone(),
        x: state.cloud.x_plus.clone(),
    };
    assert_eq!(Message::decode(&cloud.encode()).unwrap(), cloud);
}

#[test]
fn payload_accounting_matches_encoded_frames() {
    // The fig2hl payload table charges HierAdMo 4 model-sized vectors per
    // upload; the actual protocol frame must agree to within the fixed
    // per-frame header overhead.
    let dim = 5_000;
    let v = Vector::filled(dim, 1.0);
    let msg = Message::WorkerUpload {
        sender: 0,
        round: 3,
        y: v.clone(),
        x: v.clone(),
        grad_sum: v.clone(),
        y_sum: v.clone(),
    };
    let frame_len = msg.encode().len() as u64;
    let accounted = payload_bytes(dim, 4);
    let diff = frame_len.abs_diff(accounted);
    assert!(
        diff < 64,
        "frame {frame_len} vs accounted {accounted}: headers differ by {diff} (> 64B)"
    );
}

#[test]
fn tampered_live_frames_are_rejected() {
    let state = state_before_aggregation();
    let msg = Message::ModelOnly {
        sender: 0,
        round: 9,
        x: state.workers[0].x.clone(),
    };
    let frame = msg.encode();
    // Bit-flip every byte position in a stride and confirm detection.
    for pos in (0..frame.len()).step_by(7) {
        let mut bad = frame.to_vec();
        bad[pos] ^= 0x01;
        assert!(
            Message::decode(&bad).is_err(),
            "flip at byte {pos} went undetected"
        );
    }
}
