//! Depth-equivalence suite for the N-tier hierarchy generalization.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Depth-3 identity** — running any algorithm over
//!    `TierTree::three_tier` is *bitwise* the seed three-tier code path,
//!    in both engines (`run` vs `run_tiered`, `simulate` with and
//!    without an attached tree), for clean, dropout/fault and
//!    adversarial runs. The N-tier machinery must cost nothing when the
//!    tree is the classic shape — no extra RNG draws, no event-flow
//!    changes, not even a different simulated clock.
//! 2. **Cross-engine depth ≥ 4** — with a load-bearing (averaging)
//!    middle tier, the event-driven co-simulation reproduces the core
//!    driver bitwise under full sync, for every algorithm and thread
//!    count, γ-trace diagnostics included.
//! 3. **Collapse** — pass-through middles (interval 1, identity
//!    aggregation) are semantically free: training on the deep tree, on
//!    its [`TierTree::collapse`], and on the plain hierarchy all produce
//!    the same bits, deterministically and under random trees.
//! 4. **Conservation** — structural invariants hold for arbitrary valid
//!    trees: prefix/suffix node products, the interval divisibility
//!    chain, serde round-trips through the validator, subtree weights
//!    summing to one per parent, and middle aggregation being an affine
//!    average (constants are fixed points).

mod common;

use common::{
    assert_bitwise_equal, sim_config, sim_fixture, small_tier_trees, structural_tier_trees,
    tiered_fixture, tiered_sim_config,
};
use hieradmo::core::algorithms::{Cfl, HierAdMo, HierFavg};
use hieradmo::core::compression::{Compression, QuantizedHierFavg};
use hieradmo::core::{default_middle_aggregate, run, run_tiered, FlState, RunConfig, RunResult};
use hieradmo::core::{RobustAggregator, Strategy};
use hieradmo::models::zoo;
use hieradmo::netsim::{
    AdversaryPlan, AttackModel, CrashProfile, DelaySpikes, FaultPlan, LinkFaults, PermanentCrash,
};
use hieradmo::simrt::{simulate, SimResult, SyncPolicy};
use hieradmo::tensor::Vector;
use hieradmo::topology::{TierSpec, TierTree, Weights};
use proptest::prelude::*;

/// The five-algorithm lineup every equivalence gate runs: the paper's
/// adaptive and reduced variants, hierarchical FedAvg, client-sampling
/// CFL and the compressed-upload baseline.
fn lineup() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(HierAdMo::adaptive(0.01, 0.5)),
        Box::new(HierAdMo::reduced(0.01, 0.5, 0.5)),
        Box::new(HierFavg::new(0.01)),
        Box::new(Cfl::new(0.01, 0.5)),
        Box::new(QuantizedHierFavg::new(0.01, Compression::TopK { k: 8 })),
    ]
}

/// One sign-flipping Byzantine worker, defended by a trimmed mean.
fn adversarial(base: &RunConfig) -> RunConfig {
    RunConfig {
        adversary: AdversaryPlan::uniform([0], AttackModel::SignFlip { scale: 3.0 }),
        aggregator: RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
        ..base.clone()
    }
}

/// A small but active fault plan: transient crashes, one permanent
/// crash, flaky links and delay spikes.
fn fault_plan() -> FaultPlan {
    FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.1,
            min_downtime_ms: 10.0,
            max_downtime_ms: 50.0,
        }),
        permanent: vec![PermanentCrash {
            worker: 1,
            at_ms: 300.0,
        }],
        link: Some(LinkFaults::flaky()),
        spikes: Some(DelaySpikes {
            prob: 0.2,
            factor: 3.0,
        }),
    }
}

/// Bitwise equality of two core-driver results.
fn assert_runs_equal(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.curve, b.curve, "{label}: curve differs");
    assert_eq!(a.final_params, b.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, b.gamma_trace, "{label}: γ trace differs");
    assert_eq!(a.cos_trace, b.cos_trace, "{label}: cos trace differs");
    assert_eq!(a.tier_gamma, b.tier_gamma, "{label}: tier γ differs");
}

/// Bitwise equality of two co-simulations — trajectory *and* clock.
/// `tier_gamma` rows are keyed by each run's *own* declared middle
/// tiers, so only their recorded (non-empty) traces must agree; a
/// pass-through tier contributes an empty row on the deep side and no
/// row after collapsing.
fn assert_sims_equal(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.curve, b.curve, "{label}: curve differs");
    assert_eq!(a.final_params, b.final_params, "{label}: params differ");
    assert_eq!(a.gamma_trace, b.gamma_trace, "{label}: γ trace differs");
    assert_eq!(a.cos_trace, b.cos_trace, "{label}: cos trace differs");
    let recorded = |r: &SimResult| -> Vec<Vec<(usize, f32)>> {
        r.tier_gamma
            .iter()
            .filter(|t| !t.is_empty())
            .cloned()
            .collect()
    };
    assert_eq!(recorded(a), recorded(b), "{label}: tier γ differs");
    assert_eq!(a.events, b.events, "{label}: event count differs");
    assert_eq!(
        a.simulated_seconds, b.simulated_seconds,
        "{label}: simulated clock differs"
    );
}

// ---------------------------------------------------------------------
// 1. Depth-3 identity.
// ---------------------------------------------------------------------

/// `run_tiered` over the seed-shaped tree is `run`, bitwise, for all
/// five algorithms under clean, dropout and adversarial configurations.
#[test]
fn depth_3_tree_matches_the_seed_core_driver() {
    let f = sim_fixture(0.0);
    let tree = TierTree::three_tier(2, 2, f.cfg.tau, f.cfg.pi);
    let model = zoo::logistic_regression(&f.train, 1);
    let variants = [
        ("clean", f.cfg.clone()),
        (
            "dropout",
            RunConfig {
                dropout: 0.3,
                ..f.cfg.clone()
            },
        ),
        ("adversary", adversarial(&f.cfg)),
    ];
    for algo in lineup() {
        for (label, cfg) in &variants {
            let seed_path =
                run(algo.as_ref(), &model, &f.hierarchy, &f.shards, &f.test, cfg).unwrap();
            let tiered = run_tiered(algo.as_ref(), &model, &tree, &f.shards, &f.test, cfg).unwrap();
            let tag = format!("{} / {label}", algo.name());
            assert_runs_equal(&seed_path, &tiered, &tag);
            assert!(
                tiered.tier_gamma.is_empty(),
                "{tag}: a depth-3 tree has no middle tiers"
            );
        }
    }
}

/// Attaching a depth-3 tree to the co-simulation changes nothing — not
/// the trajectory, not the event count, not the simulated clock — for
/// all five algorithms under clean, faulty and adversarial runs.
#[test]
fn depth_3_tree_matches_the_seed_event_engine() {
    let f = sim_fixture(0.0);
    let tree = TierTree::three_tier(2, 2, f.cfg.tau, f.cfg.pi);
    let model = zoo::logistic_regression(&f.train, 1);
    let variants = [
        ("clean", f.cfg.clone(), FaultPlan::default()),
        ("faults", f.cfg.clone(), fault_plan()),
        ("adversary", adversarial(&f.cfg), FaultPlan::default()),
    ];
    for algo in lineup() {
        for (label, cfg, faults) in &variants {
            let plain = simulate(
                algo.as_ref(),
                &model,
                &f.hierarchy,
                &f.shards,
                &f.test,
                cfg,
                &sim_config(7, SyncPolicy::FullSync).with_faults(faults.clone()),
            )
            .unwrap();
            let tiered = simulate(
                algo.as_ref(),
                &model,
                &f.hierarchy,
                &f.shards,
                &f.test,
                cfg,
                &tiered_sim_config(&tree, 7, SyncPolicy::FullSync).with_faults(faults.clone()),
            )
            .unwrap();
            assert_sims_equal(&plain, &tiered, &format!("{} / {label}", algo.name()));
        }
    }
}

// ---------------------------------------------------------------------
// 2. Cross-engine depth ≥ 4.
// ---------------------------------------------------------------------

/// The depth-4 fixture tree: 2 regions × 2 edges × 2 workers, regions
/// syncing every 2 edge rounds and the root every 2 region rounds.
fn depth_4_tree() -> TierTree {
    TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(2, 5),
    ])
    .unwrap()
}

/// With an *averaging* middle tier the co-simulation must reproduce the
/// tiered core driver bitwise under full sync, for every algorithm and
/// thread count, and the per-tier γ traces must agree and fire at every
/// middle boundary.
#[test]
fn depth_4_average_middles_match_across_engines() {
    let tree = depth_4_tree();
    let f = tiered_fixture(&tree);
    let model = zoo::logistic_regression(&f.train, 1);
    let edge_rounds = f.cfg.total_iters / f.cfg.tau;
    for algo in lineup() {
        let reference =
            run_tiered(algo.as_ref(), &model, &tree, &f.shards, &f.test, &f.cfg).unwrap();
        assert_eq!(reference.tier_gamma.len(), 1, "one middle tier");
        assert_eq!(
            reference.tier_gamma[0].len(),
            edge_rounds / tree.sync_rounds(1),
            "the region tier fires at every second edge round"
        );
        for threads in [1usize, 4] {
            let cfg = RunConfig {
                threads: Some(threads),
                ..f.cfg.clone()
            };
            let sim = simulate(
                algo.as_ref(),
                &model,
                &f.hierarchy,
                &f.shards,
                &f.test,
                &cfg,
                &tiered_sim_config(&tree, 7, SyncPolicy::FullSync),
            )
            .unwrap();
            let tag = format!("{} depth=4 threads={threads}", algo.name());
            assert_bitwise_equal(&reference, &sim, &tag);
            assert_eq!(reference.tier_gamma, sim.tier_gamma, "{tag}: tier γ");
        }
    }
}

/// Depth-4 adversarial runs replay bitwise across engines: the
/// per-worker attack RNG streams stay aligned when middle tiers fire
/// between the edge and root reductions.
#[test]
fn depth_4_adversarial_runs_match_across_engines() {
    let tree = depth_4_tree();
    let f = tiered_fixture(&tree);
    let cfg = adversarial(&f.cfg);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let reference = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &cfg).unwrap();
    for threads in [1usize, 4] {
        let cfg = RunConfig {
            threads: Some(threads),
            ..cfg.clone()
        };
        let sim = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &tiered_sim_config(&tree, 7, SyncPolicy::FullSync),
        )
        .unwrap();
        assert_bitwise_equal(&reference, &sim, &format!("adversarial threads={threads}"));
        assert_eq!(reference.tier_gamma, sim.tier_gamma);
    }
}

// ---------------------------------------------------------------------
// 3. Collapse.
// ---------------------------------------------------------------------

/// A depth-4 tree whose middle is a pass-through trains bitwise
/// identically to its depth-3 collapse *and* to the plain hierarchy, in
/// both engines, for all five algorithms.
#[test]
fn pass_through_middles_are_semantically_free() {
    let deep = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::pass_through(2),
        TierSpec::new(1, 5),
    ])
    .unwrap();
    let flat = deep.collapse();
    assert_eq!(flat.depth(), 3, "the pass-through middle must collapse");
    assert_eq!(flat.num_edges(), deep.num_edges());

    let f = tiered_fixture(&deep);
    let model = zoo::logistic_regression(&f.train, 1);
    for algo in lineup() {
        let on_deep = run_tiered(algo.as_ref(), &model, &deep, &f.shards, &f.test, &f.cfg).unwrap();
        let on_flat = run_tiered(algo.as_ref(), &model, &flat, &f.shards, &f.test, &f.cfg).unwrap();
        let plain = run(
            algo.as_ref(),
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &f.cfg,
        )
        .unwrap();
        let tag = algo.name().to_string();
        assert_eq!(
            on_deep.curve, on_flat.curve,
            "{tag}: deep vs collapsed curve"
        );
        assert_eq!(on_deep.final_params, on_flat.final_params, "{tag}: params");
        assert_runs_equal(&plain, &on_flat, &format!("{tag}: plain vs collapsed"));
        assert!(
            on_deep.tier_gamma.iter().all(Vec::is_empty),
            "{tag}: an identity tier must record no γ"
        );

        let sim_deep = simulate(
            algo.as_ref(),
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &f.cfg,
            &tiered_sim_config(&deep, 7, SyncPolicy::FullSync),
        )
        .unwrap();
        let sim_flat = simulate(
            algo.as_ref(),
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &f.cfg,
            &tiered_sim_config(&flat, 7, SyncPolicy::FullSync),
        )
        .unwrap();
        assert_sims_equal(&sim_deep, &sim_flat, &format!("{tag}: sim deep vs flat"));
        assert_bitwise_equal(&on_deep, &sim_deep, &format!("{tag}: core vs sim deep"));
    }
}

// ---------------------------------------------------------------------
// 4. Conservation properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Prefix/suffix node products, the interval divisibility chain and
    /// collapse conservation hold for arbitrary valid trees.
    #[test]
    fn tier_arithmetic_is_conserved(tree in structural_tier_trees()) {
        let len = tree.levels().len();
        for d in 0..len {
            prop_assert_eq!(
                tree.nodes_at(d) * tree.edges_per_node(d),
                tree.num_edges(),
                "depth {} node products", d
            );
        }
        prop_assert_eq!(tree.sync_rounds(0), tree.pi_total());
        prop_assert_eq!(tree.tau(), tree.levels()[len - 1].interval);
        for d in tree.middle_depths() {
            // Deeper tiers fire on finer boundaries that divide every
            // coarser one — middle firings always nest inside root rounds.
            prop_assert_eq!(tree.sync_rounds(d - 1) % tree.sync_rounds(d), 0);
            prop_assert_eq!(tree.pi_total() % tree.sync_rounds(d), 0);
        }

        let c = tree.collapse();
        prop_assert_eq!(c.num_workers(), tree.num_workers());
        prop_assert_eq!(c.num_edges(), tree.num_edges());
        prop_assert_eq!(c.tau(), tree.tau());
        prop_assert_eq!(c.pi_total(), tree.pi_total());
        prop_assert_eq!(c.edge_hierarchy(), tree.edge_hierarchy());
        let mids = c.middle_depths();
        prop_assert!(
            !c.levels()[mids.start..mids.end].iter().any(TierSpec::is_pass_through),
            "collapse left a pass-through middle in {:?}", c
        );
        prop_assert_eq!(c.collapse(), c.clone(), "collapse is idempotent");
    }

    /// The wire form survives a JSON round-trip and re-runs the
    /// validator on the way back in.
    #[test]
    fn tier_trees_round_trip_serde(tree in structural_tier_trees()) {
        let json = serde_json::to_string(&tree).unwrap();
        let back: TierTree = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, tree);
    }

    /// For any tree and any positive per-worker sample counts, each
    /// parent's subtree weights are a finite partition of unity, and an
    /// averaging middle tier maps constant edges to the same constant.
    #[test]
    fn subtree_weights_partition_unity(
        tree in small_tier_trees(),
        raw in proptest::collection::vec(0usize..1000, 64),
    ) {
        let h = tree.edge_hierarchy();
        let samples: Vec<u64> = (0..tree.num_workers())
            .map(|i| 1 + raw[i % raw.len()] as u64)
            .collect();
        let w = Weights::from_samples(&h, &samples);
        let x0 = Vector::from(vec![1.5, -0.25, 3.0]);
        let mut s = FlState::new(h, w, &x0);
        s.attach_tree(tree.clone());

        for d in 1..tree.levels().len() {
            let fanout = tree.levels()[d - 1].fanout;
            for parent in 0..tree.nodes_at(d - 1) {
                let total: f64 = (parent * fanout..(parent + 1) * fanout)
                    .map(|n| {
                        let wt = s.subtree_weight(d, n);
                        prop_assert!(wt.is_finite() && wt > 0.0, "weight({}, {}) = {}", d, n, wt);
                        Ok(wt)
                    })
                    .sum::<Result<f64, TestCaseError>>()?;
                prop_assert!((total - 1.0).abs() < 1e-12, "parent {} sums to {}", parent, total);
            }
        }

        // Every tier starts at x0; an averaging middle node must
        // therefore reproduce x0 (a weighted average of equal vectors).
        for d in tree.middle_depths() {
            for node in 0..tree.nodes_at(d) {
                default_middle_aggregate(d, node, &mut s);
                let got = &s.middle[d - 1][node].x_plus;
                for i in 0..x0.len() {
                    prop_assert!(
                        (got[i] - x0[i]).abs() < 1e-5,
                        "middle({}, {})[{}] drifted: {} vs {}", d, node, i, got[i], x0[i]
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small trees whose pass-through middles are collapsed train
    /// identically to the original — the proptest form of the headline
    /// collapse guarantee, over trees of depth 3–5.
    #[test]
    fn random_trees_train_identically_to_their_collapse(tree in small_tier_trees()) {
        let f = tiered_fixture(&tree);
        let model = zoo::logistic_regression(&f.train, 1);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        let on_tree = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &f.cfg).unwrap();
        let on_collapse =
            run_tiered(&algo, &model, &tree.collapse(), &f.shards, &f.test, &f.cfg).unwrap();
        prop_assert_eq!(on_tree.curve, on_collapse.curve);
        prop_assert_eq!(on_tree.final_params, on_collapse.final_params);
        prop_assert_eq!(on_tree.gamma_trace, on_collapse.gamma_trace);
    }
}
