//! Integration of training with the trace-driven network simulator: the
//! full Fig. 2(h)/(l) pipeline (train → curve → timeline → time-to-acc).

use hieradmo::core::algorithms::{FedNag, HierAdMo};
use hieradmo::core::{run, RunConfig};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::models::{zoo, Model};
use hieradmo::netsim::payload::payload_bytes;
use hieradmo::netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo::topology::{Hierarchy, Schedule};

#[test]
fn full_trace_driven_pipeline_produces_times() {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: hieradmo::data::FeatureShape::Flat(16),
        noise: 0.4,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 10, 3);
    let shards = x_class_partition(&tt.train, 4, 2, 3);
    let model = zoo::logistic_regression(&tt.train, 3);
    let dim = model.dim();
    let total = 100;
    let env = NetworkEnv::paper_testbed(4);

    // Three-tier HierAdMo.
    let cfg3 = RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: total,
        batch_size: 16,
        eval_every: 10,
        threads: Some(1),
        ..RunConfig::default()
    };
    let h3 = Hierarchy::balanced(2, 2);
    let res3 = run(
        &HierAdMo::adaptive(0.05, 0.5),
        &model,
        &h3,
        &shards,
        &tt.test,
        &cfg3,
    )
    .unwrap();
    let tl3 = simulate_timeline(
        &env,
        &TraceConfig {
            schedule: Schedule::three_tier(10, 2, total).unwrap(),
            hierarchy: h3,
            architecture: Architecture::ThreeTier,
            upload_bytes: payload_bytes(dim, 4),
            download_bytes: payload_bytes(dim, 2),
            seed: 5,
        },
    );

    // Two-tier FedNAG with the fairness-rule schedule.
    let cfg2 = cfg3.two_tier_equivalent();
    let h2 = Hierarchy::two_tier(4);
    let res2 = run(
        &FedNag::new(0.05, 0.5),
        &model,
        &h2,
        &shards,
        &tt.test,
        &cfg2,
    )
    .unwrap();
    let tl2 = simulate_timeline(
        &env,
        &TraceConfig {
            schedule: Schedule::two_tier(20, total).unwrap(),
            hierarchy: h2,
            architecture: Architecture::TwoTier,
            upload_bytes: payload_bytes(dim, 2),
            download_bytes: payload_bytes(dim, 2),
            seed: 5,
        },
    );

    // Both reach a modest target; both timelines yield a finite time.
    let target = 0.6;
    let t3 = tl3.time_to_accuracy(&res3.curve, target);
    let t2 = tl2.time_to_accuracy(&res2.curve, target);
    assert!(t3.is_some(), "HierAdMo never reached {target}");
    assert!(t2.is_some(), "FedNAG never reached {target}");
    assert!(t3.unwrap() > 0.0 && t2.unwrap() > 0.0);

    // Per full schedule, the three-tier run must not pay more WAN time:
    // it crosses the WAN 5 times vs 5 for two-tier, but its other 5
    // aggregations are LAN-only — so equal-or-faster overall, modulo the
    // heavier HierAdMo payload. Allow a generous band and check the
    // communication structure is sane.
    assert!(tl3.total_seconds() < tl2.total_seconds() * 2.0);
}

#[test]
fn wan_dominance_grows_with_model_size() {
    // The architectural gap (paper Fig. 1) widens with payload size: for a
    // large model, two-tier total time inflates much faster than
    // three-tier.
    let env = NetworkEnv::paper_testbed(4);
    let ratio = |dim: usize| {
        let three = simulate_timeline(
            &env,
            &TraceConfig::new(
                Schedule::three_tier(10, 2, 200).unwrap(),
                Hierarchy::balanced(2, 2),
                Architecture::ThreeTier,
                payload_bytes(dim, 1),
                9,
            ),
        );
        let two = simulate_timeline(
            &env,
            &TraceConfig::new(
                Schedule::two_tier(20, 200).unwrap(),
                Hierarchy::two_tier(4),
                Architecture::TwoTier,
                payload_bytes(dim, 1),
                9,
            ),
        );
        two.total_seconds() / three.total_seconds()
    };
    let small = ratio(1_000);
    let large = ratio(5_000_000);
    assert!(
        large > small,
        "two-tier/three-tier time ratio should grow with model size: \
         {small:.3} (1k params) vs {large:.3} (5M params)"
    );
    assert!(
        large > 1.0,
        "for big models two-tier must be slower: {large:.3}"
    );
}
