//! Empirical validation of the paper's theory (Theorems 1–5) on measured
//! runs — the virtual-update construction, the bound functions, and the
//! τ/π trends of Theorem 4.

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::theory::{
    estimate_beta, estimate_divergence, estimate_rho, weighted_delta, BoundConstants,
};
use hieradmo::core::virtual_update::{merge_shards, virtual_trajectory};
use hieradmo::core::{run, RunConfig};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::data::Dataset;
use hieradmo::models::{zoo, Model, Sequential};
use hieradmo::tensor::Vector;
use hieradmo::topology::Hierarchy;

fn flat_problem(noise: f32, seed: u64) -> (Dataset, Dataset, Vec<Dataset>, Sequential) {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: hieradmo::data::FeatureShape::Flat(12),
        noise,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 10, seed);
    let shards = x_class_partition(&tt.train, 4, 2, seed + 1);
    let model = zoo::logistic_regression(&tt.train, seed + 2);
    (tt.train, tt.test, shards, model)
}

/// Theorem 1, measured: simulate one edge's workers for τ full-batch
/// local NAG steps from a common start, and compare the aggregated
/// trajectory against the edge *virtual* trajectory; the gap must respect
/// `h(t, δℓ)` computed from estimated constants.
#[test]
fn theorem1_gap_is_bounded_by_h() {
    let (_, _, shards, model) = flat_problem(0.6, 11);
    let eta = 0.05f32;
    let gamma = 0.5f32;
    let tau = 8usize;

    // Edge 0 = shards 0 and 1 with equal weights.
    let edge_shards = [&shards[0], &shards[1]];
    let merged = merge_shards(&edge_shards);

    // Real per-worker trajectories (full-batch gradients so the comparison
    // is deterministic, matching the analysis).
    let x0 = model.params();
    let mut xs: Vec<Vector> = vec![x0.clone(); 2];
    let mut ys: Vec<Vector> = vec![x0.clone(); 2];
    let mut models: Vec<Sequential> = vec![model.clone(), model.clone()];
    let weights = [
        shards[0].len() as f64 / merged.len() as f64,
        shards[1].len() as f64 / merged.len() as f64,
    ];

    // Virtual trajectory on the merged edge loss.
    let mut vmodel = model.clone();
    let virt = virtual_trajectory(&mut vmodel, &merged, &x0, &x0, eta, gamma, tau);

    // Assumptions 2–3 bound β and δ as *suprema over all x*; any sampling
    // estimator only lower-bounds them. Measure both along the trajectory
    // region the theorem actually compares (the virtual iterates), then
    // apply a modest safety factor for the tube the real worker iterates
    // wander through.
    let mut probe = model.clone();
    let grad_of = |m: &mut Sequential, d: &Dataset, x: &Vector| {
        let idx: Vec<usize> = (0..d.len()).collect();
        m.set_params(x);
        m.loss_and_grad(d, &idx).1
    };
    let mut beta = estimate_beta(&mut probe, &merged, 4, 3);
    for pair in virt.windows(2) {
        let ga = grad_of(&mut probe, &merged, &pair[0]);
        let gb = grad_of(&mut probe, &merged, &pair[1]);
        let dx = f64::from(pair[0].distance(&pair[1]));
        if dx > 1e-9 {
            beta = beta.max(f64::from(ga.distance(&gb)) / dx);
        }
    }
    let sampled = estimate_divergence(&mut probe, &shards[..2], 4, 3);
    let mut deltas = sampled;
    for point in &virt {
        let g0 = grad_of(&mut probe, &shards[0], point);
        let g1 = grad_of(&mut probe, &shards[1], point);
        let g_edge = Vector::weighted_average([(weights[0], &g0), (weights[1], &g1)]);
        deltas[0] = deltas[0].max(f64::from(g0.distance(&g_edge)));
        deltas[1] = deltas[1].max(f64::from(g1.distance(&g_edge)));
    }
    let safety = 1.5;
    let beta = beta * safety;
    let delta_edge = weighted_delta(&deltas, &[shards[0].len(), shards[1].len()]) * safety;
    let consts = BoundConstants::new(f64::from(eta), beta, f64::from(gamma));

    for (t, virt_t) in virt.iter().enumerate().skip(1) {
        for w in 0..2 {
            let idx: Vec<usize> = (0..shards[w].len()).collect();
            models[w].set_params(&xs[w]);
            let g = models[w].loss_and_grad(&shards[w], &idx).1;
            let mut y_new = xs[w].clone();
            y_new.axpy(-eta, &g);
            let mut x_new = y_new.clone();
            x_new.axpy(gamma, &(&y_new - &ys[w]));
            xs[w] = x_new;
            ys[w] = y_new;
        }
        let aggregated = Vector::weighted_average([(weights[0], &xs[0]), (weights[1], &xs[1])]);
        let gap = f64::from(aggregated.distance(virt_t));
        let bound = consts.h(t, delta_edge);
        assert!(
            gap <= bound + 1e-6,
            "Theorem 1 violated at t={t}: gap {gap} > h({t}, {delta_edge:.4}) = {bound}"
        );
    }
}

/// Theorem 2, measured: at an edge aggregation the edge-momentum step
/// moves the model by at most `s(τ) = γℓ·τ·η·ρ·(γμ+γ+1)`.
#[test]
fn theorem2_edge_momentum_displacement_is_bounded_by_s() {
    let (_, test, shards, model) = flat_problem(0.6, 13);
    let eta = 0.05f32;
    let gamma = 0.5f32;
    let tau = 8usize;
    let cfg = RunConfig {
        eta,
        gamma,
        tau,
        pi: 1,
        total_iters: tau, // exactly one edge interval
        batch_size: 64,   // big batches ≈ full gradients
        eval_every: tau,
        threads: Some(1),
        ..RunConfig::default()
    };

    // Fixed γℓ so s(τ)'s γℓ is known.
    let gamma_edge = 0.5f32;
    let algo = HierAdMo::reduced(eta, gamma, gamma_edge);
    let h = Hierarchy::balanced(2, 2);
    let res = run(&algo, &model, &h, &shards, &test, &cfg).expect("run");
    // ‖x_{ℓ+} − x_{ℓ−}‖ = γℓ‖x̄_kτ − x̄_{(k−1)τ}‖ is what the algorithm
    // actually produced; we can't observe it post-hoc from RunResult, so
    // bound the *global* displacement instead: the final model is within
    // s(τ)·(1 + 1/γℓ) + τη(γμ+γ+1)ρ of the start, which the same constants
    // control. Measure ρ and μ̂ from the data and assert the weaker form.
    let mut probe = model.clone();
    let merged = merge_shards(&[&shards[0], &shards[1], &shards[2], &shards[3]]);
    let rho = estimate_rho(&mut probe, &merged, 4, 3);
    let consts = BoundConstants::new(f64::from(eta), 1.0, f64::from(gamma));
    // μ (Eq. 30) is bounded by the observed momentum/gradient ratio; for a
    // single interval from a cold start μ ≤ 1 + γ (velocity built from at
    // most τ η-sized gradient steps). Use a conservative μ = 2.
    let s_tau = consts.s(tau, f64::from(gamma_edge), rho, 2.0);
    let travel = f64::from(res.final_params.distance(&model.params()));
    // Total travel ≤ worker travel (τ steps of η(1+γ)ρ each) + edge step.
    let worker_travel = tau as f64 * f64::from(eta) * (1.0 + f64::from(gamma)) * rho * 2.0;
    assert!(
        travel <= worker_travel + s_tau,
        "one-interval travel {travel} exceeds worker budget {worker_travel} + s(τ) {s_tau}"
    );
    assert!(s_tau > 0.0);
}

/// Theorem 4's trend: larger τ (with T fixed) worsens the final loss, and
/// the bound function j(τ, π) grows accordingly.
#[test]
fn theorem4_larger_tau_hurts_both_measured_and_bound() {
    let (_, test, shards, model) = flat_problem(0.8, 17);
    let run_with_tau = |tau: usize| {
        let cfg = RunConfig {
            eta: 0.05,
            tau,
            pi: 2,
            total_iters: 240,
            batch_size: 16,
            eval_every: 240,
            threads: Some(1),
            ..RunConfig::default()
        };
        let algo = HierAdMo::reduced(0.05, 0.5, 0.5);
        run(
            &algo,
            &model,
            &Hierarchy::balanced(2, 2),
            &shards,
            &test,
            &cfg,
        )
        .expect("run")
        .curve
        .final_train_loss()
        .unwrap()
    };
    let small_tau = run_with_tau(4);
    let large_tau = run_with_tau(40);
    assert!(
        small_tau <= large_tau * 1.05,
        "τ=4 loss {small_tau} should not exceed τ=40 loss {large_tau}"
    );

    // And the analytic bound moves the same way.
    let consts = BoundConstants::new(0.05, 1.0, 0.5);
    let edges = [(0.5, 1.0), (0.5, 1.0)];
    let j_small = consts.j_round(4, 2, &edges, 1.0, 0.5, 1.0, 1.0);
    let j_large = consts.j_round(40, 2, &edges, 1.0, 0.5, 1.0, 1.0);
    assert!(j_small < j_large);
}

/// Theorem 5's mechanism, measured over a real run: the *mean* adapted γℓ
/// stays below any aggressive fixed setting, giving the tighter s(τ).
#[test]
fn theorem5_adapted_gamma_mean_is_moderate() {
    let (_, test, shards, model) = flat_problem(0.8, 19);
    let cfg = RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: 200,
        batch_size: 16,
        eval_every: 200,
        threads: Some(1),
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let res = run(
        &algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &test,
        &cfg,
    )
    .expect("run");
    let mean: f32 =
        res.gamma_trace.iter().map(|&(_, g)| g).sum::<f32>() / res.gamma_trace.len() as f32;
    assert!(
        (0.0..=0.99).contains(&mean),
        "mean adapted γℓ {mean} outside the clamp range"
    );
    // The adapted mean must be strictly below the divergence-risking cap.
    assert!(mean < 0.99);
}

/// The divergence estimator orders homogeneity correctly: i.i.d. shards
/// have smaller δ than x-class shards.
#[test]
fn divergence_estimator_orders_heterogeneity() {
    let (train, _, _, model) = flat_problem(0.6, 23);
    let iid = hieradmo::data::partition::iid_partition(&train, 4, 1);
    let skew = x_class_partition(&train, 4, 1, 1);
    let mut probe = model.clone();
    let d_iid = estimate_divergence(&mut probe, &iid, 4, 5);
    let d_skew = estimate_divergence(&mut probe, &skew, 4, 5);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&d_iid) < mean(&d_skew),
        "iid divergence {} should be below 1-class divergence {}",
        mean(&d_iid),
        mean(&d_skew)
    );
}
