//! The execution engine's determinism contract: for any thread count, a
//! run produces bitwise-identical results — convergence curve, adaptive-γℓ
//! trace, and final parameters — because work is chunked in a fixed order
//! and every worker owns its own RNG stream. Checked for both HierAdMo
//! variants, with and without failure injection.

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RunConfig, RunResult, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

fn run_with(algo: &dyn Strategy, threads: usize, dropout: f64) -> RunResult {
    let tt = SyntheticDataset::mnist_like(30, 10, 11);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let model = zoo::logistic_regression(&tt.train, 5);
    let cfg = RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters: 100,
        batch_size: 16,
        eval_every: 25,
        threads: Some(threads),
        dropout,
        ..RunConfig::default()
    };
    run(
        algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &tt.test,
        &cfg,
    )
    .expect("run should succeed")
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn assert_bitwise_invariant(algo: &dyn Strategy, dropout: f64) {
    let reference = run_with(algo, 1, dropout);
    for threads in thread_counts() {
        let res = run_with(algo, threads, dropout);
        assert_eq!(
            reference.curve,
            res.curve,
            "{} curve diverged at threads = {threads} (dropout = {dropout})",
            algo.name()
        );
        assert_eq!(
            reference.gamma_trace,
            res.gamma_trace,
            "{} γℓ trace diverged at threads = {threads} (dropout = {dropout})",
            algo.name()
        );
        assert_eq!(
            reference.final_params,
            res.final_params,
            "{} final params diverged at threads = {threads} (dropout = {dropout})",
            algo.name()
        );
    }
}

#[test]
fn adaptive_hieradmo_is_bitwise_identical_across_thread_counts() {
    assert_bitwise_invariant(&HierAdMo::adaptive(0.05, 0.5), 0.0);
}

#[test]
fn reduced_hieradmo_is_bitwise_identical_across_thread_counts() {
    assert_bitwise_invariant(&HierAdMo::reduced(0.05, 0.5, 0.3), 0.0);
}

#[test]
fn determinism_survives_failure_injection() {
    // Dropout draws come from a dedicated RNG stream consumed serially on
    // the driver thread, so even fault patterns are thread-count-invariant.
    assert_bitwise_invariant(&HierAdMo::adaptive(0.05, 0.5), 0.2);
    assert_bitwise_invariant(&HierAdMo::reduced(0.05, 0.5, 0.3), 0.2);
}

#[test]
fn deprecated_parallel_flag_matches_explicit_threads() {
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let explicit = run_with(&algo, 1, 0.0);

    let tt = SyntheticDataset::mnist_like(30, 10, 11);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let model = zoo::logistic_regression(&tt.train, 5);
    let cfg = RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters: 100,
        batch_size: 16,
        eval_every: 25,
        threads: None,
        ..RunConfig::default()
    };
    let legacy = run(
        &algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &tt.test,
        &cfg,
    )
    .expect("run should succeed");
    assert_eq!(explicit.curve, legacy.curve);
    assert_eq!(explicit.final_params, legacy.final_params);
}
