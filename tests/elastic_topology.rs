//! Acceptance gates for the elastic hierarchy runtime.
//!
//! Four guarantees are pinned here, mirroring the depth-equivalence
//! suite's structure for the topology-churn axis:
//!
//! 1. **Empty-plan identity** — `run_elastic` / `simulate_elastic` with
//!    an empty [`ChurnPlan`] are *bitwise* the frozen-tree engines for
//!    every algorithm in the five-algorithm lineup: same curve, final
//!    parameters, diagnostics traces and simulated clock, with all-zero
//!    topology counters. Elasticity must cost nothing when nothing
//!    churns.
//! 2. **Churn determinism** — a non-trivial `(plan, seed)` pair replays
//!    bitwise across thread counts *and* across engines (core driver vs
//!    FullSync co-simulation), topology counters included.
//! 3. **Graceful degradation** — permanently failing a minority edge
//!    mid-run, with its workers live-re-parented onto the survivor,
//!    finishes within three points of the clean run's accuracy.
//! 4. **Composition** — churn composes with a fault plan and an
//!    adversary plan under every [`SyncPolicy`] without deadlock, and a
//!    checkpoint taken mid-plan resumes across the remaining topology
//!    epochs bitwise, through a JSON round-trip, at any thread count.

mod common;

use common::{
    assert_bitwise_equal, matrix_policies, sim_config, sim_fixture, wide_sim_fixture, SimFixture,
};
use hieradmo::core::algorithms::{Cfl, HierAdMo, HierFavg};
use hieradmo::core::compression::{Compression, QuantizedHierFavg};
use hieradmo::core::{
    run, run_elastic, run_elastic_resumed, run_elastic_until, Strategy, TrainingSnapshot,
};
use hieradmo::data::partition::x_class_partition;
use hieradmo::netsim::{
    stream_seed, AdversaryPlan, AttackModel, CrashProfile, DelaySpikes, FaultPlan, LinkFaults,
    PermanentCrash,
};
use hieradmo::simrt::{simulate, simulate_elastic, SyncPolicy};
use hieradmo::topology::{churn_stream_seed, ChurnPlan, ScheduledEvent, TopologyEvent};

/// The five-algorithm lineup every equivalence gate runs.
fn lineup() -> Vec<Box<dyn Strategy>> {
    vec![
        Box::new(HierAdMo::adaptive(0.01, 0.5)),
        Box::new(HierAdMo::reduced(0.01, 0.5, 0.5)),
        Box::new(HierFavg::new(0.01)),
        Box::new(Cfl::new(0.01, 0.5)),
        Box::new(QuantizedHierFavg::new(0.01, Compression::TopK { k: 8 })),
    ]
}

/// [`sim_fixture`] stretched for churn: five registered workers over the
/// 2 × 2 tree (uid 4 starts absent, available to `Join`) and 40 ticks,
/// so cloud rounds 1–3 are usable churn boundaries (ticks 10, 20, 30).
fn churn_fixture() -> SimFixture {
    let mut fx = sim_fixture(0.0);
    fx.shards = x_class_partition(&fx.train, 5, 2, 11);
    fx.cfg.total_iters = 40;
    fx.cfg.eval_every = 7;
    fx
}

/// Join the spare worker, fail an edge (re-homing its members), then
/// re-form: one of every event family the counters distinguish.
fn churn_plan() -> ChurnPlan {
    ChurnPlan {
        events: vec![
            ScheduledEvent {
                round: 1,
                event: TopologyEvent::Join { worker: 4, edge: 0 },
            },
            ScheduledEvent {
                round: 2,
                event: TopologyEvent::EdgeFail { edge: 1 },
            },
            ScheduledEvent {
                round: 3,
                event: TopologyEvent::EdgeReform,
            },
        ],
        reform_every: None,
    }
}

#[test]
fn empty_plan_is_bitwise_identical_to_the_frozen_engines() {
    let fx = sim_fixture(0.0);
    for strategy in lineup() {
        let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
        let frozen = run(
            strategy.as_ref(),
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &fx.cfg,
        )
        .unwrap();
        let elastic = run_elastic(
            strategy.as_ref(),
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &fx.cfg,
        )
        .unwrap();
        let label = strategy.name();
        assert_eq!(frozen.curve, elastic.curve, "{label}: curve differs");
        assert_eq!(
            frozen.final_params, elastic.final_params,
            "{label}: final params differ"
        );
        assert_eq!(frozen.gamma_trace, elastic.gamma_trace, "{label}: gamma");
        assert_eq!(frozen.cos_trace, elastic.cos_trace, "{label}: cos");
        assert!(
            elastic.topology.is_zero(),
            "{label}: empty plan tallied topology counters"
        );

        let sim_cfg = sim_config(7, SyncPolicy::FullSync);
        let frozen_sim = simulate(
            strategy.as_ref(),
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &fx.cfg,
            &sim_cfg,
        )
        .unwrap();
        let elastic_sim = simulate_elastic(
            strategy.as_ref(),
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &fx.cfg,
            &sim_cfg,
        )
        .unwrap();
        assert_bitwise_equal(&frozen, &elastic_sim, &format!("{label} (sim)"));
        assert_eq!(
            frozen_sim.simulated_seconds, elastic_sim.simulated_seconds,
            "{label}: simulated clock differs"
        );
        assert_eq!(
            frozen_sim.timed_curve, elastic_sim.timed_curve,
            "{label}: timed curve differs"
        );
        assert!(elastic_sim.topology.is_zero(), "{label}: sim counters");
    }
}

#[test]
fn churn_replays_bitwise_across_thread_counts_and_engines() {
    let fx = churn_fixture();
    let plan = churn_plan();
    let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
    let strategy = HierAdMo::adaptive(0.01, 0.5);

    let mut cfg1 = fx.cfg.clone();
    cfg1.churn = plan.clone();
    let core1 = run(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg1,
    );
    assert!(
        core1.is_err(),
        "the frozen core driver must reject a non-empty churn plan"
    );
    let core1 = run_elastic(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg1,
    )
    .unwrap();

    let mut cfg4 = cfg1.clone();
    cfg4.threads = Some(4);
    let core4 = run_elastic(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg4,
    )
    .unwrap();
    assert_eq!(core1.final_params, core4.final_params, "thread count");
    assert_eq!(core1.curve, core4.curve, "thread count: curve");
    assert_eq!(core1.topology, core4.topology, "thread count: counters");

    assert_eq!(core1.topology.joins, 1);
    assert_eq!(core1.topology.leaves, 0);
    assert_eq!(core1.topology.orphaned_rounds, 2, "EdgeFail strands 2");
    assert_eq!(core1.topology.reformations, 1);
    assert!(
        core1.topology.migrations >= 2,
        "both stranded workers must re-home"
    );

    let sim_cfg = sim_config(7, SyncPolicy::FullSync);
    let frozen_sim = simulate(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg1,
        &sim_cfg,
    );
    assert!(
        frozen_sim.is_err(),
        "the frozen co-simulation must reject a non-empty churn plan"
    );
    let sim = simulate_elastic(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg1,
        &sim_cfg,
    )
    .unwrap();
    assert_bitwise_equal(&core1, &sim, "churn cross-engine");
    assert_eq!(core1.topology, sim.topology, "cross-engine counters");
}

#[test]
fn edge_failure_with_live_reparenting_degrades_gracefully() {
    let fx = wide_sim_fixture();
    let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
    let strategy = HierAdMo::adaptive(0.01, 0.5);
    let clean = run(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &fx.cfg,
    )
    .unwrap();

    // Fail edge 1 at the half-way cloud round (tick 100 of 200); its four
    // workers re-home under edge 0 and keep training there.
    let mut cfg = fx.cfg.clone();
    cfg.churn = ChurnPlan {
        events: vec![ScheduledEvent {
            round: 10,
            event: TopologyEvent::EdgeFail { edge: 1 },
        }],
        reform_every: None,
    };
    let churned =
        run_elastic(&strategy, &model, &fx.hierarchy, &fx.shards, &fx.test, &cfg).unwrap();
    assert_eq!(churned.topology.orphaned_rounds, 4);
    assert_eq!(churned.topology.migrations, 4);

    let clean_acc = clean.curve.final_accuracy().unwrap();
    let churn_acc = churned.curve.final_accuracy().unwrap();
    assert!(
        churn_acc >= clean_acc - 0.03,
        "edge failure cost more than 3 points: clean {clean_acc:.4}, churned {churn_acc:.4}"
    );
}

#[test]
fn churn_composes_with_faults_and_adversaries_under_every_policy() {
    let fx = churn_fixture();
    let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
    let strategy = HierAdMo::adaptive(0.01, 0.5);

    let mut cfg = fx.cfg.clone();
    cfg.churn = churn_plan();
    cfg.adversary = AdversaryPlan::uniform([0], AttackModel::SignFlip { scale: 3.0 });

    let faults = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.2,
            min_downtime_ms: 10.0,
            max_downtime_ms: 50.0,
        }),
        permanent: vec![PermanentCrash {
            worker: 1,
            at_ms: 150.0,
        }],
        link: Some(LinkFaults::flaky()),
        spikes: Some(DelaySpikes {
            prob: 0.2,
            factor: 3.0,
        }),
    };

    for policy in matrix_policies() {
        let sim_cfg = sim_config(11, policy).with_faults(faults.clone());
        let a = simulate_elastic(
            &strategy,
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &cfg,
            &sim_cfg,
        )
        .unwrap_or_else(|e| panic!("{policy:?} deadlocked or failed: {e:?}"));
        assert!(
            !a.curve.is_empty(),
            "{policy:?}: churn + faults produced no eval points"
        );
        assert!(
            a.final_params.iter().all(|p| p.is_finite()),
            "{policy:?}: non-finite parameters"
        );
        assert!(a.simulated_seconds > 0.0, "{policy:?}: clock never moved");
        assert_eq!(a.topology.joins, 1, "{policy:?}: join not applied");
        assert_eq!(a.topology.reformations, 1, "{policy:?}: reform not applied");

        // The same chaos cell replays bitwise: determinism survives the
        // full fault × adversary × churn composition.
        let b = simulate_elastic(
            &strategy,
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &cfg,
            &sim_cfg,
        )
        .unwrap();
        assert_eq!(a.final_params, b.final_params, "{policy:?}: replay");
        assert_eq!(a.timed_curve, b.timed_curve, "{policy:?}: replay clock");
    }
}

#[test]
fn checkpoint_resumes_across_a_topology_epoch_boundary() {
    let fx = churn_fixture();
    let plan = churn_plan();
    let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
    let strategy = HierAdMo::adaptive(0.01, 0.5);
    let mut cfg = fx.cfg.clone();
    cfg.churn = plan;

    let full = run_elastic(&strategy, &model, &fx.hierarchy, &fx.shards, &fx.test, &cfg).unwrap();

    // Stop mid-epoch at tick 25: the Join (tick 10) and EdgeFail (tick
    // 20) epochs are behind the snapshot, the EdgeReform (tick 30) still
    // ahead of it.
    let (_, snap) = run_elastic_until(
        &strategy,
        &model,
        &fx.hierarchy,
        &fx.shards,
        &fx.test,
        &cfg,
        25,
    )
    .unwrap();
    let topo = snap.topology.as_ref().expect("elastic snapshot");
    assert_eq!(topo.live_edges(), vec![0], "edge 1 failed before the cut");
    assert_eq!(snap.workers.len(), 5, "joined worker checkpointed");
    // The re-homed ex-members of edge 1 carry damped but non-zero
    // momentum through the checkpoint.
    let moved: Vec<usize> = (0..5).filter(|&u| topo.parent_of(u) == Some(0)).collect();
    assert_eq!(moved.len(), 5, "all five workers sit under the survivor");

    let json = snap.to_json();
    let restored = TrainingSnapshot::from_json(&json).unwrap();
    assert_eq!(restored.tick, 25);
    assert_eq!(restored.topology, snap.topology, "topology survives JSON");

    for threads in [1usize, 4] {
        let mut resume_cfg = cfg.clone();
        resume_cfg.threads = Some(threads);
        let resumed = run_elastic_resumed(
            &strategy,
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &resume_cfg,
            &restored,
        )
        .unwrap();
        assert_eq!(
            resumed.final_params, full.final_params,
            "resume at {threads} threads diverged"
        );
        // Only the reform boundary remains ahead of the snapshot.
        assert_eq!(resumed.topology.reformations, 1, "threads {threads}");
        assert_eq!(resumed.topology.joins, 0, "threads {threads}");
        assert_eq!(resumed.topology.orphaned_rounds, 0, "threads {threads}");
    }
}

#[test]
fn churn_streams_reuse_the_netsim_stream_hash() {
    for master in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        for stream in [0u64, 1, 7, 1_000_003] {
            assert_eq!(
                churn_stream_seed(master, stream),
                stream_seed(master, stream),
                "churn streams must be the netsim SplitMix64 hash bit-for-bit"
            );
        }
    }
}

#[test]
fn deadline_policy_survives_a_minority_edge_failure_without_deadlock() {
    // The CI churn-smoke step's no-deadlock gate: kill the minority edge
    // under each relaxed policy and require the run to drain to the end.
    let fx = churn_fixture();
    let model = hieradmo::models::zoo::logistic_regression(&fx.train, 3);
    let strategy = HierFavg::new(0.01);
    let mut cfg = fx.cfg.clone();
    cfg.churn = ChurnPlan {
        events: vec![ScheduledEvent {
            round: 1,
            event: TopologyEvent::EdgeFail { edge: 1 },
        }],
        reform_every: None,
    };
    for policy in matrix_policies() {
        let sim_cfg = sim_config(3, policy);
        let out = simulate_elastic(
            &strategy,
            &model,
            &fx.hierarchy,
            &fx.shards,
            &fx.test,
            &cfg,
            &sim_cfg,
        )
        .unwrap_or_else(|e| panic!("{policy:?} failed after edge death: {e:?}"));
        assert_eq!(out.topology.orphaned_rounds, 2, "{policy:?}");
        assert!(!out.curve.is_empty(), "{policy:?}: no eval points");
    }
}
