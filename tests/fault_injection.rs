//! Failure-injection tests: worker dropout (straggler/crash emulation)
//! must degrade gracefully, never corrupt the protocol, and vanish
//! exactly when disabled.

mod common;

use common::{dropout_cfg as cfg, synthetic_setup as setup};
use hieradmo::core::algorithms::{HierAdMo, HierFavg};
use hieradmo::core::{run, RunConfig};
use hieradmo::topology::Hierarchy;

#[test]
fn zero_dropout_is_bit_identical_to_fault_free() {
    let (test, shards, model) = setup();
    let h = Hierarchy::balanced(2, 2);
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let clean = run(&algo, &model, &h, &shards, &test, &cfg(0.0)).unwrap();
    // Default config has dropout = 0.0 implicitly.
    let mut default_cfg = cfg(0.0);
    default_cfg.dropout = 0.0;
    let default_run = run(&algo, &model, &h, &shards, &test, &default_cfg).unwrap();
    assert_eq!(clean.curve, default_run.curve);
}

#[test]
fn moderate_dropout_still_learns() {
    let (test, shards, model) = setup();
    let h = Hierarchy::balanced(2, 2);
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let res = run(&algo, &model, &h, &shards, &test, &cfg(0.3)).unwrap();
    let acc = res.curve.final_accuracy().unwrap();
    assert!(
        acc > 0.6,
        "30% per-tick dropout should only slow, not break, training: {acc}"
    );
    assert!(res.final_params.is_finite());
}

#[test]
fn total_dropout_freezes_the_model() {
    let (test, shards, model) = setup();
    let h = Hierarchy::balanced(2, 2);
    let algo = HierFavg::new(0.05);
    let res = run(&algo, &model, &h, &shards, &test, &cfg(1.0)).unwrap();
    // No worker ever computes: the global model stays at initialization.
    use hieradmo::models::Model;
    let gap = res.final_params.distance(&model.params());
    assert!(
        gap < 1e-6,
        "with 100% dropout the model must never move, moved by {gap}"
    );
}

#[test]
fn dropout_hurts_monotonically_in_expectation() {
    let (test, shards, model) = setup();
    let h = Hierarchy::balanced(2, 2);
    let algo = HierFavg::new(0.05);
    // Average loss over seeds to smooth fault-pattern noise.
    let mean_loss = |dropout: f64| -> f64 {
        (0..3)
            .map(|seed| {
                let c = RunConfig {
                    seed,
                    dropout,
                    ..cfg(dropout)
                };
                run(&algo, &model, &h, &shards, &test, &c)
                    .unwrap()
                    .curve
                    .final_train_loss()
                    .unwrap()
            })
            .sum::<f64>()
            / 3.0
    };
    let clean = mean_loss(0.0);
    let faulty = mean_loss(0.6);
    assert!(
        clean <= faulty,
        "60% dropout should not train better than fault-free: {clean} vs {faulty}"
    );
}

#[test]
fn dropout_runs_are_deterministic_per_seed() {
    let (test, shards, model) = setup();
    let h = Hierarchy::balanced(2, 2);
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let a = run(&algo, &model, &h, &shards, &test, &cfg(0.4)).unwrap();
    let b = run(&algo, &model, &h, &shards, &test, &cfg(0.4)).unwrap();
    assert_eq!(a.curve, b.curve, "same seed, same fault pattern");
}
