//! Chaos suite for the deterministic fault-injection layer.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Equivalence** — an *empty* `FaultPlan` is not merely "few faults":
//!    it takes zero RNG draws and leaves the co-simulation bitwise
//!    identical to a fault-free run (and, under full sync, to the core
//!    driver), for every policy and thread count.
//! 2. **Determinism** — the same `(FaultPlan, net_seed)` replays the whole
//!    run bitwise, counters included; a different `net_seed` draws a
//!    different fault sequence.
//! 3. **Liveness** — permanently crashing a strict minority of workers
//!    deadlocks no policy: every run completes and exports its per-actor
//!    fault counters.

mod common;

use common::{
    assert_bitwise_equal, sim_config, sim_fixture, small_tier_trees, tiered_fixture,
    tiered_sim_config,
};
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RunConfig, Strategy};
use hieradmo::metrics::export::{sim_run_from_json, sim_run_to_json, SimRunRecord};
use hieradmo::models::zoo;
use hieradmo::netsim::{CrashProfile, DelaySpikes, FaultPlan, LinkFaults, PermanentCrash};
use hieradmo::simrt::{simulate, SimError, SimResult, SyncPolicy};
use proptest::prelude::*;

/// All three synchronization policies, with parameters valid for the
/// 2-edge × 2-worker fixture.
fn all_policies() -> [SyncPolicy; 3] {
    [
        SyncPolicy::FullSync,
        SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 50.0,
        },
        SyncPolicy::AsyncAge { max_staleness: 2 },
    ]
}

fn simulate_with<S: Strategy + ?Sized>(
    algo: &S,
    f: &common::SimFixture,
    cfg: &RunConfig,
    net_seed: u64,
    policy: SyncPolicy,
    faults: FaultPlan,
) -> Result<SimResult, SimError> {
    simulate(
        algo,
        &zoo::logistic_regression(&f.train, 1),
        &f.hierarchy,
        &f.shards,
        &f.test,
        cfg,
        &sim_config(net_seed, policy).with_faults(faults),
    )
}

fn total_counters(sim: &SimResult) -> (u64, u64, u64, u64, u64, f64) {
    let mut t = (0, 0, 0, 0, 0, 0.0);
    for a in &sim.faults {
        t.0 += a.counters.crashes;
        t.1 += a.counters.messages_lost;
        t.2 += a.counters.retries;
        t.3 += a.counters.transfer_failures;
        t.4 += a.counters.duplicates_received;
        t.5 += a.counters.recovery_ms;
    }
    t
}

fn assert_zero_counters(sim: &SimResult, label: &str) {
    for a in &sim.faults {
        assert!(
            a.counters.is_zero(),
            "{label}: empty plan must tally nothing, {} counted {:?}",
            a.actor,
            a.counters
        );
    }
}

// ---------------------------------------------------------------------
// 1. Equivalence gates.
// ---------------------------------------------------------------------

/// Under full sync, a run with an explicitly attached empty plan matches
/// the core driver bitwise — for both HierAdMo variants and across thread
/// counts. This extends `simrt_equivalence.rs` to the fault-injection
/// code path.
#[test]
fn empty_plan_full_sync_is_bitwise_identical_to_core_driver() {
    let f = sim_fixture(0.0);
    let adaptive = HierAdMo::adaptive(0.01, 0.5);
    let reduced = HierAdMo::reduced(0.01, 0.5, 0.5);
    let algos: [&dyn Strategy; 2] = [&adaptive, &reduced];
    for algo in algos {
        let model = zoo::logistic_regression(&f.train, 1);
        let reference = run(algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).unwrap();
        for threads in [1usize, 4] {
            let cfg = RunConfig {
                threads: Some(threads),
                ..f.cfg.clone()
            };
            let sim =
                simulate_with(algo, &f, &cfg, 7, SyncPolicy::FullSync, FaultPlan::none()).unwrap();
            let label = format!("{} threads={threads}", algo.name());
            assert_bitwise_equal(&reference, &sim, &label);
            assert_zero_counters(&sim, &label);
        }
    }
}

/// Every policy produces the same run whether the empty plan is attached
/// explicitly or the config never mentions faults at all — same model,
/// same virtual clock, same event count.
#[test]
fn empty_plan_matches_fault_free_run_under_every_policy() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    for policy in all_policies() {
        let model = zoo::logistic_regression(&f.train, 1);
        let plain = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &f.cfg,
            &sim_config(7, policy),
        )
        .unwrap();
        let with_empty = simulate_with(&algo, &f, &f.cfg, 7, policy, FaultPlan::none()).unwrap();
        let label = policy.label();
        assert_eq!(plain.curve, with_empty.curve, "{label}: curve");
        assert_eq!(plain.timed_curve, with_empty.timed_curve, "{label}: timed");
        assert_eq!(
            plain.final_params, with_empty.final_params,
            "{label}: params"
        );
        assert_eq!(
            plain.simulated_seconds, with_empty.simulated_seconds,
            "{label}: clock"
        );
        assert_eq!(plain.events, with_empty.events, "{label}: event count");
        assert_zero_counters(&with_empty, &label);
    }
}

// ---------------------------------------------------------------------
// 2. Determinism.
// ---------------------------------------------------------------------

/// Builds a random-but-valid fault plan from primitive draws: moderate
/// crash rates, lossy links and delay spikes, all independently toggled.
/// (The vendored proptest shim has no `prop_compose!`, so the composition
/// lives in a plain function.)
#[allow(clippy::too_many_arguments)]
fn build_plan(
    crash_on: bool,
    per_step: f64,
    min_dt: f64,
    extra_dt: f64,
    link_on: bool,
    loss: f64,
    fail: f64,
    dup: f64,
    spikes_on: bool,
    spike_prob: f64,
    spike_factor: f64,
) -> FaultPlan {
    FaultPlan {
        crash: crash_on.then_some(CrashProfile {
            per_step,
            min_downtime_ms: min_dt,
            max_downtime_ms: min_dt + extra_dt,
        }),
        permanent: Vec::new(),
        link: link_on.then_some(LinkFaults {
            loss_prob: loss,
            fail_prob: fail,
            dup_prob: dup,
            ..LinkFaults::flaky()
        }),
        spikes: spikes_on.then_some(DelaySpikes {
            prob: spike_prob,
            factor: spike_factor,
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same `(FaultPlan, net_seed)` replays the entire simulation
    /// bitwise: trajectory, virtual clock, event count and every per-actor
    /// fault counter.
    fn identical_plan_and_seed_replay_bitwise(
        crash_on in any::<bool>(),
        per_step in 0.01..0.25f64,
        min_dt in 10.0..100.0f64,
        extra_dt in 0.0..300.0f64,
        link_on in any::<bool>(),
        loss in 0.0..0.2f64,
        fail in 0.0..0.2f64,
        dup in 0.0..0.2f64,
        spikes_on in any::<bool>(),
        spike_prob in 0.0..0.5f64,
        spike_factor in 1.5..8.0f64,
        net_seed in 0u64..1000,
        policy_idx in 0usize..3,
    ) {
        let plan = build_plan(
            crash_on, per_step, min_dt, extra_dt, link_on, loss, fail, dup,
            spikes_on, spike_prob, spike_factor,
        );
        let f = sim_fixture(0.0);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        let policy = all_policies()[policy_idx];
        let a = simulate_with(&algo, &f, &f.cfg, net_seed, policy, plan.clone()).unwrap();
        let b = simulate_with(&algo, &f, &f.cfg, net_seed, policy, plan).unwrap();
        prop_assert_eq!(a.curve, b.curve);
        prop_assert_eq!(a.timed_curve, b.timed_curve);
        prop_assert_eq!(a.final_params, b.final_params);
        prop_assert_eq!(a.simulated_seconds, b.simulated_seconds);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.faults, b.faults);
    }
}

/// Different net seeds draw different fault event sequences from the same
/// plan.
#[test]
fn different_net_seed_draws_a_different_fault_sequence() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.5,
            min_downtime_ms: 20.0,
            max_downtime_ms: 400.0,
        }),
        link: Some(LinkFaults::flaky()),
        ..FaultPlan::none()
    };
    let a = simulate_with(&algo, &f, &f.cfg, 1, SyncPolicy::FullSync, plan.clone()).unwrap();
    let b = simulate_with(&algo, &f, &f.cfg, 2, SyncPolicy::FullSync, plan).unwrap();
    assert_ne!(
        a.faults, b.faults,
        "independent seeds must not replay the same faults"
    );
    let (crashes, _, _, _, _, recovery_ms) = total_counters(&a);
    assert!(crashes > 0, "a 50% per-step crash rate must crash someone");
    assert!(recovery_ms > 0.0, "crashes must accumulate downtime");
}

// ---------------------------------------------------------------------
// 3. Liveness under permanent crashes.
// ---------------------------------------------------------------------

/// Permanently killing one of four workers (a strict minority) deadlocks
/// no policy: every run completes, reaches the final tick where possible,
/// and exports counters for all seven actors.
#[test]
fn no_policy_deadlocks_when_a_minority_of_workers_die() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        permanent: vec![PermanentCrash {
            worker: 1,
            at_ms: 50.0,
        }],
        ..FaultPlan::none()
    };
    for policy in all_policies() {
        let sim = simulate_with(&algo, &f, &f.cfg, 7, policy, plan.clone())
            .unwrap_or_else(|e| panic!("{} deadlocked or failed: {e}", policy.label()));
        let label = policy.label();
        assert!(!sim.curve.is_empty(), "{label}: no evaluations recorded");
        assert!(
            sim.final_params.is_finite(),
            "{label}: corrupted model under permanent crash"
        );
        assert_eq!(
            sim.faults.len(),
            7,
            "{label}: 4 workers + 2 edges + cloud must all export counters"
        );
        let dead = &sim.faults[1];
        assert_eq!(dead.actor, "worker-1");
        assert!(
            dead.counters.crashes >= 1,
            "{label}: the killed worker must count its crash"
        );
        // Everyone else keeps working after the death.
        assert!(sim.simulated_seconds > 0.05, "{label}: run ended too early");
    }
}

/// Transient chaos (crashes + flaky links + stragglers) degrades
/// convergence gracefully: the run completes with finite parameters and
/// still learns, mirroring `fault_injection.rs`'s dropout assertions.
#[test]
fn convergence_degrades_gracefully_under_transient_chaos() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.05,
            min_downtime_ms: 20.0,
            max_downtime_ms: 200.0,
        }),
        link: Some(LinkFaults::flaky()),
        spikes: Some(DelaySpikes {
            prob: 0.1,
            factor: 4.0,
        }),
        ..FaultPlan::none()
    };
    let clean = simulate_with(
        &algo,
        &f,
        &f.cfg,
        7,
        SyncPolicy::FullSync,
        FaultPlan::none(),
    )
    .unwrap();
    let chaotic = simulate_with(&algo, &f, &f.cfg, 7, SyncPolicy::FullSync, plan).unwrap();
    assert!(chaotic.final_params.is_finite());
    let clean_acc = clean.curve.final_accuracy().unwrap();
    let chaos_acc = chaotic.curve.final_accuracy().unwrap();
    assert!(
        chaos_acc >= clean_acc - 0.25,
        "chaos should slow training, not break it: {chaos_acc} vs clean {clean_acc}"
    );
    // And the chaos was real: faults were tallied and time was lost.
    let (_, lost, retries, failures, _, _) = total_counters(&chaotic);
    assert!(
        lost + retries + failures > 0,
        "flaky links must tally some mishap"
    );
    assert!(
        chaotic.simulated_seconds > clean.simulated_seconds,
        "faults must cost virtual time: {} vs {}",
        chaotic.simulated_seconds,
        clean.simulated_seconds
    );
}

/// Link faults alone (no crashes) never touch the model under full sync —
/// every upload is eventually delivered, so only the time axis moves.
#[test]
fn link_faults_only_stretch_time_without_changing_the_trajectory() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        link: Some(LinkFaults {
            loss_prob: 0.15,
            fail_prob: 0.1,
            dup_prob: 0.1,
            ..LinkFaults::flaky()
        }),
        ..FaultPlan::none()
    };
    let clean = simulate_with(
        &algo,
        &f,
        &f.cfg,
        7,
        SyncPolicy::FullSync,
        FaultPlan::none(),
    )
    .unwrap();
    let lossy = simulate_with(&algo, &f, &f.cfg, 7, SyncPolicy::FullSync, plan).unwrap();
    assert_eq!(
        clean.curve, lossy.curve,
        "retried uploads must not alter the model"
    );
    assert_eq!(clean.final_params, lossy.final_params);
    assert!(
        lossy.simulated_seconds > clean.simulated_seconds,
        "retries and timeouts must cost virtual time"
    );
    let (crashes, lost, retries, _, _, _) = total_counters(&lossy);
    assert_eq!(crashes, 0);
    assert!(
        lost > 0 && retries > 0,
        "losses must be tallied and retried"
    );
}

// ---------------------------------------------------------------------
// Plumbing: validation and export.
// ---------------------------------------------------------------------

#[test]
fn invalid_plans_and_configs_are_rejected_before_the_run() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);

    // Certain-death crash probability fails FaultPlan validation.
    let bad_plan = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 1.0,
            min_downtime_ms: 1.0,
            max_downtime_ms: 2.0,
        }),
        ..FaultPlan::none()
    };
    let err = simulate_with(&algo, &f, &f.cfg, 7, SyncPolicy::FullSync, bad_plan).unwrap_err();
    assert!(matches!(err, SimError::Fault(_)), "got {err}");

    // A permanent crash naming a worker that does not exist.
    let out_of_range = FaultPlan {
        permanent: vec![PermanentCrash {
            worker: 99,
            at_ms: 1.0,
        }],
        ..FaultPlan::none()
    };
    let err = simulate_with(&algo, &f, &f.cfg, 7, SyncPolicy::FullSync, out_of_range).unwrap_err();
    assert!(matches!(err, SimError::Fault(_)), "got {err}");

    // Zero payloads fail SimConfig validation.
    let mut cfg = sim_config(7, SyncPolicy::FullSync);
    cfg.upload_bytes = 0;
    let err = simulate(
        &algo,
        &zoo::logistic_regression(&f.train, 1),
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &cfg,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::Policy(_)), "got {err}");
}

#[test]
fn fault_counters_export_through_sim_run_record() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        link: Some(LinkFaults::flaky()),
        ..FaultPlan::none()
    };
    let sim = simulate_with(&algo, &f, &f.cfg, 7, SyncPolicy::FullSync, plan).unwrap();
    let record = SimRunRecord::new(
        sim.algorithm.clone(),
        sim.policy.clone(),
        sim.timed_curve.clone(),
        0.9,
        sim.utilization.clone(),
    )
    .with_faults(sim.faults.clone());
    let back = sim_run_from_json(&sim_run_to_json(&record)).unwrap();
    assert_eq!(back, record);
    assert_eq!(back.faults.len(), 7);
}

/// A tiny fixed plan for the CI `chaos-smoke` step: completes fast and
/// checks the full plumbing (injection → recovery → counters) end to end.
#[test]
fn chaos_smoke_small_fixed_plan() {
    let f = sim_fixture(0.0);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let plan = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.1,
            min_downtime_ms: 10.0,
            max_downtime_ms: 50.0,
        }),
        permanent: vec![PermanentCrash {
            worker: 3,
            at_ms: 200.0,
        }],
        link: Some(LinkFaults::flaky()),
        spikes: Some(DelaySpikes {
            prob: 0.2,
            factor: 3.0,
        }),
    };
    let sim = simulate_with(
        &algo,
        &f,
        &f.cfg,
        13,
        SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 50.0,
        },
        plan,
    )
    .unwrap();
    assert!(!sim.curve.is_empty());
    assert!(sim.final_params.is_finite());
    assert_eq!(sim.faults.len(), 7);
    let (crashes, ..) = total_counters(&sim);
    assert!(crashes >= 1, "the smoke plan must actually inject faults");
}

/// Depth-4 chaos smoke for the CI `chaos-smoke` step: on an N-tier tree
/// an *empty* plan keeps the co-simulation bitwise identical to the
/// tiered core driver for any thread count, and a fixed plan — with the
/// crash target addressed by tier path rather than flat index — replays
/// bitwise under the same `(plan, net_seed)` while actually injecting
/// faults.
#[test]
fn depth_4_chaos_smoke() {
    use hieradmo::core::run_tiered;
    use hieradmo::topology::{TierPath, TierSpec, TierTree};

    let tree = TierTree::new(vec![
        TierSpec::new(2, 2),
        TierSpec::new(2, 2),
        TierSpec::new(2, 5),
    ])
    .unwrap();
    let f = tiered_fixture(&tree);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);

    // Empty plan: bitwise the tiered core driver, clock included.
    let reference = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &f.cfg).unwrap();
    for threads in [1usize, 4] {
        let cfg = RunConfig {
            threads: Some(threads),
            ..f.cfg.clone()
        };
        let sim = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &tiered_sim_config(&tree, 13, SyncPolicy::FullSync),
        )
        .unwrap();
        assert_bitwise_equal(
            &reference,
            &sim,
            &format!("depth-4 empty threads={threads}"),
        );
        assert_zero_counters(&sim, "depth-4 empty plan");
    }

    // Fixed plan, crash target addressed as region 1 / edge 0 / worker 1.
    let crash = PermanentCrash::at_path(&tree, &TierPath(vec![1, 0, 1]), 200.0).unwrap();
    assert_eq!(crash.worker, 5, "path [1,0,1] is flat worker 5");
    let plan = FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.1,
            min_downtime_ms: 10.0,
            max_downtime_ms: 50.0,
        }),
        permanent: vec![crash],
        link: Some(LinkFaults::flaky()),
        spikes: Some(DelaySpikes {
            prob: 0.2,
            factor: 3.0,
        }),
    };
    let run_plan = |threads: usize| {
        let cfg = RunConfig {
            threads: Some(threads),
            ..f.cfg.clone()
        };
        simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &tiered_sim_config(&tree, 13, SyncPolicy::FullSync).with_faults(plan.clone()),
        )
        .unwrap()
    };
    let a = run_plan(1);
    let b = run_plan(4);
    assert_eq!(a.curve, b.curve, "depth-4 fault replay across threads");
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.simulated_seconds, b.simulated_seconds);
    assert_eq!(total_counters(&a), total_counters(&b));
    let (crashes, ..) = total_counters(&a);
    assert!(crashes >= 1, "the depth-4 plan must actually inject faults");
    assert!(a.final_params.is_finite());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The empty-plan guarantee generalizes past the fixtures: on random
    /// small tier trees (depth 3–5, pass-through middles included), a
    /// faultless full-sync co-simulation is bitwise identical to the
    /// tiered core driver and takes zero fault draws.
    #[test]
    fn empty_plans_are_bitwise_on_random_trees(tree in small_tier_trees()) {
        use hieradmo::core::run_tiered;

        let f = tiered_fixture(&tree);
        let model = zoo::logistic_regression(&f.train, 1);
        let algo = HierAdMo::adaptive(0.01, 0.5);
        let reference = run_tiered(&algo, &model, &tree, &f.shards, &f.test, &f.cfg).unwrap();
        let sim = simulate(
            &algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &f.cfg,
            &tiered_sim_config(&tree, 29, SyncPolicy::FullSync).with_faults(FaultPlan::none()),
        )
        .unwrap();
        assert_bitwise_equal(&reference, &sim, &format!("random tree {:?}", tree.levels()));
        assert_zero_counters(&sim, "random-tree empty plan");
    }
}
