//! Property-based invariants for the robust aggregation rules
//! (`hieradmo_core::RobustAggregator`), driven by randomized inputs:
//!
//! - the coordinate-wise trimmed mean and median are bounded, per
//!   coordinate, by the min/max of the inputs — a Byzantine value can
//!   shift them only within the honest span, never beyond it;
//! - norm-clipping bounds the aggregate's norm by the threshold;
//! - every rule collapses to the exact `Vector::weighted_average` when
//!   nothing triggers (zero trim depth, no norm over the threshold, or a
//!   single input), so the defenses are pay-for-what-you-use.

use hieradmo::core::RobustAggregator;
use hieradmo::tensor::Vector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n` random vectors of `dim` coordinates in [-10, 10] with positive
/// weights, all derived from `seed`.
fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<(f64, Vector)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let w = rng.gen_range(0.1..5.0f64);
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-10.0..10.0f32)).collect();
            (w, Vector::from(v))
        })
        .collect()
}

fn aggregate(rule: RobustAggregator, inputs: &[(f64, Vector)]) -> Vector {
    rule.aggregate(inputs.iter().map(|(w, v)| (*w, v)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Order statistics are bounded by their inputs: for every coordinate,
    /// the trimmed mean and the median stay inside the inputs' min/max
    /// span. (With every input honest this is the formal version of "the
    /// defense cannot invent values"; with Byzantine inputs it bounds the
    /// attacker's reach to the input span.)
    fn trimmed_and_median_stay_inside_the_coordinate_span(
        n in 2usize..6,
        dim in 1usize..6,
        seed in 0u64..10_000,
        trim_ratio in 0.0..0.5f64,
    ) {
        let inputs = random_inputs(n, dim, seed);
        for rule in [
            RobustAggregator::TrimmedMean { trim_ratio },
            RobustAggregator::Median,
        ] {
            let out = aggregate(rule, &inputs);
            for c in 0..dim {
                let lo = inputs.iter().map(|(_, v)| v.as_slice()[c]).fold(f32::INFINITY, f32::min);
                let hi = inputs.iter().map(|(_, v)| v.as_slice()[c]).fold(f32::NEG_INFINITY, f32::max);
                let got = out.as_slice()[c];
                // A hair of f32 slack for the renormalized f64 average.
                prop_assert!(
                    got >= lo - 1e-4 && got <= hi + 1e-4,
                    "{}: coordinate {c} left the span: {got} not in [{lo}, {hi}]",
                    rule.label()
                );
            }
        }
    }

    /// Norm-clipping bounds the aggregate: scaling every offending input
    /// to the threshold makes the weighted average a convex combination of
    /// vectors of norm <= threshold, so the output norm is <= threshold.
    fn norm_clip_bounds_the_aggregate_norm(
        n in 1usize..6,
        dim in 1usize..6,
        seed in 0u64..10_000,
        threshold in 0.5..20.0f32,
    ) {
        let inputs = random_inputs(n, dim, seed);
        let out = aggregate(RobustAggregator::NormClip { threshold }, &inputs);
        prop_assert!(
            out.norm() <= threshold * (1.0 + 1e-5),
            "clipped aggregate norm {} exceeds threshold {threshold}",
            out.norm()
        );
    }

    /// Untriggered defenses are the identity: a trim depth of zero and an
    /// unreachable clip threshold return the plain data-weighted mean
    /// bit-for-bit.
    fn untriggered_rules_equal_the_weighted_mean_bitwise(
        n in 1usize..6,
        dim in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let inputs = random_inputs(n, dim, seed);
        let mean = aggregate(RobustAggregator::Mean, &inputs);
        // trim_ratio low enough that floor(trim_ratio * n) == 0.
        let zero_trim = RobustAggregator::TrimmedMean { trim_ratio: 0.9 / (n as f64) };
        prop_assert_eq!(&aggregate(zero_trim, &inputs), &mean);
        let max_norm = inputs.iter().map(|(_, v)| v.norm()).fold(0.0f32, f32::max);
        let no_clip = RobustAggregator::NormClip { threshold: max_norm + 1.0 };
        prop_assert_eq!(&aggregate(no_clip, &inputs), &mean);
    }

    /// With a single input, every rule returns that input's value: there
    /// is nothing to trim, outvote or outweigh.
    fn single_input_is_returned_by_every_rule(
        dim in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let inputs = random_inputs(1, dim, seed);
        let max_norm = inputs[0].1.norm() + 1.0;
        for rule in [
            RobustAggregator::Mean,
            RobustAggregator::TrimmedMean { trim_ratio: 0.4 },
            RobustAggregator::Median,
            RobustAggregator::NormClip { threshold: max_norm },
        ] {
            let out = aggregate(rule, &inputs);
            for c in 0..dim {
                let (got, want) = (out.as_slice()[c], inputs[0].1.as_slice()[c]);
                prop_assert!(
                    (got - want).abs() <= 1e-5,
                    "{}: coordinate {c}: {got} vs {want}",
                    rule.label()
                );
            }
        }
    }
}
