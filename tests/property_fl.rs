//! Property-based tests (proptest) on the core data structures and
//! federated invariants.

use proptest::prelude::*;

use hieradmo::core::adaptive::clamp_gamma;
use hieradmo::data::partition::{dirichlet_partition, iid_partition, x_class_partition};
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::data::{Dataset, FeatureShape};
use hieradmo::tensor::Vector;
use hieradmo::topology::{Hierarchy, Schedule, Weights};

fn small_dataset(classes: usize, per_class: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec {
        num_classes: classes,
        shape: FeatureShape::Flat(4),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    generate(&spec, per_class, 1, seed).train
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted averages stay inside the elementwise min/max envelope.
    #[test]
    fn weighted_average_stays_in_envelope(
        values in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 4),
            1..6,
        ),
        weights in proptest::collection::vec(0.01f64..10.0, 6),
    ) {
        let vectors: Vec<Vector> = values.iter().map(|v| Vector::from(v.clone())).collect();
        let avg = Vector::weighted_average(
            vectors.iter().zip(&weights).map(|(v, &w)| (w, v)),
        );
        for i in 0..4 {
            let lo = vectors.iter().map(|v| v[i]).fold(f32::INFINITY, f32::min);
            let hi = vectors.iter().map(|v| v[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= lo - 1e-3 && avg[i] <= hi + 1e-3,
                "avg[{i}] = {} outside [{lo}, {hi}]", avg[i]);
        }
    }

    /// Cosine similarity is always in [-1, 1] and symmetric.
    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in proptest::collection::vec(-50.0f32..50.0, 8),
        b in proptest::collection::vec(-50.0f32..50.0, 8),
    ) {
        let va = Vector::from(a);
        let vb = Vector::from(b);
        let c1 = va.cosine(&vb);
        let c2 = vb.cosine(&va);
        prop_assert!((-1.0..=1.0).contains(&c1));
        prop_assert!((c1 - c2).abs() < 1e-5);
    }

    /// Eq. 7's clamp always lands in [0, 0.99] and is monotone.
    #[test]
    fn gamma_clamp_range_and_monotonicity(c1 in -2.0f32..2.0, c2 in -2.0f32..2.0) {
        let g1 = clamp_gamma(c1);
        let g2 = clamp_gamma(c2);
        prop_assert!((0.0..=0.99).contains(&g1));
        if c1 <= c2 {
            prop_assert!(g1 <= g2, "clamp must be monotone: {c1}->{g1}, {c2}->{g2}");
        }
    }

    /// Any valid (τ, π, T) schedule satisfies T = Kτ = Pτπ with the
    /// aggregation ticks nested correctly.
    #[test]
    fn schedule_invariants(tau in 1usize..20, pi in 1usize..10, rounds in 1usize..10) {
        let total = tau * pi * rounds;
        let s = Schedule::three_tier(tau, pi, total).unwrap();
        prop_assert_eq!(s.num_edge_aggregations() * tau, total);
        prop_assert_eq!(s.num_cloud_aggregations() * tau * pi, total);
        let mut edge_count = 0;
        let mut cloud_count = 0;
        for tick in s.ticks() {
            if tick.cloud_aggregation.is_some() {
                prop_assert!(tick.edge_aggregation.is_some());
                cloud_count += 1;
            }
            if tick.edge_aggregation.is_some() {
                edge_count += 1;
            }
        }
        prop_assert_eq!(edge_count, s.num_edge_aggregations());
        prop_assert_eq!(cloud_count, s.num_cloud_aggregations());
    }

    /// iid partitions preserve every sample exactly once.
    #[test]
    fn iid_partition_is_exact_cover(
        workers in 1usize..8,
        per_class in 2usize..8,
        seed in 0u64..50,
    ) {
        let ds = small_dataset(4, per_class, seed);
        prop_assume!(ds.len() >= workers);
        let shards = iid_partition(&ds, workers, seed);
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, ds.len());
        // Class histograms add up to the original.
        let mut merged = vec![0usize; 4];
        for s in &shards {
            for (c, n) in s.class_histogram().into_iter().enumerate() {
                merged[c] += n;
            }
        }
        prop_assert_eq!(merged, ds.class_histogram());
    }

    /// x-class partitions never give a worker more than x classes.
    #[test]
    fn x_class_partition_respects_x(
        workers in 1usize..6,
        x in 1usize..5,
        seed in 0u64..50,
    ) {
        let ds = small_dataset(5, 6, seed);
        prop_assume!(x <= 5);
        let shards = x_class_partition(&ds, workers, x, seed);
        for shard in &shards {
            let held = shard.class_histogram().iter().filter(|&&n| n > 0).count();
            prop_assert!(held <= x);
        }
    }

    /// Dirichlet partitions cover all samples for any α.
    #[test]
    fn dirichlet_partition_is_exact_cover(
        alpha in 0.05f64..50.0,
        workers in 1usize..6,
        seed in 0u64..50,
    ) {
        let ds = small_dataset(3, 8, seed);
        let shards = dirichlet_partition(&ds, workers, alpha, seed);
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, ds.len());
    }

    /// Data weights always normalize: Σᵢ D_{i,ℓ}/D_ℓ = 1 per edge and
    /// Σℓ D_ℓ/D = 1.
    #[test]
    fn weights_normalize(
        sizes in proptest::collection::vec(1u64..100, 2..10),
        split in 1usize..5,
    ) {
        let split = split.min(sizes.len() - 1).max(1);
        let h = Hierarchy::new(vec![split, sizes.len() - split]);
        prop_assume!(h.num_workers() == sizes.len());
        let w = Weights::from_samples(&h, &sizes);
        for edge in 0..h.num_edges() {
            let sum: f64 = h.edge_workers(edge).map(|i| w.worker_in_edge(i)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        let edges_sum: f64 = (0..h.num_edges()).map(|l| w.edge_in_total(l)).sum();
        prop_assert!((edges_sum - 1.0).abs() < 1e-9);
    }

    /// Flat-index mapping is a bijection for arbitrary hierarchies.
    #[test]
    fn hierarchy_flat_index_bijection(
        sizes in proptest::collection::vec(1usize..6, 1..6),
    ) {
        let h = Hierarchy::new(sizes);
        let ids: Vec<_> = h.workers().collect();
        prop_assert_eq!(ids.len(), h.num_workers());
        for (flat, id) in ids.iter().enumerate() {
            prop_assert_eq!(h.flat_index(*id), flat);
            prop_assert_eq!(h.worker_at(flat), *id);
        }
    }
}

/// The paper's Appendix-A equivalence: the y-form NAG update (Algorithm 1
/// lines 5–6) equals the v-form (Eqs. 24–25) exactly.
#[test]
fn nag_forms_are_equivalent() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for _ in 0..50 {
        let dim = 6;
        let eta = rng.gen_range(0.001f32..0.2);
        let gamma = rng.gen_range(0.0f32..0.95);
        let x0: Vector = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // A fixed quadratic gradient field g(x) = Hx with random diagonal H.
        let diag: Vec<f32> = (0..dim).map(|_| rng.gen_range(0.1..2.0)).collect();
        let grad = |x: &Vector| -> Vector { x.iter().zip(&diag).map(|(v, d)| v * d).collect() };

        // y-form.
        let mut xy = x0.clone();
        let mut y = x0.clone();
        // v-form (Eq. 24–25): v ← γv − η∇F(x); x ← x + γv − η∇F(x).
        let mut xv = x0.clone();
        let mut v = Vector::zeros(dim);

        for _ in 0..12 {
            // y-form step.
            let g = grad(&xy);
            let mut y_new = xy.clone();
            y_new.axpy(-eta, &g);
            let mut x_new = y_new.clone();
            x_new.axpy(gamma, &(&y_new - &y));
            xy = x_new;
            y = y_new;

            // v-form step.
            let gv = grad(&xv);
            let mut v_new = v.scaled(gamma);
            v_new.axpy(-eta, &gv);
            let mut xv_new = xv.clone();
            xv_new += &v_new.scaled(gamma);
            xv_new.axpy(-eta, &gv);
            xv = xv_new;
            v = v_new;

            let gap = xy.distance(&xv);
            assert!(
                gap < 1e-4,
                "y-form and v-form diverged: {gap} (eta={eta}, gamma={gamma})"
            );
        }
    }
}
