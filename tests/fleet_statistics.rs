//! Multi-seed statistical checks via the fleet runner: the Table II
//! headline holds in expectation, not just on one lucky seed.

use hieradmo::core::algorithms::{FedAvg, HierAdMo, HierFavg};
use hieradmo::core::fleet::repeat;
use hieradmo::core::strategy::Tier;
use hieradmo::core::{RunConfig, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

fn fleet_accuracy(strategy: &dyn Strategy) -> hieradmo::metrics::MeanStd {
    // Noise and horizon are tuned so no algorithm saturates: momentum's
    // early-phase advantage is exactly what Table II measures.
    let spec = SyntheticSpec {
        num_classes: 5,
        shape: hieradmo::data::FeatureShape::Flat(20),
        noise: 1.4,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 20, 55);
    let shards = x_class_partition(&tt.train, 4, 2, 55);
    let model = zoo::logistic_regression(&tt.train, 55);
    let base = RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: 100,
        batch_size: 16,
        eval_every: 100,
        threads: Some(1),
        ..RunConfig::default()
    };
    let (hierarchy, cfg) = match strategy.tier() {
        Tier::Three => (Hierarchy::balanced(2, 2), base),
        Tier::Two => (Hierarchy::two_tier(4), base.two_tier_equivalent()),
    };
    repeat(
        strategy, &model, &hierarchy, &shards, &tt.test, &cfg, &SEEDS,
    )
    .expect("fleet run")
    .accuracy
}

#[test]
fn fleet_repeat_is_bitwise_identical_across_thread_counts() {
    // `repeat` varies only the seed between runs; the execution-engine
    // thread count must not leak into any curve. Compare full per-seed
    // curves bitwise, not just the Mean±Std summary.
    let spec = SyntheticSpec {
        num_classes: 5,
        shape: hieradmo::data::FeatureShape::Flat(20),
        noise: 1.4,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 20, 55);
    let shards = x_class_partition(&tt.train, 4, 2, 55);
    let model = zoo::logistic_regression(&tt.train, 55);
    let base = RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters: 40,
        batch_size: 16,
        eval_every: 10,
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let fleet_at = |threads: usize| {
        let cfg = RunConfig {
            threads: Some(threads),
            ..base.clone()
        };
        repeat(
            &algo,
            &model,
            &Hierarchy::balanced(2, 2),
            &shards,
            &tt.test,
            &cfg,
            &SEEDS,
        )
        .expect("fleet run")
    };
    let single = fleet_at(1);
    let quad = fleet_at(4);
    assert_eq!(single.curves.len(), SEEDS.len());
    for (i, (a, b)) in single.curves.iter().zip(&quad.curves).enumerate() {
        assert_eq!(
            a, b,
            "seed {} curve differs between 1 and 4 threads",
            SEEDS[i]
        );
    }
    assert_eq!(single.accuracy.mean.to_bits(), quad.accuracy.mean.to_bits());
    assert_eq!(single.accuracy.std.to_bits(), quad.accuracy.std.to_bits());
    // Distinct seeds must actually produce distinct trajectories, or the
    // invariance above would be vacuous.
    assert!(
        single.curves.windows(2).any(|w| w[0] != w[1]),
        "all seeds produced identical curves; seed plumbing is broken"
    );
}

#[test]
fn hieradmo_beats_fedavg_in_expectation() {
    let hier = fleet_accuracy(&HierAdMo::adaptive(0.05, 0.5));
    let favg = fleet_accuracy(&FedAvg::new(0.05));
    // Mean gap must exceed the combined seed noise — a statistical win,
    // not a single-seed fluke.
    let gap = hier.mean - favg.mean;
    let noise = hier.std + favg.std;
    assert!(
        gap > 0.0,
        "HierAdMo mean {} should beat FedAvg mean {}",
        hier.mean,
        favg.mean
    );
    assert!(
        gap + noise > 0.01,
        "separation should be visible beyond noise: gap {gap}, noise {noise}"
    );
}

#[test]
fn momentum_free_three_tier_sits_between() {
    // HierFAVG (three-tier, no momentum) should land between HierAdMo and
    // FedAvg in expectation — the paper's category ordering ① > ② > ④.
    let hier = fleet_accuracy(&HierAdMo::adaptive(0.05, 0.5));
    let favg3 = fleet_accuracy(&HierFavg::new(0.05));
    let favg2 = fleet_accuracy(&FedAvg::new(0.05));
    assert!(
        hier.mean >= favg3.mean - favg3.std,
        "HierAdMo ({}) should not trail HierFAVG ({}) beyond noise",
        hier.mean,
        favg3.mean
    );
    assert!(
        favg3.mean >= favg2.mean - favg2.std,
        "HierFAVG ({}) should not trail FedAvg ({}) beyond noise",
        favg3.mean,
        favg2.mean
    );
}
