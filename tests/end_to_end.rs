//! Cross-crate integration tests: the paper's headline qualitative claims
//! on an affordable problem.
//!
//! These tests use a flat 4-class synthetic problem (fast) with harsh
//! non-i.i.d. partitioning, where the paper's orderings are expected to
//! show up: momentum > no momentum, three-tier > two-tier, adaptive ≈ best
//! fixed.

use hieradmo::core::algorithms::{FedAvg, FedNag, HierAdMo, HierFavg};
use hieradmo::core::strategy::Tier;
use hieradmo::core::{run, RunConfig, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticSpec};
use hieradmo::data::{Dataset, FeatureShape};
use hieradmo::models::{zoo, Sequential};
use hieradmo::topology::Hierarchy;

/// A moderately hard 6-class flat problem, 2-class non-iid over 4 workers.
fn problem() -> (Dataset, Dataset, Vec<Dataset>, Sequential) {
    let spec = SyntheticSpec {
        num_classes: 6,
        shape: FeatureShape::Flat(24),
        noise: 0.8,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 40, 15, 77);
    let shards = x_class_partition(&tt.train, 4, 2, 78);
    let model = zoo::logistic_regression(&tt.train, 79);
    (tt.train, tt.test, shards, model)
}

fn cfg() -> RunConfig {
    RunConfig {
        eta: 0.05,
        tau: 10,
        pi: 2,
        total_iters: 400,
        batch_size: 16,
        eval_every: 100,
        threads: Some(1),
        ..RunConfig::default()
    }
}

fn final_loss(strategy: &dyn Strategy) -> (f64, f64) {
    let (_, test, shards, model) = problem();
    let (hierarchy, cfg) = match strategy.tier() {
        Tier::Three => (Hierarchy::balanced(2, 2), cfg()),
        Tier::Two => (Hierarchy::two_tier(4), cfg().two_tier_equivalent()),
    };
    let res = run(strategy, &model, &hierarchy, &shards, &test, &cfg).expect("run");
    (
        res.curve.final_train_loss().expect("has points"),
        res.curve.final_accuracy().expect("has points"),
    )
}

#[test]
fn hieradmo_beats_momentum_free_hierarchical_fl() {
    // Table II category ① > ②.
    let (adm_loss, adm_acc) = final_loss(&HierAdMo::adaptive(0.05, 0.5));
    let (favg_loss, favg_acc) = final_loss(&HierFavg::new(0.05));
    assert!(
        adm_loss < favg_loss,
        "HierAdMo train loss {adm_loss} should beat HierFAVG {favg_loss}"
    );
    assert!(
        adm_acc >= favg_acc - 0.02,
        "HierAdMo acc {adm_acc} should not trail HierFAVG {favg_acc}"
    );
}

#[test]
fn momentum_helps_in_two_tier_as_well() {
    // Table II category ③ > ④.
    let (nag_loss, _) = final_loss(&FedNag::new(0.05, 0.5));
    let (avg_loss, _) = final_loss(&FedAvg::new(0.05));
    assert!(
        nag_loss < avg_loss * 1.05,
        "FedNAG loss {nag_loss} should beat (or match) FedAvg {avg_loss}"
    );
}

#[test]
fn three_tier_beats_two_tier_under_non_iid() {
    // Table II category ① > ③ (same momentum, extra edge aggregation).
    let (adm_loss, _) = final_loss(&HierAdMo::reduced(0.05, 0.5, 0.5));
    let (nag_loss, _) = final_loss(&FedNag::new(0.05, 0.5));
    assert!(
        adm_loss < nag_loss * 1.10,
        "HierAdMo-R loss {adm_loss} should be competitive with FedNAG {nag_loss}"
    );
}

#[test]
fn adaptive_gamma_is_near_optimal_fixed() {
    // The Fig. 2(i)–(k) claim: adaptive γℓ ≈ best fixed γℓ (within a
    // tolerance band), without the 9-run grid search.
    let (adaptive_loss, _) = final_loss(&HierAdMo::adaptive(0.05, 0.5));
    let best_fixed_loss = [0.1f32, 0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&ge| final_loss(&HierAdMo::reduced(0.05, 0.5, ge)).0)
        .fold(f64::INFINITY, f64::min);
    // Multiplicative band plus an absolute floor: on this easy problem the
    // best fixed run can drive the loss to ~0, where a pure ratio test is
    // meaningless.
    assert!(
        adaptive_loss <= best_fixed_loss * 1.30 + 0.05,
        "adaptive loss {adaptive_loss} should be near the best fixed-γℓ \
         loss {best_fixed_loss}"
    );
}

#[test]
fn all_eleven_algorithms_complete_a_run() {
    use hieradmo::core::algorithms::table2_lineup;
    let (_, test, shards, model) = problem();
    let short = RunConfig {
        total_iters: 40,
        eval_every: 40,
        ..cfg()
    };
    for algo in table2_lineup(0.05, 0.5, 0.5) {
        let (hierarchy, run_cfg) = match algo.tier() {
            Tier::Three => (Hierarchy::balanced(2, 2), short.clone()),
            Tier::Two => (Hierarchy::two_tier(4), short.two_tier_equivalent()),
        };
        let res = run(algo.as_ref(), &model, &hierarchy, &shards, &test, &run_cfg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        assert!(
            res.final_params.is_finite(),
            "{} produced non-finite parameters",
            algo.name()
        );
        assert!(
            res.curve.final_accuracy().unwrap() > 1.0 / 6.0 * 0.5,
            "{} is worse than random guessing",
            algo.name()
        );
    }
}

#[test]
fn agreement_adaptive_variant_also_learns() {
    let (loss, acc) = final_loss(&HierAdMo::adaptive_agreement(0.05, 0.5));
    assert!(
        acc > 0.5,
        "HierAdMo-AG accuracy {acc} too low (loss {loss})"
    );
}

#[test]
fn cnn_federation_end_to_end() {
    // The full image pipeline: synthetic images → non-iid shards → CNN →
    // HierAdMo, short but real.
    let tt = hieradmo::data::synthetic::SyntheticDataset::mnist_like(6, 3, 5);
    let shards = x_class_partition(&tt.train, 4, 5, 5);
    let model = zoo::cnn(&tt.train, 5);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        batch_size: 4,
        eval_every: 10,
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let res = run(
        &algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &tt.test,
        &cfg,
    )
    .unwrap();
    assert_eq!(res.curve.len(), 2);
    assert!(res.final_params.is_finite());
}

#[test]
fn run_result_timings_round_trip_through_metrics_export() {
    use hieradmo::metrics::export::{run_from_json, run_to_json, RunRecord};

    let (_train, test, shards, model) = problem();
    let cfg = RunConfig {
        total_iters: 20,
        tau: 5,
        pi: 2,
        eval_every: 10,
        ..cfg()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let res = run(
        &algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &test,
        &cfg,
    )
    .unwrap();

    let rec = RunRecord {
        algorithm: res.algorithm.clone(),
        curve: res.curve.clone(),
        timings: res.timings.into(),
    };
    assert!(rec.timings.total_ms() > 0.0, "a real run spends real time");
    let back = run_from_json(&run_to_json(&rec)).unwrap();
    assert_eq!(back, rec);
}
