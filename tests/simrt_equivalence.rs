//! Full-sync co-simulation ≡ core driver, bitwise.
//!
//! Under `SyncPolicy::FullSync` the event-driven runtime must reproduce the
//! core driver's model trajectory *exactly* — same convergence curve, same
//! final parameters, same γℓ/cos θ diagnostics — for any thread count and
//! any network seed. The network only stretches the time axis.

mod common;

use common::{assert_bitwise_equal, sim_config, sim_fixture};
use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RunConfig, Strategy};
use hieradmo::models::zoo;
use hieradmo::simrt::{simulate, SimConfig, SyncPolicy};

fn full_sync_config(net_seed: u64) -> SimConfig {
    sim_config(net_seed, SyncPolicy::FullSync)
}

fn check_equivalence<S: Strategy>(algo: &S, dropout: f64) {
    let f = sim_fixture(dropout);
    let model = zoo::logistic_regression(&f.train, 1);
    let reference =
        run(algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).expect("reference run failed");

    for threads in [1usize, 4] {
        let cfg = RunConfig {
            threads: Some(threads),
            ..f.cfg.clone()
        };
        let sim = simulate(
            algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &full_sync_config(7),
        )
        .expect("simulation failed");
        assert_bitwise_equal(
            &reference,
            &sim,
            &format!("{} threads={threads}", algo.name()),
        );
        assert!(sim.simulated_seconds > 0.0);
        assert_eq!(sim.policy, "full-sync");
    }
}

#[test]
fn full_sync_matches_driver_hieradmo() {
    check_equivalence(&HierAdMo::adaptive(0.01, 0.5), 0.0);
}

#[test]
fn full_sync_matches_driver_hieradmo_reduced() {
    check_equivalence(&HierAdMo::reduced(0.01, 0.5, 0.5), 0.0);
}

#[test]
fn full_sync_matches_driver_under_dropout() {
    check_equivalence(&HierAdMo::adaptive(0.01, 0.5), 0.3);
}

#[test]
fn network_seed_changes_time_axis_but_not_trajectory() {
    let f = sim_fixture(0.0);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let a = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &full_sync_config(1),
    )
    .expect("sim a failed");
    let b = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &full_sync_config(2),
    )
    .expect("sim b failed");
    assert_eq!(a.curve, b.curve, "trajectory must not depend on net seed");
    assert_eq!(a.final_params, b.final_params);
    assert_ne!(
        a.simulated_seconds, b.simulated_seconds,
        "different network draws should produce different timings"
    );

    // The simulated time axis is non-decreasing and strictly ordered in
    // iteration — TimedCurve::push enforces this, so reaching here with
    // points present means the engine produced a monotone schedule.
    assert_eq!(a.timed_curve.len(), a.curve.len());

    // Same seed twice: identical timings too.
    let c = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &full_sync_config(1),
    )
    .expect("sim c failed");
    assert_eq!(a.simulated_seconds, c.simulated_seconds);
    assert_eq!(a.events, c.events);
}
