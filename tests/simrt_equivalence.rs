//! Full-sync co-simulation ≡ core driver, bitwise.
//!
//! Under `SyncPolicy::FullSync` the event-driven runtime must reproduce the
//! core driver's model trajectory *exactly* — same convergence curve, same
//! final parameters, same γℓ/cos θ diagnostics — for any thread count and
//! any network seed. The network only stretches the time axis.

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RunConfig, RunResult, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::data::Dataset;
use hieradmo::models::zoo;
use hieradmo::netsim::{Architecture, NetworkEnv};
use hieradmo::simrt::{simulate, SimConfig, SimResult, SyncPolicy};
use hieradmo::topology::Hierarchy;

struct Fixture {
    hierarchy: Hierarchy,
    shards: Vec<Dataset>,
    train: Dataset,
    test: Dataset,
    cfg: RunConfig,
}

/// 2 edges × 2 workers, non-iid shards, and a schedule whose eval ticks
/// (3, 6, 9, 12, 15, 18, 20 with τ=5, π=2) cover all three evaluation
/// paths: mid-interval, edge-boundary (t=15, k=3 odd) and cloud-boundary
/// (t=20, p=2).
fn fixture(dropout: f64) -> Fixture {
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 3,
        batch_size: 8,
        seed: 42,
        dropout,
        threads: Some(1),
        ..RunConfig::default()
    };
    Fixture {
        hierarchy,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

fn sim_config(net_seed: u64) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        SyncPolicy::FullSync,
    )
}

fn assert_bitwise_equal(reference: &RunResult, sim: &SimResult, label: &str) {
    assert_eq!(reference.curve, sim.curve, "{label}: curve differs");
    assert_eq!(
        reference.final_params, sim.final_params,
        "{label}: final params differ"
    );
    assert_eq!(
        reference.gamma_trace, sim.gamma_trace,
        "{label}: gamma trace differs"
    );
    assert_eq!(
        reference.cos_trace, sim.cos_trace,
        "{label}: cos trace differs"
    );
}

fn check_equivalence<S: Strategy>(algo: &S, dropout: f64) {
    let f = fixture(dropout);
    let model = zoo::logistic_regression(&f.train, 1);
    let reference =
        run(algo, &model, &f.hierarchy, &f.shards, &f.test, &f.cfg).expect("reference run failed");

    for threads in [1usize, 4] {
        let cfg = RunConfig {
            threads: Some(threads),
            ..f.cfg.clone()
        };
        let sim = simulate(
            algo,
            &model,
            &f.hierarchy,
            &f.shards,
            &f.test,
            &cfg,
            &sim_config(7),
        )
        .expect("simulation failed");
        assert_bitwise_equal(
            &reference,
            &sim,
            &format!("{} threads={threads}", algo.name()),
        );
        assert!(sim.simulated_seconds > 0.0);
        assert_eq!(sim.policy, "full-sync");
    }
}

#[test]
fn full_sync_matches_driver_hieradmo() {
    check_equivalence(&HierAdMo::adaptive(0.01, 0.5), 0.0);
}

#[test]
fn full_sync_matches_driver_hieradmo_reduced() {
    check_equivalence(&HierAdMo::reduced(0.01, 0.5, 0.5), 0.0);
}

#[test]
fn full_sync_matches_driver_under_dropout() {
    check_equivalence(&HierAdMo::adaptive(0.01, 0.5), 0.3);
}

#[test]
fn network_seed_changes_time_axis_but_not_trajectory() {
    let f = fixture(0.0);
    let model = zoo::logistic_regression(&f.train, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let a = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &sim_config(1),
    )
    .expect("sim a failed");
    let b = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &sim_config(2),
    )
    .expect("sim b failed");
    assert_eq!(a.curve, b.curve, "trajectory must not depend on net seed");
    assert_eq!(a.final_params, b.final_params);
    assert_ne!(
        a.simulated_seconds, b.simulated_seconds,
        "different network draws should produce different timings"
    );

    // The simulated time axis is non-decreasing and strictly ordered in
    // iteration — TimedCurve::push enforces this, so reaching here with
    // points present means the engine produced a monotone schedule.
    assert_eq!(a.timed_curve.len(), a.curve.len());

    // Same seed twice: identical timings too.
    let c = simulate(
        &algo,
        &model,
        &f.hierarchy,
        &f.shards,
        &f.test,
        &f.cfg,
        &sim_config(1),
    )
    .expect("sim c failed");
    assert_eq!(a.simulated_seconds, c.simulated_seconds);
    assert_eq!(a.events, c.events);
}
