//! Shared fixtures for the top-level integration suites (`chaos`,
//! `simrt_equivalence`, `fault_injection`, `checkpoint_restore`): one
//! small non-iid federation for co-simulation equivalence checks and one
//! for dropout/convergence checks, so every suite exercises the same
//! problems and the boilerplate lives in one place.

// Each test binary compiles this module independently and uses a subset.
#![allow(dead_code)]

use hieradmo::core::population::{ClientSampling, WorkerPopulation};
use hieradmo::core::{RunConfig, RunResult};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticDataset, SyntheticSpec};
use hieradmo::data::{Dataset, FeatureShape};
use hieradmo::models::{zoo, Sequential};
use hieradmo::netsim::{
    Architecture, CrashProfile, DelaySpikes, FaultPlan, NetworkEnv, PermanentCrash,
};
use hieradmo::simrt::{SimConfig, SimResult, SyncPolicy};
use hieradmo::topology::{Hierarchy, TierSpec, TierTree};
use proptest::Strategy as GenStrategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A small 2-edge × 2-worker federation for co-simulation checks.
pub struct SimFixture {
    pub hierarchy: Hierarchy,
    pub shards: Vec<Dataset>,
    pub train: Dataset,
    pub test: Dataset,
    pub cfg: RunConfig,
}

/// 2 edges × 2 workers, non-iid shards, and a schedule whose eval ticks
/// (3, 6, 9, 12, 15, 18, 20 with τ=5, π=2) cover all three evaluation
/// paths: mid-interval, edge-boundary (t=15, k=3 odd) and cloud-boundary
/// (t=20, p=2).
pub fn sim_fixture(dropout: f64) -> SimFixture {
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 3,
        batch_size: 8,
        seed: 42,
        dropout,
        threads: Some(1),
        ..RunConfig::default()
    };
    SimFixture {
        hierarchy,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The paper-testbed network over [`sim_fixture`]'s four workers, under
/// the given policy, with no fault plan attached.
pub fn sim_config(net_seed: u64, policy: SyncPolicy) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        policy,
    )
}

/// A wider 2-edge × 4-worker federation for Byzantine-robustness checks:
/// with four workers per edge a coordinate-wise trimmed mean
/// (`trim_ratio = 0.25`) can drop exactly one corrupted upload per edge,
/// which the 2 × 2 fixture is too small to express (one Byzantine worker
/// there is already half its edge). Heterogeneity is milder than in
/// [`sim_fixture`] (5 of 10 classes per worker): with 2-class shards an
/// honest outlier is often the *only* carrier of a class's signal, so
/// order-statistic defenses trim away accuracy even with no attack — this
/// fixture isolates the Byzantine effect instead.
pub fn wide_sim_fixture() -> SimFixture {
    let tt = SyntheticDataset::mnist_like(120, 40, 11);
    let hierarchy = Hierarchy::balanced(2, 4);
    let shards = x_class_partition(&tt.train, 8, 5, 11);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 200,
        eval_every: 50,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        ..RunConfig::default()
    };
    SimFixture {
        hierarchy,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The paper-testbed network over [`wide_sim_fixture`]'s eight workers.
pub fn wide_sim_config(net_seed: u64, policy: SyncPolicy) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(8),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        policy,
    )
}

/// A tiny 4-class synthetic problem (flat 16-feature inputs, 2 classes per
/// worker) for dropout and convergence-degradation checks.
pub fn synthetic_setup() -> (Dataset, Vec<Dataset>, Sequential) {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: FeatureShape::Flat(16),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 15, 41);
    let shards = x_class_partition(&tt.train, 4, 2, 41);
    let model = zoo::logistic_regression(&tt.train, 41);
    (tt.test, shards, model)
}

/// The run configuration paired with [`synthetic_setup`]: long enough to
/// converge, with per-tick worker dropout at the given rate.
pub fn dropout_cfg(dropout: f64) -> RunConfig {
    RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters: 200,
        batch_size: 16,
        eval_every: 100,
        threads: Some(1),
        dropout,
        ..RunConfig::default()
    }
}

/// Proptest strategy over bounded, always-valid [`TierTree`]s, shared by
/// the `tier_equivalence`, `chaos` and `adversary` suites.
///
/// Every generated tree passes [`TierTree::new`]'s validator by
/// construction: depth is drawn from `depth`, each level's fanout from
/// `1..=max_fanout` and interval from `1..=max_interval`. Middle levels
/// (strictly between the root and the leaf-parent tier) become
/// pass-throughs (interval 1, identity aggregation) with probability
/// `pass_through_bias`, so collapse-equivalence properties see both
/// removable and load-bearing middles. Link classes follow the testbed
/// convention: WAN at the root boundary, LAN at the leaves, MAN between.
#[derive(Debug, Clone, Copy)]
pub struct TierTreeStrategy {
    /// Inclusive tree-depth bounds; depth 3 is the seed shape.
    pub depth: (usize, usize),
    /// Per-level fanout drawn from `1..=max_fanout`.
    pub max_fanout: usize,
    /// Per-level interval drawn from `1..=max_interval`.
    pub max_interval: usize,
    /// Probability that a middle level is a pass-through.
    pub pass_through_bias: f64,
}

/// Small trees cheap enough to train on inside a property: at most
/// 16 workers and τ·π ≤ 8.
pub fn small_tier_trees() -> TierTreeStrategy {
    TierTreeStrategy {
        depth: (3, 5),
        max_fanout: 2,
        max_interval: 2,
        pass_through_bias: 0.35,
    }
}

/// Wider structural-only trees (up to 4^4 = 256 workers): never train on
/// these, they exercise the topology arithmetic.
pub fn structural_tier_trees() -> TierTreeStrategy {
    TierTreeStrategy {
        depth: (3, 6),
        max_fanout: 4,
        max_interval: 5,
        pass_through_bias: 0.25,
    }
}

impl GenStrategy for TierTreeStrategy {
    type Value = TierTree;

    fn generate(&self, rng: &mut StdRng) -> TierTree {
        let depth = rng.gen_range(self.depth.0..=self.depth.1);
        let n_levels = depth - 1;
        let levels: Vec<TierSpec> = (0..n_levels)
            .map(|d| {
                let fanout = rng.gen_range(1..=self.max_fanout);
                let is_middle = d >= 1 && d + 1 < n_levels;
                let mut spec = if is_middle && rng.gen_bool(self.pass_through_bias) {
                    TierSpec::pass_through(fanout)
                } else {
                    TierSpec::new(fanout, rng.gen_range(1..=self.max_interval))
                };
                spec.link_class = match d {
                    0 => hieradmo::topology::LinkClass::Wan,
                    _ if d + 1 == n_levels => hieradmo::topology::LinkClass::Lan,
                    _ => hieradmo::topology::LinkClass::Man,
                };
                spec
            })
            .collect();
        TierTree::new(levels).expect("generated levels are positive")
    }
}

/// A training fixture sized to `tree`: non-iid shards over its workers
/// and a [`RunConfig`] whose `(τ, π)` match the tree, running two full
/// root rounds. Usable with `run_tiered` directly or with `simulate` via
/// [`tiered_sim_config`] and [`TierTree::edge_hierarchy`].
pub fn tiered_fixture(tree: &TierTree) -> SimFixture {
    let n = tree.num_workers();
    let tt = SyntheticDataset::mnist_like((15 * n).max(60), 30, 11);
    let shards = x_class_partition(&tt.train, n, 3, 11);
    let round = tree.tau() * tree.pi_total();
    let cfg = RunConfig {
        tau: tree.tau(),
        pi: tree.pi_total(),
        total_iters: 2 * round,
        eval_every: 3,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        ..RunConfig::default()
    };
    SimFixture {
        hierarchy: tree.edge_hierarchy(),
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The paper-testbed network over `tree`'s workers with the tree
/// attached, under the given policy (N-tier runs require
/// [`SyncPolicy::FullSync`]).
pub fn tiered_sim_config(tree: &TierTree, net_seed: u64, policy: SyncPolicy) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(tree.num_workers()),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        policy,
    )
    .with_tiers(tree.clone())
}

/// The registered trees of the depth×policy×chaos sampling matrix:
/// depths 3, 4 and 5, each with six *registered* workers per edge (the
/// sampled cohort is smaller — see [`sampled_tier_fixture`]), τ = 2 and
/// every non-leaf interval 2, so middle boundaries, root boundaries and
/// plain edge rounds all occur and differ at every depth.
pub fn sampled_matrix_trees() -> Vec<TierTree> {
    vec![
        TierTree::three_tier(2, 6, 2, 2),
        TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::new(2, 2),
            TierSpec::new(6, 2),
        ])
        .unwrap(),
        TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::new(2, 2),
            TierSpec::new(2, 2),
            TierSpec::new(6, 2),
        ])
        .unwrap(),
    ]
}

/// A sampled-run fixture sized to one of [`sampled_matrix_trees`]: the
/// registered population spanned by the tree's leaf tier over 4
/// round-robin shards of a small 4-class problem, sampling 2 of the 6
/// registered workers per edge per round, running two full root rounds.
pub struct SampledTierFixture {
    pub population: WorkerPopulation,
    pub shards: Vec<Dataset>,
    pub train: Dataset,
    pub test: Dataset,
    pub cfg: RunConfig,
}

/// See [`SampledTierFixture`]. The problem is the 16-feature synthetic of
/// [`synthetic_setup`] so matrix cells stay cheap at depth 5.
pub fn sampled_tier_fixture(tree: &TierTree) -> SampledTierFixture {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: FeatureShape::Flat(16),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 48, 16, 41);
    let shards = x_class_partition(&tt.train, 4, 2, 41);
    let population = WorkerPopulation::from_tier_tree(tree, 4).unwrap();
    let round = tree.tau() * tree.pi_total();
    let cfg = RunConfig {
        eta: 0.05,
        tau: tree.tau(),
        pi: tree.pi_total(),
        total_iters: 2 * round,
        eval_every: round,
        batch_size: 4,
        seed: 42,
        threads: Some(1),
        sampling: ClientSampling::PerEdge { count: 2 },
        ..RunConfig::default()
    };
    SampledTierFixture {
        population,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The three policies of the sampling matrix. The deadline quorum still
/// needs at least 1 of a 2-slot cohort; the async age bound is low enough
/// to engage on multi-round runs.
pub fn matrix_policies() -> [SyncPolicy; 3] {
    [
        SyncPolicy::FullSync,
        SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 150.0,
        },
        SyncPolicy::AsyncAge { max_staleness: 2 },
    ]
}

/// The fault plan of the sampling matrix's chaos cells: per-round
/// transient crashes, one permanently crashing registered worker and
/// step-delay spikes. Link faults also compose with sampled cohorts
/// (their retry protocol only stretches virtual time) but are exercised
/// by their own gate in `sampling_equivalence`, so the matrix keeps the
/// plan that perturbs the model trajectory.
pub fn sampled_fault_plan() -> FaultPlan {
    FaultPlan {
        crash: Some(CrashProfile {
            per_step: 0.25,
            min_downtime_ms: 10.0,
            max_downtime_ms: 50.0,
        }),
        permanent: vec![PermanentCrash {
            worker: 1,
            at_ms: 50.0,
        }],
        link: None,
        spikes: Some(DelaySpikes {
            prob: 0.25,
            factor: 3.0,
        }),
    }
}

/// Asserts that a co-simulation reproduced the core driver's trajectory
/// bitwise: curve, final parameters and both diagnostics traces.
pub fn assert_bitwise_equal(reference: &RunResult, sim: &SimResult, label: &str) {
    assert_eq!(reference.curve, sim.curve, "{label}: curve differs");
    assert_eq!(
        reference.final_params, sim.final_params,
        "{label}: final params differ"
    );
    assert_eq!(
        reference.gamma_trace, sim.gamma_trace,
        "{label}: gamma trace differs"
    );
    assert_eq!(
        reference.cos_trace, sim.cos_trace,
        "{label}: cos trace differs"
    );
}
