//! Shared fixtures for the top-level integration suites (`chaos`,
//! `simrt_equivalence`, `fault_injection`, `checkpoint_restore`): one
//! small non-iid federation for co-simulation equivalence checks and one
//! for dropout/convergence checks, so every suite exercises the same
//! problems and the boilerplate lives in one place.

// Each test binary compiles this module independently and uses a subset.
#![allow(dead_code)]

use hieradmo::core::{RunConfig, RunResult};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::{generate, SyntheticDataset, SyntheticSpec};
use hieradmo::data::{Dataset, FeatureShape};
use hieradmo::models::{zoo, Sequential};
use hieradmo::netsim::{Architecture, NetworkEnv};
use hieradmo::simrt::{SimConfig, SimResult, SyncPolicy};
use hieradmo::topology::Hierarchy;

/// A small 2-edge × 2-worker federation for co-simulation checks.
pub struct SimFixture {
    pub hierarchy: Hierarchy,
    pub shards: Vec<Dataset>,
    pub train: Dataset,
    pub test: Dataset,
    pub cfg: RunConfig,
}

/// 2 edges × 2 workers, non-iid shards, and a schedule whose eval ticks
/// (3, 6, 9, 12, 15, 18, 20 with τ=5, π=2) cover all three evaluation
/// paths: mid-interval, edge-boundary (t=15, k=3 odd) and cloud-boundary
/// (t=20, p=2).
pub fn sim_fixture(dropout: f64) -> SimFixture {
    let tt = SyntheticDataset::mnist_like(60, 30, 11);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 11);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 3,
        batch_size: 8,
        seed: 42,
        dropout,
        threads: Some(1),
        ..RunConfig::default()
    };
    SimFixture {
        hierarchy,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The paper-testbed network over [`sim_fixture`]'s four workers, under
/// the given policy, with no fault plan attached.
pub fn sim_config(net_seed: u64, policy: SyncPolicy) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        policy,
    )
}

/// A wider 2-edge × 4-worker federation for Byzantine-robustness checks:
/// with four workers per edge a coordinate-wise trimmed mean
/// (`trim_ratio = 0.25`) can drop exactly one corrupted upload per edge,
/// which the 2 × 2 fixture is too small to express (one Byzantine worker
/// there is already half its edge). Heterogeneity is milder than in
/// [`sim_fixture`] (5 of 10 classes per worker): with 2-class shards an
/// honest outlier is often the *only* carrier of a class's signal, so
/// order-statistic defenses trim away accuracy even with no attack — this
/// fixture isolates the Byzantine effect instead.
pub fn wide_sim_fixture() -> SimFixture {
    let tt = SyntheticDataset::mnist_like(120, 40, 11);
    let hierarchy = Hierarchy::balanced(2, 4);
    let shards = x_class_partition(&tt.train, 8, 5, 11);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 200,
        eval_every: 50,
        batch_size: 8,
        seed: 42,
        threads: Some(1),
        ..RunConfig::default()
    };
    SimFixture {
        hierarchy,
        shards,
        train: tt.train,
        test: tt.test,
        cfg,
    }
}

/// The paper-testbed network over [`wide_sim_fixture`]'s eight workers.
pub fn wide_sim_config(net_seed: u64, policy: SyncPolicy) -> SimConfig {
    SimConfig::new(
        NetworkEnv::paper_testbed(8),
        Architecture::ThreeTier,
        50_000,
        net_seed,
        policy,
    )
}

/// A tiny 4-class synthetic problem (flat 16-feature inputs, 2 classes per
/// worker) for dropout and convergence-degradation checks.
pub fn synthetic_setup() -> (Dataset, Vec<Dataset>, Sequential) {
    let spec = SyntheticSpec {
        num_classes: 4,
        shape: FeatureShape::Flat(16),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    let tt = generate(&spec, 30, 15, 41);
    let shards = x_class_partition(&tt.train, 4, 2, 41);
    let model = zoo::logistic_regression(&tt.train, 41);
    (tt.test, shards, model)
}

/// The run configuration paired with [`synthetic_setup`]: long enough to
/// converge, with per-tick worker dropout at the given rate.
pub fn dropout_cfg(dropout: f64) -> RunConfig {
    RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters: 200,
        batch_size: 16,
        eval_every: 100,
        parallel: false,
        dropout,
        ..RunConfig::default()
    }
}

/// Asserts that a co-simulation reproduced the core driver's trajectory
/// bitwise: curve, final parameters and both diagnostics traces.
pub fn assert_bitwise_equal(reference: &RunResult, sim: &SimResult, label: &str) {
    assert_eq!(reference.curve, sim.curve, "{label}: curve differs");
    assert_eq!(
        reference.final_params, sim.final_params,
        "{label}: final params differ"
    );
    assert_eq!(
        reference.gamma_trace, sim.gamma_trace,
        "{label}: gamma trace differs"
    );
    assert_eq!(
        reference.cos_trace, sim.cos_trace,
        "{label}: cos trace differs"
    );
}
