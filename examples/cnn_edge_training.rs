//! Deep-model federation: train the LeNet-style CNN (the paper's main
//! non-convex workload) with HierAdMo on image data, exercising the full
//! conv/pool/backprop substrate end to end — and estimate the theory
//! constants (β, ρ, δ) the convergence bound needs.
//!
//! ```text
//! cargo run --release --example cnn_edge_training
//! ```

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::theory::{estimate_beta, estimate_divergence, estimate_rho, BoundConstants};
use hieradmo::core::{run, RunConfig, RunError};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::{zoo, Model};
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(15, 5, 13);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 5, 13);
    let model = zoo::cnn(&tt.train, 13);
    println!("CNN parameters: {}", model.dim());

    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 100,
        eval_every: 20,
        batch_size: 8,
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let result = run(&algo, &model, &hierarchy, &shards, &tt.test, &cfg)?;
    println!("{:>6}  {:>10}  {:>8}", "iter", "test loss", "acc %");
    for p in result.curve.points() {
        println!(
            "{:>6}  {:>10.4}  {:>8.2}",
            p.iteration,
            p.test_loss,
            p.test_accuracy * 100.0
        );
    }

    // Estimate the problem constants of Assumptions 1–3 on edge 0's data
    // and evaluate the Theorem-1 bound h(τ, δℓ) for this run.
    let mut probe = model.clone();
    let edge0: Vec<_> = shards[..2].to_vec();
    let beta = estimate_beta(&mut probe, &shards[0], 3, 1);
    let rho = estimate_rho(&mut probe, &shards[0], 3, 1);
    let deltas = estimate_divergence(&mut probe, &edge0, 3, 1);
    println!("\nestimated β ≈ {beta:.3}, ρ ≈ {rho:.3}, δ_i,0 ≈ {deltas:.3?}");
    let consts = BoundConstants::new(f64::from(cfg.eta), beta.max(1e-6), f64::from(cfg.gamma));
    let delta0 = deltas.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Theorem 1 bound h(τ={}, δℓ={delta0:.3}) = {:.4}",
        cfg.tau,
        consts.h(cfg.tau, delta0)
    );
    Ok(())
}
