//! Trace-driven wall-clock estimation (the paper's Fig. 2(h)/(l) method):
//! train three-tier HierAdMo and two-tier FedNAG to the same accuracy,
//! then replay both traces against the emulated testbed (laptop + three
//! phones on WiFi, WAN to the cloud) and compare total training time.
//!
//! ```text
//! cargo run --release --example trace_driven_time
//! ```

use hieradmo::core::algorithms::{FedNag, HierAdMo};
use hieradmo::core::{run, RunConfig, RunError};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::{zoo, Model};
use hieradmo::netsim::payload::payload_bytes;
use hieradmo::netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo::topology::{Hierarchy, Schedule};

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(40, 10, 9);
    let shards = x_class_partition(&tt.train, 4, 5, 9);
    let model = zoo::logistic_regression(&tt.train, 9);
    let dim = model.dim();
    let target = 0.80;
    let total = 200;
    let env = NetworkEnv::paper_testbed(4);

    // Three-tier HierAdMo: τ = 10, π = 2.
    let cfg3 = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: total,
        eval_every: 10,
        batch_size: 16,
        ..RunConfig::default()
    };
    let h3 = Hierarchy::balanced(2, 2);
    let res3 = run(
        &HierAdMo::adaptive(cfg3.eta, cfg3.gamma),
        &model,
        &h3,
        &shards,
        &tt.test,
        &cfg3,
    )?;
    let trace3 = TraceConfig {
        schedule: Schedule::three_tier(10, 2, total).expect("valid"),
        hierarchy: h3,
        architecture: Architecture::ThreeTier,
        upload_bytes: payload_bytes(dim, 4), // y, x, Σ∇F, Σy (line 9)
        download_bytes: payload_bytes(dim, 2),
        seed: 1,
    };
    let tl3 = simulate_timeline(&env, &trace3);

    // Two-tier FedNAG: τ = 20 (the fairness rule).
    let cfg2 = cfg3.two_tier_equivalent();
    let h2 = Hierarchy::two_tier(4);
    let res2 = run(
        &FedNag::new(cfg2.eta, cfg2.gamma),
        &model,
        &h2,
        &shards,
        &tt.test,
        &cfg2,
    )?;
    let trace2 = TraceConfig {
        schedule: Schedule::two_tier(20, total).expect("valid"),
        hierarchy: h2,
        architecture: Architecture::TwoTier,
        upload_bytes: payload_bytes(dim, 2),
        download_bytes: payload_bytes(dim, 2),
        seed: 1,
    };
    let tl2 = simulate_timeline(&env, &trace2);

    println!("target accuracy: {:.0}%", target * 100.0);
    for (name, res, tl) in [
        ("HierAdMo (3-tier)", &res3, &tl3),
        ("FedNAG   (2-tier)", &res2, &tl2),
    ] {
        match tl.time_to_accuracy(&res.curve, target) {
            Some(secs) => println!(
                "{name}: reached in {:>4} iters ≈ {secs:.1}s emulated wall-clock",
                res.curve.iterations_to_accuracy(target).unwrap()
            ),
            None => println!(
                "{name}: never reached (best {:.2}%)",
                res.curve.best_accuracy().unwrap_or(0.0) * 100.0
            ),
        }
    }
    let (b3, b2) = (tl3.breakdown(), tl2.breakdown());
    println!(
        "\nfull-schedule time: 3-tier {:.1}s ({:.0}% on the WAN) vs \
         2-tier {:.1}s ({:.0}% on the WAN)",
        tl3.total_seconds(),
        b3.wan_fraction() * 100.0,
        tl2.total_seconds(),
        b2.wan_fraction() * 100.0
    );
    println!(
        "with this small logistic model, compute dominates both; the \
         architectural gap opens with model size (see the \
         `wan_dominance_grows_with_model_size` integration test)"
    );
    Ok(())
}
