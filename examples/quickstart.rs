//! Quickstart: train HierAdMo on a non-i.i.d. MNIST-like federation and
//! print its convergence curve next to plain hierarchical FedAvg.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hieradmo::core::algorithms::{HierAdMo, HierFavg};
use hieradmo::core::{run, RunConfig, RunError, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    // A 2-edge × 2-worker federation (the paper's Table II topology) over
    // MNIST-like data where every worker sees only 5 of the 10 classes.
    let tt = SyntheticDataset::mnist_like(40, 10, 7);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 5, 7);
    let model = zoo::logistic_regression(&tt.train, 7);

    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 200,
        eval_every: 20,
        batch_size: 16,
        ..RunConfig::default()
    };

    for algo in [
        &HierAdMo::adaptive(cfg.eta, cfg.gamma) as &dyn Strategy,
        &HierFavg::new(cfg.eta),
    ] {
        let result = run(algo, &model, &hierarchy, &shards, &tt.test, &cfg)?;
        println!("=== {} ===", result.algorithm);
        println!("{:>6}  {:>10}  {:>8}", "iter", "test loss", "acc %");
        for p in result.curve.points() {
            println!(
                "{:>6}  {:>10.4}  {:>8.2}",
                p.iteration,
                p.test_loss,
                p.test_accuracy * 100.0
            );
        }
        println!();
    }
    Ok(())
}
