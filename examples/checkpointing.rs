//! Checkpointing: persist a finished run to JSON, reload it, and resume
//! training from the saved global model — long experiments survive
//! restarts and recorded numbers stay regenerable.
//!
//! ```text
//! cargo run --release --example checkpointing
//! ```

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::checkpoint::Checkpoint;
use hieradmo::core::{run, RunConfig, RunError};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::{zoo, Model};
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(30, 10, 21);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 5, 21);
    let model = zoo::logistic_regression(&tt.train, 21);
    let algo = HierAdMo::adaptive(0.01, 0.5);

    // Phase 1: train half the budget and checkpoint.
    let cfg1 = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 100,
        eval_every: 50,
        batch_size: 16,
        ..RunConfig::default()
    };
    let phase1 = run(&algo, &model, &hierarchy, &shards, &tt.test, &cfg1)?;
    let cp = Checkpoint::capture(&phase1, &cfg1);
    let path = std::env::temp_dir().join("hieradmo-demo-checkpoint.json");
    cp.save(&path).expect("checkpoint write");
    println!(
        "phase 1: accuracy {:.2}% after {} iters — checkpoint saved to {}",
        phase1.curve.final_accuracy().unwrap() * 100.0,
        cfg1.total_iters,
        path.display()
    );

    // Phase 2 (possibly a new process): reload and continue training from
    // the saved parameters.
    let restored = Checkpoint::load(&path).expect("checkpoint read");
    assert_eq!(restored.algorithm, "HierAdMo");
    let mut resumed_model = model.clone();
    resumed_model.set_params(&restored.final_params);

    let cfg2 = RunConfig {
        seed: 1, // fresh data order for the second phase
        ..restored.config.clone()
    };
    let phase2 = run(&algo, &resumed_model, &hierarchy, &shards, &tt.test, &cfg2)?;
    println!(
        "phase 2: accuracy {:.2}% after {} more iters (resumed from checkpoint)",
        phase2.curve.final_accuracy().unwrap() * 100.0,
        cfg2.total_iters
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
