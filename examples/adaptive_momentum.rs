//! Watch the adaptive edge momentum factor work (the paper's core idea):
//! run HierAdMo and print the measured worker/edge momentum agreement
//! (cos θ, Eq. 6) and the adapted γℓ at every edge aggregation, next to
//! HierAdMo-R runs with fixed γℓ values.
//!
//! ```text
//! cargo run --release --example adaptive_momentum
//! ```

use hieradmo::core::algorithms::HierAdMo;
use hieradmo::core::{run, RunConfig, RunError};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(40, 10, 5);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 3, 5); // harsh non-iid
    let model = zoo::logistic_regression(&tt.train, 5);
    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 200,
        eval_every: 200,
        batch_size: 16,
        ..RunConfig::default()
    };

    // Adaptive run: print the γℓ trace.
    let adaptive = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let result = run(&adaptive, &model, &hierarchy, &shards, &tt.test, &cfg)?;
    println!("adaptive γℓ per edge aggregation (mean over edges):");
    for ((k, gamma), (_, cos)) in result.gamma_trace.iter().zip(&result.cos_trace) {
        let bar = "#".repeat((gamma * 40.0) as usize);
        println!("  k={k:>3}  cosθ={cos:>6.3}  γℓ={gamma:>5.3}  {bar}");
    }
    let adaptive_acc = result.curve.final_accuracy().unwrap_or(0.0);
    println!("adaptive final accuracy: {:.2}%\n", adaptive_acc * 100.0);

    // Exhaustive fixed γℓ (the Fig. 2(i)–(k) comparison).
    println!("{:<12} {:>10}", "fixed γℓ", "acc %");
    let mut best = (0.0f32, 0.0f64);
    for ge in [0.1f32, 0.3, 0.5, 0.7, 0.9] {
        let reduced = HierAdMo::reduced(cfg.eta, cfg.gamma, ge);
        let r = run(&reduced, &model, &hierarchy, &shards, &tt.test, &cfg)?;
        let acc = r.curve.final_accuracy().unwrap_or(0.0);
        if acc > best.1 {
            best = (ge, acc);
        }
        println!("{ge:<12} {:>10.2}", acc * 100.0);
    }
    println!(
        "\nbest fixed γℓ = {} ({:.2}%); adaptive reached {:.2}% without tuning.",
        best.0,
        best.1 * 100.0,
        adaptive_acc * 100.0
    );
    Ok(())
}
