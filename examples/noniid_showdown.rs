//! Non-i.i.d. showdown (the paper's Fig. 2(e)–(g) scenario in miniature):
//! sweep the heterogeneity level x ∈ {3, 6, 9} classes-per-worker and
//! watch how each algorithm family copes.
//!
//! ```text
//! cargo run --release --example noniid_showdown
//! ```

use hieradmo::core::algorithms::{FedAvg, FedNag, HierAdMo, HierFavg};
use hieradmo::core::strategy::Tier;
use hieradmo::core::{run, RunConfig, RunError, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(40, 10, 3);
    let model = zoo::logistic_regression(&tt.train, 3);
    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 200,
        eval_every: 200,
        batch_size: 16,
        ..RunConfig::default()
    };

    let algorithms: Vec<Box<dyn Strategy>> = vec![
        Box::new(HierAdMo::adaptive(cfg.eta, cfg.gamma)),
        Box::new(HierAdMo::reduced(cfg.eta, cfg.gamma, cfg.gamma_edge)),
        Box::new(HierFavg::new(cfg.eta)),
        Box::new(FedNag::new(cfg.eta, cfg.gamma)),
        Box::new(FedAvg::new(cfg.eta)),
    ];

    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "algorithm", "3-class %", "6-class %", "9-class %"
    );
    for algo in &algorithms {
        print!("{:<12}", algo.name());
        for x in [3usize, 6, 9] {
            let shards = x_class_partition(&tt.train, 4, x, 11);
            let (hierarchy, cfg) = match algo.tier() {
                Tier::Three => (Hierarchy::balanced(2, 2), cfg.clone()),
                Tier::Two => (Hierarchy::two_tier(4), cfg.two_tier_equivalent()),
            };
            let result = run(algo.as_ref(), &model, &hierarchy, &shards, &tt.test, &cfg)?;
            print!(
                " {:>12.2}",
                result.curve.final_accuracy().unwrap_or(0.0) * 100.0
            );
        }
        println!();
    }
    println!("\nExpected shape: accuracy drops as x shrinks (harsher non-iid),");
    println!("three-tier momentum methods stay on top throughout.");
    Ok(())
}
