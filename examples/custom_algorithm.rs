//! Extending the library: implement a brand-new federated algorithm
//! against the [`Strategy`] trait and run it on the existing engine, data
//! and baselines — nothing else to touch.
//!
//! The demo algorithm is *HierProx*: hierarchical FedAvg with a FedProx-
//! style proximal pull toward the last edge model, a common heterogeneity
//! regularizer that the paper does not evaluate.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use hieradmo::core::algorithms::HierFavg;
use hieradmo::core::state::{EdgeView, FlState, WorkerState};
use hieradmo::core::strategy::{Strategy, Tier};
use hieradmo::core::{run, RunConfig, RunError};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::tensor::Vector;
use hieradmo::topology::Hierarchy;

/// Hierarchical FedAvg + proximal term: each local step follows
/// `x ← x − η(∇F(x) + μ·(x − x_anchor))`, anchoring workers to the last
/// edge model to curb client drift under non-i.i.d. data.
#[derive(Debug, Clone)]
struct HierProx {
    eta: f32,
    mu: f32,
}

impl Strategy for HierProx {
    fn name(&self) -> &'static str {
        "HierProx"
    }

    fn tier(&self) -> Tier {
        Tier::Three
    }

    fn local_step(
        &self,
        _t: usize,
        worker: &mut WorkerState,
        grad: &mut dyn FnMut(&Vector, &mut Vector),
    ) {
        // The gradient lands in the worker's scratch buffer, so the step
        // stays allocation-free apart from the proximal drift term.
        let mut g = std::mem::take(&mut worker.scratch);
        grad(&worker.x, &mut g);
        // The anchor (last distributed edge model) lives in `y`, which
        // this algorithm repurposes since it runs no worker momentum.
        let mut drift = worker.x.clone();
        drift -= &worker.y;
        g.axpy(self.mu, &drift);
        worker.x.axpy(-self.eta, &g);
        worker.scratch = g;
    }

    fn edge_aggregate(&self, _k: usize, view: &mut EdgeView<'_>) {
        let avg = view.average(|w| &w.x);
        view.state.x_plus = avg.clone();
        view.for_workers(|w| {
            w.x = avg.clone();
            w.y = avg.clone(); // refresh the proximal anchor
        });
    }

    fn cloud_aggregate(&self, _p: usize, state: &mut FlState) {
        let avg = state.cloud_average(|e| &e.x_plus);
        state.cloud.x_plus = avg.clone();
        for e in &mut state.edges {
            e.x_plus = avg.clone();
        }
        state.for_all_workers(|w| {
            w.x = avg.clone();
            w.y = avg.clone();
        });
    }
}

fn main() -> Result<(), RunError> {
    let tt = SyntheticDataset::mnist_like(40, 10, 23);
    let hierarchy = Hierarchy::balanced(2, 2);
    // Harsh 2-class non-iid: exactly the regime proximal terms target.
    let shards = x_class_partition(&tt.train, 4, 2, 23);
    let model = zoo::logistic_regression(&tt.train, 23);
    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 200,
        eval_every: 200,
        batch_size: 16,
        ..RunConfig::default()
    };

    println!("{:<12} {:>8} {:>12}", "algorithm", "acc %", "train loss");
    for (name, strategy) in [
        ("HierFAVG", &HierFavg::new(cfg.eta) as &dyn Strategy),
        (
            "HierProx",
            &HierProx {
                eta: cfg.eta,
                mu: 0.1,
            },
        ),
    ] {
        let res = run(strategy, &model, &hierarchy, &shards, &tt.test, &cfg)?;
        println!(
            "{:<12} {:>8.2} {:>12.4}",
            name,
            res.curve.final_accuracy().unwrap_or(0.0) * 100.0,
            res.curve.final_train_loss().unwrap_or(f64::NAN),
        );
    }
    println!("\nA new algorithm is ~60 lines: implement Strategy's three hooks and\nevery dataset, model, topology and experiment harness works with it.");
    Ok(())
}
