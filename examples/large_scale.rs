//! Cross-silo scale (the paper's Fig. 2(d) scenario): 100 workers under
//! 10 edge nodes, with parallel worker execution in the driver.
//!
//! ```text
//! cargo run --release --example large_scale
//! ```

use std::time::Instant;

use hieradmo::core::algorithms::{FedAvg, HierAdMo};
use hieradmo::core::strategy::Tier;
use hieradmo::core::{run, RunConfig, RunError, Strategy};
use hieradmo::data::partition::x_class_partition;
use hieradmo::data::synthetic::SyntheticDataset;
use hieradmo::models::zoo;
use hieradmo::topology::Hierarchy;

fn main() -> Result<(), RunError> {
    const WORKERS: usize = 100;
    const EDGES: usize = 10;

    let tt = SyntheticDataset::mnist_like(60, 20, 17);
    let shards = x_class_partition(&tt.train, WORKERS, 3, 17);
    let model = zoo::logistic_regression(&tt.train, 17);
    println!(
        "federation: {WORKERS} workers on {EDGES} edges, {} training samples, \
         3-class non-iid",
        tt.train.len()
    );

    let cfg = RunConfig {
        tau: 10,
        pi: 2,
        total_iters: 200,
        eval_every: 40,
        batch_size: 16,
        ..RunConfig::default()
    };

    for algo in [
        &HierAdMo::adaptive(cfg.eta, cfg.gamma) as &dyn Strategy,
        &FedAvg::new(cfg.eta),
    ] {
        let (hierarchy, run_cfg) = match algo.tier() {
            Tier::Three => (Hierarchy::balanced(EDGES, WORKERS / EDGES), cfg.clone()),
            Tier::Two => (Hierarchy::two_tier(WORKERS), cfg.two_tier_equivalent()),
        };
        let started = Instant::now();
        let result = run(algo, &model, &hierarchy, &shards, &tt.test, &run_cfg)?;
        println!(
            "{:<10} final accuracy {:>6.2}%  ({} eval points, {:.1}s simulation)",
            result.algorithm,
            result.curve.final_accuracy().unwrap_or(0.0) * 100.0,
            result.curve.len(),
            started.elapsed().as_secs_f64(),
        );
    }
    println!("\nThe Table II ranking persists at N = 100 (paper Fig. 2(d)).");
    Ok(())
}
