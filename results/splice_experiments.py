#!/usr/bin/env python3
"""Splice results/*.txt into the EXPERIMENTS.md placeholders."""
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXP = ROOT / "EXPERIMENTS.md"

MAPPING = {
    "TABLE2_RESULTS_PLACEHOLDER": "table2.txt",
    "FIG2ABC_RESULTS_PLACEHOLDER": "fig2abc_tau_pi.txt",
    "FIG2D_RESULTS_PLACEHOLDER": "fig2d_large_n.txt",
    "FIG2EFG_RESULTS_PLACEHOLDER": "fig2efg_noniid.txt",
    "FIG2HL_RESULTS_PLACEHOLDER": "fig2hl_time.txt",
    "FIG2IJK_RESULTS_PLACEHOLDER": "fig2ijk_adaptive.txt",
    "ABLATION_RESULTS_PLACEHOLDER": "ablation.txt",
    "COMPRESSION_RESULTS_PLACEHOLDER": "compression.txt",
}


def table_part(text: str) -> str:
    """Keep the human-readable tables, drop the JSON archive section."""
    blocks = []
    for chunk in text.split("== "):
        if not chunk.strip():
            continue
        body = chunk.split("--- json ---")[0].rstrip()
        blocks.append("== " + body)
    return "\n\n".join(blocks)


def main() -> None:
    doc = EXP.read_text()
    for placeholder, fname in MAPPING.items():
        path = ROOT / "results" / fname
        if placeholder not in doc:
            continue
        if path.exists() and path.stat().st_size > 0:
            doc = doc.replace(placeholder, table_part(path.read_text()))
            print(f"spliced {fname}")
        else:
            doc = doc.replace(
                placeholder,
                f"(run `{fname.replace('.txt','')}` to regenerate; "
                "result not captured in this session)",
            )
            print(f"missing {fname}")
    EXP.write_text(doc)


if __name__ == "__main__":
    main()
