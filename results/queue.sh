#!/bin/bash
cd /root/repo
while pgrep -x table2 >/dev/null; do sleep 10; done
B=target/release
$B/fig2ijk_adaptive          > results/fig2ijk_adaptive.txt 2> results/fig2ijk.log
$B/fig2hl_time both          > results/fig2hl_time.txt      2> results/fig2hl.log
$B/fig2efg_noniid            > results/fig2efg_noniid.txt   2> results/fig2efg.log
$B/fig2_tau_pi all           > results/fig2abc_tau_pi.txt   2> results/fig2abc.log
$B/fig2d_large_n             > results/fig2d_large_n.txt    2> results/fig2d.log
$B/ablation_adaptive         > results/ablation.txt         2> results/ablation.log
$B/compression_tradeoff      > results/compression.txt      2> results/compression.log
echo ALL_DONE > results/queue_done.marker
