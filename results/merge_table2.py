#!/usr/bin/env python3
"""Merge the Table II pieces into one final table.

Sources:
- table2.txt               : full 11×7 run (HierAdMo row used the verbatim-Σy
                             adaptation; convex columns used T=200; the
                             ResNet column predates the 3× schedule)
- table2_hieradmo_fixed.txt: HierAdMo row, corrected adaptation, all columns
- table2_linear.txt        : Linear column, T=400, all algorithms
- table2_logistic.txt      : Logistic column, T=400, all algorithms
- table2_resnet.txt        : ResNet column, 3× schedule + tuned dataset

Output: merged rows printed as a text table to stdout.
"""
import json
import pathlib

HERE = pathlib.Path(__file__).resolve().parent

COLUMNS = [
    "Linear on MNIST",
    "Logistic on MNIST",
    "CNN on MNIST",
    "CNN on CIFAR10",
    "VGG16 on CIFAR10",
    "ResNet18 on ImageNet",
    "CNN on UCI-HAR",
]
ALGOS = [
    "HierAdMo", "HierAdMo (GA)", "HierAdMo-R", "HierFAVG", "CFL",
    "FastSlowMo", "FedADC", "FedMom", "SlowMo", "FedNAG", "Mime", "FedAvg",
]


def load_json_rows(fname):
    rows = {}
    path = HERE / fname
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        if not line.startswith("{"):
            continue
        rec = json.loads(line)
        if "algorithm" in rec:
            rows[rec["algorithm"]] = rec
    return rows


def main():
    base = load_json_rows("table2.txt")
    final = load_json_rows("table2_hieradmo_final.txt")
    agreementish = load_json_rows("table2_hieradmo_fixed.txt")
    linear = load_json_rows("table2_linear.txt")
    logistic = load_json_rows("table2_logistic.txt")
    resnet = load_json_rows("table2_resnet.txt")

    def cell(algo, col):
        # "HierAdMo" = the final verbatim-Σy default (fresh row);
        # "HierAdMo (GA)" = the direction-based variant row, from the
        # interim rerun (gradient-alignment basis; diverges on convex).
        if algo == "HierAdMo (GA)":
            rec = agreementish.get("HierAdMo")
            return rec.get(col) if rec else None
        for src in (
            final if algo == "HierAdMo" else {},
            linear if col == "Linear on MNIST" else {},
            logistic if col == "Logistic on MNIST" else {},
            resnet if col == "ResNet18 on ImageNet" else {},
            base,
        ):
            rec = src.get(algo)
            if rec and col in rec:
                return rec[col]
        return None

    widths = [max(len(c), 12) for c in COLUMNS]
    header = "Algorithm        " + "  ".join(c.ljust(w) for c, w in zip(COLUMNS, widths))
    print(header)
    print("-" * len(header))
    for algo in ALGOS:
        cells = []
        for col, w in zip(COLUMNS, widths):
            v = cell(algo, col)
            cells.append(("-" if v is None else f"{v * 100:.2f}").ljust(w))
        print(f"{algo:<17}" + "  ".join(cells))


if __name__ == "__main__":
    main()
