#!/bin/bash
# Final-default (verbatim-Σy) reruns of the HierAdMo-dependent outputs.
cd /root/repo
while [ ! -f results/queue2_done.marker ]; do sleep 15; done
B=target/release
$B/table2 --algorithm HierAdMo    > results/table2_hieradmo_final.txt 2> results/t2final.log
$B/fig2hl_time both               > results/fig2hl_time.txt           2> results/fig2hl.log
$B/fig2efg_noniid                 > results/fig2efg_noniid.txt        2> results/fig2efg.log
echo ALL_DONE > results/queue3_done.marker
