#!/usr/bin/env python3
"""Final EXPERIMENTS.md assembly: splice result tables into placeholders
and append the per-experiment analysis notes."""
import pathlib
import subprocess

ROOT = pathlib.Path(__file__).resolve().parent.parent
RES = ROOT / "results"
EXP = ROOT / "EXPERIMENTS.md"


def table_part(text: str) -> str:
    blocks = []
    for chunk in text.split("== "):
        if not chunk.strip():
            continue
        body = chunk.split("--- json ---")[0].rstrip()
        blocks.append("== " + body)
    return "\n\n".join(blocks)


def read(fname: str) -> str:
    p = RES / fname
    if p.exists() and p.stat().st_size > 0:
        return table_part(p.read_text())
    return f"(missing: regenerate with the command above — {fname} not captured)"


def read_md(fname: str) -> str:
    p = RES / fname
    return p.read_text().strip() if p.exists() else ""


def main() -> None:
    doc = EXP.read_text()

    merged = subprocess.run(
        ["python3", str(RES / "merge_table2.py")],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.rstrip()
    table2_block = merged + "\n\n" + read_md("table2_analysis.md")
    doc = doc.replace("TABLE2_RESULTS_PLACEHOLDER", table2_block)

    other = read_md("other_analysis.md")
    sections = {}
    key = None
    for line in other.splitlines():
        if line.endswith("_ANALYSIS:"):
            key = line[: -len("_ANALYSIS:")]
            sections[key] = []
        elif key:
            sections[key].append(line)
    def analysis(k):
        return "\n".join(sections.get(k, [])).strip()

    doc = doc.replace(
        "FIG2ABC_RESULTS_PLACEHOLDER",
        read("fig2abc_tau_pi.txt") + "\n\n" + analysis("FIG2ABC"),
    )
    doc = doc.replace("FIG2D_RESULTS_PLACEHOLDER", read("fig2d_large_n.txt"))
    doc = doc.replace(
        "FIG2EFG_RESULTS_PLACEHOLDER",
        read("fig2efg_noniid.txt") + "\n\n" + analysis("FIG2EFG"),
    )
    doc = doc.replace(
        "FIG2HL_RESULTS_PLACEHOLDER",
        read("fig2hl_time.txt") + "\n\n" + analysis("FIG2HL"),
    )
    doc = doc.replace(
        "FIG2IJK_RESULTS_PLACEHOLDER",
        read("fig2ijk_adaptive.txt") + "\n\n" + read_md("fig2ijk_analysis.md"),
    )
    doc = doc.replace("ABLATION_RESULTS_PLACEHOLDER", read("ablation.txt"))
    doc = doc.replace("COMPRESSION_RESULTS_PLACEHOLDER", read("compression.txt"))
    summary = read_md("summary_section.md")
    if summary and "Reproduction summary" not in doc:
        doc = doc.rstrip() + "\n" + summary + "\n"
    EXP.write_text(doc)
    print("EXPERIMENTS.md assembled")


if __name__ == "__main__":
    main()
