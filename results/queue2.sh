#!/bin/bash
# Second experiment queue: reruns with the corrected adaptive default,
# priority-ordered for the time budget.
cd /root/repo
B=target/release
$B/fig2hl_time both                        > results/fig2hl_time.txt      2> results/fig2hl.log
$B/fig2efg_noniid                          > results/fig2efg_noniid.txt   2> results/fig2efg.log
$B/table2 --algorithm HierAdMo             > results/table2_hieradmo_fixed.txt 2> results/table2_fix.log
$B/table2 --workload linear-mnist          > results/table2_linear.txt    2>> results/table2_fix.log
$B/table2 --workload logistic-mnist        > results/table2_logistic.txt  2>> results/table2_fix.log
$B/table2 --workload resnet-imagenet       > results/table2_resnet.txt    2>> results/table2_fix.log
$B/ablation_adaptive                       > results/ablation.txt         2> results/ablation.log
$B/compression_tradeoff                    > results/compression.txt      2> results/compression.log
$B/fig2d_large_n                           > results/fig2d_large_n.txt    2> results/fig2d.log
$B/theory_bounds                           > results/theory_bounds.txt    2> results/theory.log
$B/fig2_tau_pi all                         > results/fig2abc_tau_pi.txt   2> results/fig2abc.log
echo ALL_DONE > results/queue2_done.marker
