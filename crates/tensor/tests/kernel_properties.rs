//! Property-based contracts of the multi-lane kernel layer.
//!
//! Two invariants per kernel, on arbitrary lengths (deliberately spanning
//! the `chunks_exact(LANES)` boundary so remainder-lane handling is
//! exercised):
//!
//! 1. **Accuracy** — the lane-split summation agrees with a naive
//!    single-accumulator reference within `1e-4` relative tolerance.
//! 2. **Determinism** — calling the kernel twice on the same input yields
//!    bitwise-identical results. The lane order is fixed, so this holds
//!    by construction; the proptest guards against accidental
//!    order-dependent rewrites.

use proptest::prelude::*;

use hieradmo_tensor::kernels;

/// Backing-store length; tests slice `[..len]` out of it so every
/// remainder residue mod `LANES` is exercised.
const MAX_LEN: usize = 40;

fn vec_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, MAX_LEN)
}

fn close(got: f32, want: f32) -> bool {
    (got - want).abs() <= 1e-4 * (1.0 + want.abs())
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `dot` matches a serial left-to-right accumulation and is
    /// bitwise reproducible.
    #[test]
    fn dot_matches_naive_and_is_deterministic(
        a in vec_strategy(),
        b in vec_strategy(),
        len in 0usize..MAX_LEN,
    ) {
        let (a, b) = (&a[..len], &b[..len]);
        let naive: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let fast = kernels::dot(a, b);
        prop_assert!(close(fast, naive), "dot: {fast} vs naive {naive}");
        prop_assert_eq!(fast.to_bits(), kernels::dot(a, b).to_bits());
    }

    /// `norm_sq` is `dot(v, v)`, bit for bit, and close to the naive sum.
    #[test]
    fn norm_sq_matches_naive_and_is_deterministic(
        v in vec_strategy(),
        len in 0usize..MAX_LEN,
    ) {
        let v = &v[..len];
        let naive: f32 = v.iter().map(|x| x * x).sum();
        let fast = kernels::norm_sq(v);
        prop_assert!(close(fast, naive), "norm_sq: {fast} vs naive {naive}");
        prop_assert_eq!(fast.to_bits(), kernels::norm_sq(v).to_bits());
        prop_assert_eq!(fast.to_bits(), kernels::dot(v, v).to_bits());
    }

    /// `axpy` matches the scalar update elementwise and is bitwise
    /// reproducible from the same starting buffer.
    #[test]
    fn axpy_matches_naive_and_is_deterministic(
        x in vec_strategy(),
        y0 in vec_strategy(),
        len in 0usize..MAX_LEN,
        alpha in -4.0f32..4.0,
    ) {
        let (x, y0) = (&x[..len], &y0[..len]);
        let mut naive = y0.to_vec();
        for (a, &b) in naive.iter_mut().zip(x) {
            *a += alpha * b;
        }
        let mut fast = y0.to_vec();
        kernels::axpy(&mut fast, alpha, x);
        for i in 0..len {
            prop_assert!(close(fast[i], naive[i]), "axpy[{i}]: {} vs {}", fast[i], naive[i]);
        }
        let mut again = y0.to_vec();
        kernels::axpy(&mut again, alpha, x);
        prop_assert_eq!(bits(&fast), bits(&again));
    }

    /// `scal` matches the scalar scale elementwise and is bitwise
    /// reproducible.
    #[test]
    fn scal_matches_naive_and_is_deterministic(
        v0 in vec_strategy(),
        len in 0usize..MAX_LEN,
        alpha in -4.0f32..4.0,
    ) {
        let v0 = &v0[..len];
        let naive: Vec<f32> = v0.iter().map(|x| alpha * x).collect();
        let mut fast = v0.to_vec();
        kernels::scal(&mut fast, alpha);
        for i in 0..len {
            prop_assert!(close(fast[i], naive[i]), "scal[{i}]: {} vs {}", fast[i], naive[i]);
        }
        let mut again = v0.to_vec();
        kernels::scal(&mut again, alpha);
        prop_assert_eq!(bits(&fast), bits(&again));
    }

    /// `fused_scale_add` matches `alpha·a + beta·b` elementwise and is
    /// bitwise reproducible.
    #[test]
    fn fused_scale_add_matches_naive_and_is_deterministic(
        a in vec_strategy(),
        b in vec_strategy(),
        len in 0usize..MAX_LEN,
        alpha in -4.0f32..4.0,
        beta in -4.0f32..4.0,
    ) {
        let (a, b) = (&a[..len], &b[..len]);
        let naive: Vec<f32> = a
            .iter()
            .zip(b)
            .map(|(x, y)| alpha * x + beta * y)
            .collect();
        let mut fast = vec![0.0f32; len];
        kernels::fused_scale_add(&mut fast, alpha, a, beta, b);
        for i in 0..len {
            prop_assert!(close(fast[i], naive[i]), "fsa[{i}]: {} vs {}", fast[i], naive[i]);
        }
        let mut again = vec![0.0f32; len];
        kernels::fused_scale_add(&mut again, alpha, a, beta, b);
        prop_assert_eq!(bits(&fast), bits(&again));
    }

    /// `weighted_accumulate` matches the scalar f64 update elementwise
    /// (it is purely elementwise, so agreement is to f64 precision) and
    /// is bitwise reproducible.
    #[test]
    fn weighted_accumulate_matches_naive_and_is_deterministic(
        v in vec_strategy(),
        len in 0usize..MAX_LEN,
        w in -4.0f64..4.0,
    ) {
        let v = &v[..len];
        let mut naive = vec![0.5f64; len];
        for (a, &x) in naive.iter_mut().zip(v) {
            *a += w * f64::from(x);
        }
        let mut fast = vec![0.5f64; len];
        kernels::weighted_accumulate(&mut fast, w, v);
        for i in 0..len {
            prop_assert!(
                (fast[i] - naive[i]).abs() <= 1e-12 * (1.0 + naive[i].abs()),
                "wacc[{i}]: {} vs {}", fast[i], naive[i]
            );
        }
        let mut again = vec![0.5f64; len];
        kernels::weighted_accumulate(&mut again, w, v);
        let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
        let again_bits: Vec<u64> = again.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(fast_bits, again_bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `matmul_bt` matches the naive triple loop within tolerance, every
    /// element is bitwise the `dot` of its row pair (tiling never changes
    /// values), and repeat calls reproduce identical bits.
    #[test]
    fn matmul_bt_matches_naive_and_is_deterministic(
        n in 1usize..20,
        m in 1usize..20,
        k in 0usize..40,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let bt: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

        let mut fast = vec![0.0f32; n * m];
        kernels::matmul_bt(&a, &bt, &mut fast, n, m, k);

        for r in 0..n {
            for c in 0..m {
                let mut naive = 0.0f32;
                for i in 0..k {
                    naive += a[r * k + i] * bt[c * k + i];
                }
                let got = fast[r * m + c];
                prop_assert!(close(got, naive), "matmul[{r},{c}]: {got} vs {naive}");
                // Tiling invariant: identical bits to the dot kernel.
                let row_dot = kernels::dot(&a[r * k..(r + 1) * k], &bt[c * k..(c + 1) * k]);
                prop_assert_eq!(got.to_bits(), row_dot.to_bits());
            }
        }

        let mut again = vec![0.0f32; n * m];
        kernels::matmul_bt(&a, &bt, &mut again, n, m, k);
        prop_assert_eq!(bits(&fast), bits(&again));
    }
}

fn bits64(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `weighted_sum_batch` over `K` workers is (a) close to a naive
    /// per-coordinate `f64` sum, (b) **bitwise** identical to `K`
    /// sequential [`kernels::weighted_accumulate`] calls in worker order,
    /// to the scalar oracle, and to any prefix/suffix split of the batch,
    /// and (c) bitwise reproducible run to run. `K` ranges past the
    /// AVX2 worker-block boundary so both the single-block small-fan-in
    /// path and the multi-block path are exercised.
    #[test]
    fn weighted_sum_batch_matches_sequential_bitwise(
        len in 0usize..MAX_LEN,
        k in 1usize..=20,
        split in 0usize..=20,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inputs_store: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..len).map(|_| rng.gen_range(-8.0f32..8.0)).collect())
            .collect();
        let inputs: Vec<&[f32]> = inputs_store.iter().map(Vec::as_slice).collect();
        let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(-4.0f64..4.0)).collect();

        let mut naive = vec![0.25f64; len];
        for (&w, v) in weights.iter().zip(&inputs) {
            for (a, &x) in naive.iter_mut().zip(*v) {
                *a += w * f64::from(x);
            }
        }

        let mut batch = vec![0.25f64; len];
        kernels::weighted_sum_batch(&mut batch, &weights, &inputs);
        for i in 0..len {
            prop_assert!(
                (batch[i] - naive[i]).abs() <= 1e-4 * (1.0 + naive[i].abs()),
                "batch[{i}]: {} vs naive {}", batch[i], naive[i]
            );
        }

        // Bitwise vs the sequential per-worker path it replaces.
        let mut seq = vec![0.25f64; len];
        for (&w, v) in weights.iter().zip(&inputs) {
            kernels::weighted_accumulate(&mut seq, w, v);
        }
        prop_assert_eq!(bits64(&batch), bits64(&seq));

        // Bitwise vs the portable oracle (pins the dispatched path).
        let mut oracle = vec![0.25f64; len];
        kernels::weighted_sum_batch_scalar(&mut oracle, &weights, &inputs);
        prop_assert_eq!(bits64(&batch), bits64(&oracle));

        // Splitting the batch into consecutive sub-batches is neutral.
        let cut = split.min(k);
        let mut halves = vec![0.25f64; len];
        kernels::weighted_sum_batch(&mut halves, &weights[..cut], &inputs[..cut]);
        kernels::weighted_sum_batch(&mut halves, &weights[cut..], &inputs[cut..]);
        prop_assert_eq!(bits64(&batch), bits64(&halves));

        // Run-to-run determinism.
        let mut again = vec![0.25f64; len];
        kernels::weighted_sum_batch(&mut again, &weights, &inputs);
        prop_assert_eq!(bits64(&batch), bits64(&again));
    }

    /// `fused_aggregate_momentum` is (a) close to the `f64` reference
    /// `m = acc/total`, `looked = m + γ·(m − y_old)`, (b) **bitwise**
    /// identical to the unfused composition it replaces (per-element
    /// finalize, clone, subtract, [`kernels::axpy`]) and to the scalar
    /// oracle, and (c) bitwise reproducible run to run.
    #[test]
    fn fused_aggregate_momentum_matches_unfused_bitwise(
        acc_src in proptest::collection::vec(-8.0f64..8.0, MAX_LEN),
        y_old in vec_strategy(),
        len in 0usize..MAX_LEN,
        total in 0.5f64..8.0,
        gamma in 0.0f32..1.0,
    ) {
        let (acc, y_old) = (&acc_src[..len], &y_old[..len]);

        let mut mean = vec![0.0f32; len];
        let mut looked = vec![0.0f32; len];
        kernels::fused_aggregate_momentum(acc, total, gamma, y_old, &mut mean, &mut looked);

        for i in 0..len {
            let m_ref = acc[i] / total;
            let l_ref = m_ref + f64::from(gamma) * (m_ref - f64::from(y_old[i]));
            prop_assert!(
                close(mean[i], m_ref as f32),
                "mean[{i}]: {} vs {}", mean[i], m_ref
            );
            prop_assert!(
                close(looked[i], l_ref as f32),
                "looked[{i}]: {} vs {}", looked[i], l_ref
            );
        }

        // Bitwise vs the historical unfused composition: finalize the
        // mean per element, then clone → subtract → axpy.
        let unfused_mean: Vec<f32> = acc.iter().map(|&a| (a / total) as f32).collect();
        let delta: Vec<f32> = unfused_mean
            .iter()
            .zip(y_old)
            .map(|(m, y)| m - y)
            .collect();
        let mut unfused_looked = unfused_mean.clone();
        kernels::axpy(&mut unfused_looked, gamma, &delta);
        prop_assert_eq!(bits(&mean), bits(&unfused_mean));
        prop_assert_eq!(bits(&looked), bits(&unfused_looked));

        // Bitwise vs the portable oracle (pins the dispatched path).
        let mut mean_o = vec![0.0f32; len];
        let mut looked_o = vec![0.0f32; len];
        kernels::fused_aggregate_momentum_scalar(
            acc, total, gamma, y_old, &mut mean_o, &mut looked_o,
        );
        prop_assert_eq!(bits(&mean), bits(&mean_o));
        prop_assert_eq!(bits(&looked), bits(&looked_o));

        // And vs the standalone Eq. 7 kernel from the same mean.
        let mut looked_m = vec![0.0f32; len];
        kernels::momentum_step(&mut looked_m, gamma, &mean, y_old);
        prop_assert_eq!(bits(&looked), bits(&looked_m));

        // Run-to-run determinism.
        let mut mean2 = vec![0.0f32; len];
        let mut looked2 = vec![0.0f32; len];
        kernels::fused_aggregate_momentum(acc, total, gamma, y_old, &mut mean2, &mut looked2);
        prop_assert_eq!(bits(&mean), bits(&mean2));
        prop_assert_eq!(bits(&looked), bits(&looked2));
    }
}
