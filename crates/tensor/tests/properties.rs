//! Property-based tests on the tensor substrate: algebraic identities the
//! layers' gradients silently rely on.

use proptest::prelude::*;

use hieradmo_tensor::{conv, ops, Matrix, Tensor4, Vector};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dot product is symmetric and norm² = ⟨v, v⟩.
    #[test]
    fn dot_symmetry_and_norm(a in vec_strategy(16), b in vec_strategy(16)) {
        let va = Vector::from(a);
        let vb = Vector::from(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-3);
        prop_assert!((va.norm_sq() - va.dot(&va)).abs() < 1e-3);
    }

    /// axpy agrees with the operator form.
    #[test]
    fn axpy_matches_operators(a in vec_strategy(8), b in vec_strategy(8), alpha in -5.0f32..5.0) {
        let va = Vector::from(a);
        let vb = Vector::from(b);
        let mut lhs = va.clone();
        lhs.axpy(alpha, &vb);
        let rhs = &va + &vb.scaled(alpha);
        for i in 0..8 {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-3);
        }
    }

    /// Matrix-vector product is linear: M(αx + y) = αMx + My.
    #[test]
    fn matvec_linearity(
        m in vec_strategy(12),
        x in vec_strategy(4),
        y in vec_strategy(4),
        alpha in -3.0f32..3.0,
    ) {
        let m = Matrix::from_rows(3, 4, m);
        let x = Vector::from(x);
        let y = Vector::from(y);
        let combined = &x.scaled(alpha) + &y;
        let lhs = m.matvec(&combined);
        let mut rhs = m.matvec(&x).scaled(alpha);
        rhs += &m.matvec(&y);
        for i in 0..3 {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-2,
                "linearity broken at {i}: {} vs {}", lhs[i], rhs[i]);
        }
    }

    /// ⟨Mx, y⟩ = ⟨x, Mᵀy⟩: the adjoint identity backprop depends on.
    #[test]
    fn matvec_adjoint_identity(
        m in vec_strategy(12),
        x in vec_strategy(4),
        y in vec_strategy(3),
    ) {
        let m = Matrix::from_rows(3, 4, m);
        let x = Vector::from(x);
        let y = Vector::from(y);
        let lhs = m.matvec(&x).dot(&y);
        let rhs = x.dot(&m.matvec_transposed(&y));
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "adjoint identity broken: {lhs} vs {rhs}");
    }

    /// Convolution is linear in the input.
    #[test]
    fn conv_linearity_in_input(
        a in vec_strategy(16),
        b in vec_strategy(16),
        w in vec_strategy(9),
        alpha in -2.0f32..2.0,
    ) {
        let ta = Tensor4::from_data(1, 1, 4, 4, a);
        let tb = Tensor4::from_data(1, 1, 4, 4, b);
        let weight = Tensor4::from_data(1, 1, 3, 3, w);
        let bias = [0.0f32];
        let mut combined = ta.clone();
        for (c, (&x, &y)) in combined
            .as_mut_slice()
            .iter_mut()
            .zip(ta.as_slice().iter().zip(tb.as_slice()))
        {
            *c = alpha * x + y;
        }
        let lhs = conv::conv2d_forward(&combined, &weight, &bias, 1);
        let oa = conv::conv2d_forward(&ta, &weight, &bias, 1);
        let ob = conv::conv2d_forward(&tb, &weight, &bias, 1);
        for i in 0..lhs.len() {
            let rhs = alpha * oa.as_slice()[i] + ob.as_slice()[i];
            prop_assert!((lhs.as_slice()[i] - rhs).abs() < 1e-2,
                "conv linearity broken at {i}");
        }
    }

    /// The conv adjoint identity ⟨conv(x), g⟩ = ⟨x, conv_backward(g)⟩
    /// (with zero bias), which is exactly what gradient checking needs.
    #[test]
    fn conv_adjoint_identity(
        x in vec_strategy(16),
        w in vec_strategy(9),
        g in vec_strategy(16),
    ) {
        let input = Tensor4::from_data(1, 1, 4, 4, x);
        let weight = Tensor4::from_data(1, 1, 3, 3, w);
        let grad_out = Tensor4::from_data(1, 1, 4, 4, g);
        let out = conv::conv2d_forward(&input, &weight, &[0.0], 1);
        let (grad_in, _, _) = conv::conv2d_backward(&input, &weight, 1, &grad_out);
        let lhs: f32 = out
            .as_slice()
            .iter()
            .zip(grad_out.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = input
            .as_slice()
            .iter()
            .zip(grad_in.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-1 * (1.0 + lhs.abs()),
            "conv adjoint broken: {lhs} vs {rhs}");
    }

    /// Softmax output is a probability distribution and is invariant to
    /// constant shifts of the logits.
    #[test]
    fn softmax_distribution_and_shift_invariance(
        logits in vec_strategy(6),
        shift in -50.0f32..50.0,
    ) {
        let v = Vector::from(logits.clone());
        let s = ops::softmax(&v);
        prop_assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let shifted: Vector = logits.iter().map(|&x| x + shift).collect();
        let s2 = ops::softmax(&shifted);
        for i in 0..6 {
            prop_assert!((s[i] - s2[i]).abs() < 1e-4, "shift invariance broken at {i}");
        }
    }

    /// Max pooling never invents values: every output element exists in
    /// the input, and the backward pass conserves gradient mass.
    #[test]
    fn maxpool_selects_existing_values_and_conserves_gradient(
        x in vec_strategy(16),
        g in vec_strategy(4),
    ) {
        let input = Tensor4::from_data(1, 1, 4, 4, x.clone());
        let res = conv::max_pool2x2_forward(&input);
        for &o in res.output.as_slice() {
            prop_assert!(x.contains(&o));
        }
        let grad_out = Tensor4::from_data(1, 1, 2, 2, g.clone());
        let gi = conv::max_pool2x2_backward(input.shape(), &res.argmax, &grad_out);
        let in_sum: f32 = gi.as_slice().iter().sum();
        let out_sum: f32 = g.iter().sum();
        prop_assert!((in_sum - out_sum).abs() < 1e-3, "gradient mass not conserved");
    }

    /// Cross-entropy gradient always sums to zero (softmax simplex
    /// tangency) and has a negative true-class component.
    #[test]
    fn cross_entropy_grad_structure(
        logits in vec_strategy(5),
        label in 0usize..5,
    ) {
        let v = Vector::from(logits);
        let g = ops::cross_entropy_grad(&v, label);
        prop_assert!(g.iter().sum::<f32>().abs() < 1e-4);
        prop_assert!(g[label] <= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The im2col fast path (the default `conv2d_forward`) computes the
    /// same convolution as the loop-nest reference within f32 rounding,
    /// for arbitrary shapes/padding.
    #[test]
    fn im2col_matches_reference_conv(
        c_in in 1usize..3,
        c_out in 1usize..3,
        h in 3usize..7,
        w in 3usize..7,
        k in 1usize..4,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let input = Tensor4::from_data(
            1, c_in, h, w,
            (0..c_in * h * w).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let weight = Tensor4::from_data(
            c_out, c_in, k, k,
            (0..c_out * c_in * k * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let bias: Vec<f32> = (0..c_out).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
        let reference = conv::conv2d_forward_direct(&input, &weight, &bias, pad);
        let fast = conv::conv2d_forward_im2col(&input, &weight, &bias, pad);
        prop_assert_eq!(reference.shape(), fast.shape());
        for (a, b) in reference.as_slice().iter().zip(fast.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "im2col mismatch: {a} vs {b}");
        }
        // The default path is the im2col path, bit for bit.
        let default = conv::conv2d_forward(&input, &weight, &bias, pad);
        prop_assert_eq!(default.as_slice(), fast.as_slice());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tiled multi-accumulator `matmul` kernel matches the naive
    /// triple loop within f32 rounding on arbitrary shapes. The kernel
    /// splits each element's summation into eight strided lanes plus a
    /// tail, so the contract is a relative tolerance against the naive
    /// oracle plus bitwise reproducibility of the kernel itself — not bit
    /// equality with the textbook order.
    #[test]
    fn tiled_matmul_matches_naive_reference(
        rows in 1usize..48,
        inner in 1usize..48,
        cols in 1usize..48,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_rows(
            rows, inner,
            (0..rows * inner).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        );
        let b = Matrix::from_rows(
            inner, cols,
            (0..inner * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        );
        // Naive reference: out[r][c] = Σ_k a[r][k]·b[k][c], increasing k,
        // one accumulator per element.
        let mut reference = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = 0.0f32;
                for k in 0..inner {
                    acc += a.at(r, k) * b.at(k, c);
                }
                *reference.at_mut(r, c) = acc;
            }
        }
        let fast = a.matmul(&b);
        for (f, s) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!(
                (f - s).abs() <= 1e-4 * (1.0 + s.abs()),
                "matmul vs naive: {f} vs {s}"
            );
        }

        // The buffer-reusing form is the same kernel, byte for byte, and
        // repeating the call reproduces the exact same bits.
        let mut bt = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut bt, &mut out);
        prop_assert_eq!(out.as_slice(), fast.as_slice());
        a.matmul_into(&b, &mut bt, &mut out);
        prop_assert_eq!(out.as_slice(), fast.as_slice());
    }
}
