//! Flat `f32` vectors — the currency of every federated-learning algorithm.
//!
//! Models expose their parameters and gradients as [`Vector`]s; aggregation,
//! momentum and adaptive-factor computations in `hieradmo-core` are written
//! entirely against this type.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::kernels;

/// A dense 1-D vector of `f32` values.
///
/// `Vector` is intentionally simple: a thin, owned wrapper around `Vec<f32>`
/// with the handful of BLAS-1 style operations that momentum-based federated
/// optimization needs (axpy, dot products, norms, weighted averages, cosine
/// similarity).
///
/// # Example
///
/// ```
/// use hieradmo_tensor::Vector;
///
/// let a = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(a.norm(), 5.0);
/// let b = &a + &a;
/// assert_eq!(b.as_slice(), &[6.0, 8.0]);
/// ```
#[derive(Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector(Vec<f32>);

impl Vector {
    /// Creates a vector of `len` zeros.
    ///
    /// ```
    /// # use hieradmo_tensor::Vector;
    /// assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    pub fn zeros(len: usize) -> Self {
        Vector(vec![0.0; len])
    }

    /// Creates a vector of `len` copies of `value`.
    pub fn filled(len: usize, value: f32) -> Self {
        Vector(vec![value; len])
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutably borrows the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<f32> {
        self.0
    }

    /// In-place scaled addition `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f32, other: &Vector) {
        assert_eq!(
            self.len(),
            other.len(),
            "axpy length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        kernels::axpy(&mut self.0, alpha, &other.0);
    }

    /// Copies `other`'s elements into `self` without reallocating when the
    /// lengths already match (the steady state of a training loop).
    ///
    /// This is the allocation-free alternative to `*self = other.clone()`:
    /// per-worker scratch buffers in the execution engine are reused across
    /// local steps via `copy_from` + [`Vector::axpy`].
    pub fn copy_from(&mut self, other: &Vector) {
        if self.len() == other.len() {
            self.0.copy_from_slice(&other.0);
        } else {
            self.0.clear();
            self.0.extend_from_slice(&other.0);
        }
    }

    /// Reverse in-place subtraction: `self = other - self`, element-wise.
    ///
    /// Produces bit-identical results to `&other - &self` (same operand
    /// order per element) without allocating, which lets momentum updates
    /// like `v = y_new - y_old` reuse an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn sub_from(&mut self, other: &Vector) {
        assert_eq!(
            self.len(),
            other.len(),
            "sub_from length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = b - *a;
        }
    }

    /// Sets every element to `value` (typically `0.0` to recycle a scratch
    /// buffer before gradient accumulation).
    pub fn fill(&mut self, value: f32) {
        self.0.fill(value);
    }

    /// In-place multiplication by a scalar.
    pub fn scale_in_place(&mut self, alpha: f32) {
        kernels::scal(&mut self.0, alpha);
    }

    /// Returns `self * alpha` as a new vector.
    pub fn scaled(&self, alpha: f32) -> Vector {
        Vector(self.0.iter().map(|a| a * alpha).collect())
    }

    /// Inner product `<self, other>` (lane-chunked [`kernels::dot`]).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot length mismatch: {} vs {}",
            self.len(),
            other.len()
        );
        kernels::dot(&self.0, &other.0)
    }

    /// Euclidean (ℓ2) norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm, avoiding the square root.
    pub fn norm_sq(&self) -> f32 {
        kernels::norm_sq(&self.0)
    }

    /// Euclidean distance `‖self - other‖`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn distance(&self, other: &Vector) -> f32 {
        assert_eq!(self.len(), other.len(), "distance length mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Cosine of the angle between `self` and `other`.
    ///
    /// This is the core primitive of the paper's Eq. (6): the adaptive edge
    /// momentum factor is a data-weighted cosine between accumulated
    /// gradients and momenta.
    ///
    /// Returns `0.0` when either vector has (near-)zero norm, which matches
    /// the paper's clamping rule: with no signal the edge momentum gets
    /// zero weight. The same guard covers a non-finite denominator (norms
    /// so large their product overflows `f32`), so this can never hand a
    /// NaN to the adaptive γℓ clamp (Eq. 7) downstream.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn cosine(&self, other: &Vector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON || !denom.is_finite() {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Element-wise linear interpolation `(1 - t) * self + t * other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn lerp(&self, other: &Vector, t: f32) -> Vector {
        assert_eq!(self.len(), other.len(), "lerp length mismatch");
        let mut out = vec![0.0f32; self.len()];
        kernels::fused_scale_add(&mut out, 1.0 - t, &self.0, t, &other.0);
        Vector(out)
    }

    /// Data-size-weighted average of vectors, the aggregation primitive of
    /// Algorithm 1 (lines 11, 12, 18, 19): `Σ wᵢ·vᵢ / Σ wᵢ`.
    ///
    /// Runs on [`kernels::weighted_sum_batch`] — one coordinate-tiled,
    /// SIMD-dispatched pass over the accumulator with workers as the batch
    /// dimension — bitwise identical to the historical per-worker
    /// `weighted_accumulate` sweep.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty, if vector lengths differ, or if the total
    /// weight is not strictly positive.
    pub fn weighted_average<'a, I>(items: I) -> Vector
    where
        I: IntoIterator<Item = (f64, &'a Vector)>,
    {
        let (weights, views) = Self::collect_batch(items);
        let mut acc = vec![0.0f64; views[0].len()];
        kernels::weighted_sum_batch(&mut acc, &weights, &views);
        let total = Self::total_weight(&weights);
        Vector(acc.into_iter().map(|a| (a / total) as f32).collect())
    }

    /// Materialises a `(weight, vector)` stream into the parallel-slice
    /// form the batched kernels take, with the historical length checks.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or vector lengths differ.
    pub fn collect_batch<'a, I>(items: I) -> (Vec<f64>, Vec<&'a [f32]>)
    where
        I: IntoIterator<Item = (f64, &'a Vector)>,
    {
        let mut weights = Vec::new();
        let mut views: Vec<&[f32]> = Vec::new();
        for (w, v) in items {
            if let Some(first) = views.first() {
                assert_eq!(first.len(), v.len(), "weighted_average length mismatch");
            }
            weights.push(w);
            views.push(&v.0);
        }
        assert!(
            !views.is_empty(),
            "weighted_average requires at least one vector"
        );
        (weights, views)
    }

    /// Sums the batch weights in input order (the same order the historical
    /// streaming path used) and asserts positivity.
    ///
    /// # Panics
    ///
    /// Panics if the total is not strictly positive.
    pub fn total_weight(weights: &[f64]) -> f64 {
        let total = weights[1..].iter().fold(weights[0], |t, &w| t + w);
        assert!(
            total > 0.0,
            "weighted_average requires positive total weight, got {total}"
        );
        total
    }

    /// Maximum absolute element, or `0.0` for an empty vector.
    pub fn max_abs(&self) -> f32 {
        self.0.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Returns `true` iff every element is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.0.iter()
    }

    /// Mutably iterates over the elements.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.0.iter_mut()
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Vector({:?})", self.0)
        } else {
            write!(
                f,
                "Vector(len={}, head={:?}…)",
                self.len(),
                &self.0[..4.min(self.len())]
            )
        }
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

impl From<&[f32]> for Vector {
    fn from(v: &[f32]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Extend<f32> for Vector {
    fn extend<I: IntoIterator<Item = f32>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.0
    }
}

impl AsMut<[f32]> for Vector {
    fn as_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }
}

impl Index<usize> for Vector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.0[i]
    }
}

impl IntoIterator for Vector {
    type Item = f32;
    type IntoIter = std::vec::IntoIter<f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f32;
    type IntoIter = std::slice::Iter<'a, f32>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub length mismatch");
        Vector(
            self.0
                .iter()
                .zip(rhs.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f32> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f32) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(5);
        assert_eq!(v.len(), 5);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        a.axpy(2.0, &Vector::from(vec![3.0, -1.0]));
        assert_eq!(a.as_slice(), &[7.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut a = Vector::zeros(2);
        a.axpy(1.0, &Vector::zeros(3));
    }

    #[test]
    fn copy_from_reuses_storage() {
        let mut a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![9.0, -4.0]);
        a.copy_from(&b);
        assert_eq!(a.as_slice(), b.as_slice());
        // Length change still works (grows/shrinks as needed).
        let c = Vector::from(vec![1.0, 2.0, 3.0]);
        a.copy_from(&c);
        assert_eq!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn sub_from_matches_operator() {
        let y_new = Vector::from(vec![1.5, -2.25, 0.125]);
        let y_old = Vector::from(vec![0.5, 0.75, -1.0]);
        let reference = &y_new - &y_old;
        let mut buf = y_old.clone();
        buf.sub_from(&y_new);
        assert_eq!(buf.as_slice(), reference.as_slice());
    }

    #[test]
    #[should_panic(expected = "sub_from length mismatch")]
    fn sub_from_length_mismatch_panics() {
        let mut a = Vector::zeros(2);
        a.sub_from(&Vector::zeros(3));
    }

    #[test]
    fn fill_overwrites_all() {
        let mut a = Vector::from(vec![1.0, 2.0, 3.0]);
        a.fill(0.0);
        assert_eq!(a.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Vector::from(vec![1.0, 0.0]);
        let b = Vector::from(vec![0.0, 1.0]);
        assert!((a.distance(&b) - 2f32.sqrt()).abs() < 1e-6);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn cosine_of_parallel_and_orthogonal() {
        let a = Vector::from(vec![1.0, 0.0]);
        let b = Vector::from(vec![2.0, 0.0]);
        let c = Vector::from(vec![0.0, 5.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        assert!(a.cosine(&c).abs() < 1e-6);
        assert!((a.cosine(&-&b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        let a = Vector::zeros(3);
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    /// Zero-norm inputs yield a well-defined 0.0 — never NaN — because the
    /// result feeds the adaptive γℓ clamp (Eq. 6/7), where a NaN would
    /// silently poison every subsequent edge aggregation.
    #[test]
    fn cosine_of_degenerate_inputs_is_zero_not_nan() {
        let z = Vector::zeros(4);
        assert_eq!(z.cosine(&z), 0.0);
        assert_eq!(z.cosine(&Vector::zeros(4)), 0.0);
        // Norms whose product overflows f32 would make the naive formula
        // produce inf/inf = NaN; the guard returns 0.0 instead.
        let huge = Vector::filled(8, 1.0e30);
        let cos = huge.cosine(&huge);
        assert!(!cos.is_nan(), "cosine must never be NaN, got {cos}");
        assert_eq!(cos, 0.0);
        // Subnormal-but-nonzero vectors also land in the zero-weight case.
        let tiny = Vector::filled(3, 1.0e-30);
        assert_eq!(tiny.cosine(&tiny), 0.0);
    }

    #[test]
    fn weighted_average_matches_manual() {
        let a = Vector::from(vec![0.0, 0.0]);
        let b = Vector::from(vec![4.0, 8.0]);
        let avg = Vector::weighted_average([(1.0, &a), (3.0, &b)]);
        assert_eq!(avg.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn weighted_average_empty_panics() {
        let _ = Vector::weighted_average(std::iter::empty());
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vector::from(vec![0.0]);
        let b = Vector::from(vec![10.0]);
        assert_eq!(a.lerp(&b, 0.0).as_slice(), &[0.0]);
        assert_eq!(a.lerp(&b, 1.0).as_slice(), &[10.0]);
        assert_eq!(a.lerp(&b, 0.25).as_slice(), &[2.5]);
    }

    #[test]
    fn operators() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        c -= &b;
        assert_eq!(c.as_slice(), a.as_slice());
    }

    #[test]
    fn max_abs_and_is_finite() {
        let a = Vector::from(vec![-3.0, 2.0]);
        assert_eq!(a.max_abs(), 3.0);
        assert!(a.is_finite());
        let b = Vector::from(vec![f32::NAN]);
        assert!(!b.is_finite());
        assert_eq!(Vector::zeros(0).max_abs(), 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut w = v.clone();
        w.extend([3.0]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Vector::zeros(0)).is_empty());
        assert!(format!("{:?}", Vector::zeros(100)).contains("len=100"));
    }
}
