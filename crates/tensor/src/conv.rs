//! Convolution and pooling with analytic gradients.
//!
//! The default forward path ([`conv2d_forward`]) lowers each batch element
//! to an im2col patch matrix and runs the register-tiled
//! [`crate::kernels::matmul_bt`] product, with caller-holdable scratch
//! ([`Im2colScratch`], [`conv2d_forward_into`]) so steady-state layers
//! allocate nothing. A direct loop-nest reference
//! ([`conv2d_forward_direct`]) is kept as the oracle the property tests
//! and the `kernel_bench` baseline compare against; the backward pass
//! stays a loop nest but delegates its inner row operations to
//! [`crate::kernels`].
//!
//! Weight layout for convolutions is `(out_channels, in_channels, kh, kw)`
//! stored in a [`Tensor4`]. All convolutions use stride 1 with configurable
//! symmetric zero padding; spatial down-sampling is done by 2×2 max pooling,
//! which is how the scaled-down VGG/ResNet-style models in
//! `hieradmo-models` reduce resolution.

use crate::{kernels, Tensor4};

/// Output of [`max_pool2x2_forward`]: the pooled tensor plus the flat index
/// (into the input storage) of each selected maximum, needed for the
/// backward pass.
#[derive(Debug, Clone)]
pub struct PoolResult {
    /// Pooled output, shape `(n, c, h/2, w/2)`.
    pub output: Tensor4,
    /// For each output element (in NCHW order), the flat input index of the
    /// maximum that produced it.
    pub argmax: Vec<usize>,
}

/// 2-D convolution forward pass with stride 1 and symmetric zero padding.
///
/// `input` has shape `(n, c_in, h, w)`; `weight` has shape
/// `(c_out, c_in, kh, kw)`; `bias` has length `c_out`. The output has shape
/// `(n, c_out, h + 2*pad - kh + 1, w + 2*pad - kw + 1)`.
///
/// Routes through the im2col + tiled-matmul path
/// ([`conv2d_forward_into`]); allocation-sensitive callers should hold the
/// [`Im2colScratch`] and output tensor themselves and call the `_into`
/// form directly, the way `matmul_into` callers hold their buffers.
///
/// # Panics
///
/// Panics if channel counts disagree, if `bias.len() != c_out`, or if the
/// kernel is larger than the padded input.
pub fn conv2d_forward(input: &Tensor4, weight: &Tensor4, bias: &[f32], pad: usize) -> Tensor4 {
    let mut scratch = Im2colScratch::default();
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    conv2d_forward_into(input, weight, bias, pad, &mut scratch, &mut out);
    out
}

/// Direct loop-nest 2-D convolution: identical semantics to
/// [`conv2d_forward`], computed without the im2col lowering.
///
/// Kept as the straightforward reference implementation — the oracle for
/// the im2col property tests and the "old kernel" baseline of
/// `kernel_bench` — and still the better choice for very small spatial
/// extents where building patches costs more than it saves.
///
/// # Panics
///
/// Panics under the same conditions as [`conv2d_forward`].
pub fn conv2d_forward_direct(
    input: &Tensor4,
    weight: &Tensor4,
    bias: &[f32],
    pad: usize,
) -> Tensor4 {
    let (n, c_in, h, w) = input.shape();
    let (c_out, wc_in, kh, kw) = weight.shape();
    assert_eq!(c_in, wc_in, "conv2d channel mismatch: {c_in} vs {wc_in}");
    assert_eq!(bias.len(), c_out, "conv2d bias length mismatch");
    let oh = (h + 2 * pad)
        .checked_sub(kh - 1)
        .expect("conv2d kernel taller than padded input");
    let ow = (w + 2 * pad)
        .checked_sub(kw - 1)
        .expect("conv2d kernel wider than padded input");

    let mut out = Tensor4::zeros(n, c_out, oh, ow);
    for b in 0..n {
        for (oc, &bias_v) in bias.iter().enumerate() {
            {
                let out_plane = out.plane_mut(b, oc);
                out_plane.iter_mut().for_each(|v| *v = bias_v);
            }
            for ic in 0..c_in {
                let in_plane = input.plane(b, ic).to_vec();
                let w_plane = weight.plane(oc, ic).to_vec();
                let out_plane = out.plane_mut(b, oc);
                for ky in 0..kh {
                    for oy in 0..oh {
                        let iy = oy + ky;
                        if iy < pad || iy - pad >= h {
                            continue;
                        }
                        let in_row = &in_plane[(iy - pad) * w..(iy - pad) * w + w];
                        let out_row = &mut out_plane[oy * ow..oy * ow + ow];
                        for kx in 0..kw {
                            let wv = w_plane[ky * kw + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            let (ox_start, ox_end, ix_start) = row_ranges(pad, kx, w, ow);
                            if ox_start >= ox_end {
                                continue;
                            }
                            let len = ox_end - ox_start;
                            kernels::axpy(
                                &mut out_row[ox_start..ox_end],
                                wv,
                                &in_row[ix_start..ix_start + len],
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Valid output-column range `[ox_start, ox_end)` and the matching input
/// start column for a given kernel column `kx`: `ix = ox + kx − pad` must
/// lie in `[0, w)` and `ox` in `[0, ow)`.
#[inline]
fn row_ranges(pad: usize, kx: usize, w: usize, ow: usize) -> (usize, usize, usize) {
    let ox_start = pad.saturating_sub(kx);
    let ox_end = (w + pad).saturating_sub(kx).min(ow);
    // ox_start ≥ pad − kx ensures ox_start + kx − pad ≥ 0.
    let ix_start = ox_start + kx - pad;
    (ox_start, ox_end, ix_start)
}

/// 2-D convolution backward pass.
///
/// Given the forward inputs and the upstream gradient `grad_out`, returns
/// `(grad_input, grad_weight, grad_bias)` with the same shapes as `input`,
/// `weight` and `bias` respectively.
///
/// # Panics
///
/// Panics if `grad_out`'s shape does not match the forward output shape for
/// these arguments.
pub fn conv2d_backward(
    input: &Tensor4,
    weight: &Tensor4,
    pad: usize,
    grad_out: &Tensor4,
) -> (Tensor4, Tensor4, Vec<f32>) {
    let (n, c_in, h, w) = input.shape();
    let (c_out, _, kh, kw) = weight.shape();
    let (gn, gc, oh, ow) = grad_out.shape();
    assert_eq!(
        (gn, gc),
        (n, c_out),
        "conv2d_backward batch/channel mismatch"
    );
    assert_eq!(
        (oh, ow),
        (h + 2 * pad - kh + 1, w + 2 * pad - kw + 1),
        "conv2d_backward spatial shape mismatch"
    );

    let mut grad_input = Tensor4::zeros(n, c_in, h, w);
    let mut grad_weight = Tensor4::zeros(c_out, c_in, kh, kw);
    let mut grad_bias = vec![0.0f32; c_out];

    for b in 0..n {
        for (oc, gb) in grad_bias.iter_mut().enumerate() {
            let go_plane = grad_out.plane(b, oc).to_vec();
            *gb += go_plane.iter().sum::<f32>();
            for ic in 0..c_in {
                let in_plane = input.plane(b, ic).to_vec();
                let w_plane = weight.plane(oc, ic).to_vec();
                let gi_plane = grad_input.plane_mut(b, ic);
                let mut gw_local = vec![0.0f32; kh * kw];
                for ky in 0..kh {
                    for oy in 0..oh {
                        let iy = oy + ky;
                        if iy < pad || iy - pad >= h {
                            continue;
                        }
                        let row = (iy - pad) * w;
                        let go_row = &go_plane[oy * ow..oy * ow + ow];
                        for kx in 0..kw {
                            let (ox_start, ox_end, ix_start) = row_ranges(pad, kx, w, ow);
                            if ox_start >= ox_end {
                                continue;
                            }
                            let len = ox_end - ox_start;
                            let go_seg = &go_row[ox_start..ox_end];
                            // grad_input[iy][ix] += g · w.
                            let wv = w_plane[ky * kw + kx];
                            if wv != 0.0 {
                                let gi_seg = &mut gi_plane[row + ix_start..row + ix_start + len];
                                kernels::axpy(gi_seg, wv, go_seg);
                            }
                            // grad_weight[ky][kx] += ⟨g_row, in_row⟩.
                            let in_seg = &in_plane[row + ix_start..row + ix_start + len];
                            gw_local[ky * kw + kx] += kernels::dot(go_seg, in_seg);
                        }
                    }
                }
                let gw_plane = grad_weight.plane_mut(oc, ic);
                for (dst, src) in gw_plane.iter_mut().zip(&gw_local) {
                    *dst += src;
                }
            }
        }
    }
    (grad_input, grad_weight, grad_bias)
}

/// 2×2 max pooling with stride 2.
///
/// Odd trailing rows/columns are dropped (floor division), matching the
/// common deep-learning convention.
///
/// # Panics
///
/// Panics if the input is smaller than 2×2 spatially.
pub fn max_pool2x2_forward(input: &Tensor4) -> PoolResult {
    let (n, c, h, w) = input.shape();
    assert!(h >= 2 && w >= 2, "max_pool2x2 needs at least 2x2 input");
    let oh = h / 2;
    let ow = w / 2;
    let mut output = Tensor4::zeros(n, c, oh, ow);
    let mut argmax = Vec::with_capacity(n * c * oh * ow);
    for b in 0..n {
        for ch in 0..c {
            let plane = input.plane(b, ch);
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = (2 * oy) * w + 2 * ox;
                    let mut best = plane[best_idx];
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let idx = (2 * oy + dy) * w + (2 * ox + dx);
                            if plane[idx] > best {
                                best = plane[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    *output.at_mut(b, ch, oy, ox) = best;
                    argmax.push(base + best_idx);
                }
            }
        }
    }
    PoolResult { output, argmax }
}

/// Backward pass of [`max_pool2x2_forward`]: routes each upstream gradient
/// to the input position that won the max.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn max_pool2x2_backward(
    input_shape: (usize, usize, usize, usize),
    argmax: &[usize],
    grad_out: &Tensor4,
) -> Tensor4 {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "max_pool2x2_backward argmax/gradient length mismatch"
    );
    let (n, c, h, w) = input_shape;
    let mut grad_input = Tensor4::zeros(n, c, h, w);
    let gi = grad_input.as_mut_slice();
    for (&idx, &g) in argmax.iter().zip(grad_out.as_slice()) {
        gi[idx] += g;
    }
    grad_input
}

/// Global average pooling: reduces each `(n, c)` plane to its mean,
/// producing a `(n, c, 1, 1)` tensor. Used by the ResNet-style head.
pub fn global_avg_pool_forward(input: &Tensor4) -> Tensor4 {
    let (n, c, h, w) = input.shape();
    let mut out = Tensor4::zeros(n, c, 1, 1);
    let scale = 1.0 / (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let mean: f32 = input.plane(b, ch).iter().sum::<f32>() * scale;
            *out.at_mut(b, ch, 0, 0) = mean;
        }
    }
    out
}

/// Backward pass of [`global_avg_pool_forward`]: spreads each upstream
/// gradient uniformly over the plane.
///
/// # Panics
///
/// Panics if `grad_out` is not `(n, c, 1, 1)` for the given input shape.
pub fn global_avg_pool_backward(
    input_shape: (usize, usize, usize, usize),
    grad_out: &Tensor4,
) -> Tensor4 {
    let (n, c, h, w) = input_shape;
    assert_eq!(
        grad_out.shape(),
        (n, c, 1, 1),
        "global_avg_pool_backward shape"
    );
    let mut grad_input = Tensor4::zeros(n, c, h, w);
    let scale = 1.0 / (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let g = grad_out.at(b, ch, 0, 0) * scale;
            for v in grad_input.plane_mut(b, ch) {
                *v = g;
            }
        }
    }
    grad_input
}

/// Reusable scratch for the im2col convolution path: the per-batch patch
/// matrix and the product buffer.
///
/// Holding one of these across calls (the way `matmul_into` callers hold
/// their `bt`/`out` matrices) makes steady-state convolution forward
/// passes allocation-free after the first call at a given shape — each
/// `Conv` layer in `hieradmo-models` keeps one per replica.
#[derive(Debug, Clone, Default)]
pub struct Im2colScratch {
    /// Patch matrix, `(oh·ow) × (c_in·kh·kw)` row-major: one row per
    /// output position, laid out as the transpose the tiled matmul kernel
    /// consumes directly.
    patches: Vec<f32>,
    /// Product buffer, `c_out × (oh·ow)` row-major.
    prod: Vec<f32>,
}

impl Im2colScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// im2col-based convolution forward pass into a caller-held output tensor
/// and scratch: identical semantics to [`conv2d_forward_direct`],
/// implemented as one register-tiled matrix product per batch element
/// (`weight-as-matrix · patch-matrixᵀ` via [`kernels::matmul_bt`]).
///
/// `out` is reshaped to `(n, c_out, oh, ow)` reusing its storage; after
/// the first call at a given shape neither `scratch` nor `out` allocates.
///
/// # Panics
///
/// Panics under the same conditions as [`conv2d_forward`].
pub fn conv2d_forward_into(
    input: &Tensor4,
    weight: &Tensor4,
    bias: &[f32],
    pad: usize,
    scratch: &mut Im2colScratch,
    out: &mut Tensor4,
) {
    let (n, c_in, h, w) = input.shape();
    let (c_out, wc_in, kh, kw) = weight.shape();
    assert_eq!(c_in, wc_in, "conv2d channel mismatch: {c_in} vs {wc_in}");
    assert_eq!(bias.len(), c_out, "conv2d bias length mismatch");
    let oh = (h + 2 * pad)
        .checked_sub(kh - 1)
        .expect("conv2d kernel taller than padded input");
    let ow = (w + 2 * pad)
        .checked_sub(kw - 1)
        .expect("conv2d kernel wider than padded input");

    let patch = c_in * kh * kw;
    let spatial = oh * ow;
    out.reshape(n, c_out, oh, ow);
    // Zero once per call: padding positions are never written below, and
    // the in/out-of-range pattern depends only on the geometry, which is
    // fixed across batch elements.
    scratch.patches.clear();
    scratch.patches.resize(spatial * patch, 0.0);
    scratch.prod.resize(c_out * spatial, 0.0);

    for b in 0..n {
        // One patch row per output position: row (oy·ow + ox) holds
        // input[ic][oy+ky−pad][ox+kx−pad] indexed by (ic, ky, kx), i.e.
        // exactly the transposed right-hand operand of the product.
        for ic in 0..c_in {
            let plane = input.plane(b, ic);
            for oy in 0..oh {
                for ky in 0..kh {
                    let iy = oy + ky;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let iy = iy - pad;
                    for ox in 0..ow {
                        // Valid kernel columns: ix = ox + kx − pad ∈ [0, w).
                        let kx_start = pad.saturating_sub(ox);
                        let kx_end = (w + pad).saturating_sub(ox).min(kw);
                        if kx_start >= kx_end {
                            continue;
                        }
                        let ix_start = ox + kx_start - pad;
                        let len = kx_end - kx_start;
                        let dst = (oy * ow + ox) * patch + (ic * kh + ky) * kw + kx_start;
                        scratch.patches[dst..dst + len]
                            .copy_from_slice(&plane[iy * w + ix_start..iy * w + ix_start + len]);
                    }
                }
            }
        }
        kernels::matmul_bt(
            weight.as_slice(),
            &scratch.patches,
            &mut scratch.prod,
            c_out,
            spatial,
            patch,
        );
        for (oc, &bias_v) in bias.iter().enumerate() {
            let dst = out.plane_mut(b, oc);
            let src = &scratch.prod[oc * spatial..(oc + 1) * spatial];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s + bias_v;
            }
        }
    }
}

/// im2col-based convolution forward pass: identical semantics to
/// [`conv2d_forward_direct`]. Allocating wrapper around
/// [`conv2d_forward_into`]; the `conv_forward` Criterion bench compares
/// the paths.
///
/// # Panics
///
/// Panics under the same conditions as [`conv2d_forward`].
pub fn conv2d_forward_im2col(
    input: &Tensor4,
    weight: &Tensor4,
    bias: &[f32],
    pad: usize,
) -> Tensor4 {
    let mut scratch = Im2colScratch::default();
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    conv2d_forward_into(input, weight, bias, pad, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×1 input, 1×1 kernel: convolution degenerates to scalar affine.
    #[test]
    fn conv_scalar_case() {
        let input = Tensor4::from_data(1, 1, 1, 1, vec![3.0]);
        let weight = Tensor4::from_data(1, 1, 1, 1, vec![2.0]);
        let out = conv2d_forward(&input, &weight, &[1.0], 0);
        assert_eq!(out.as_slice(), &[7.0]);
    }

    #[test]
    fn conv_identity_kernel_with_same_padding() {
        // 3x3 kernel with a single 1 in the centre and pad=1 is identity.
        let input = Tensor4::from_data(1, 1, 3, 3, (1..=9).map(|i| i as f32).collect());
        let mut kernel = vec![0.0; 9];
        kernel[4] = 1.0;
        let weight = Tensor4::from_data(1, 1, 3, 3, kernel);
        let out = conv2d_forward(&input, &weight, &[0.0], 1);
        assert_eq!(out.shape(), input.shape());
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_valid_shrinks_output() {
        let input = Tensor4::zeros(2, 3, 8, 8);
        let weight = Tensor4::zeros(4, 3, 3, 3);
        let out = conv2d_forward(&input, &weight, &[0.0; 4], 0);
        assert_eq!(out.shape(), (2, 4, 6, 6));
    }

    /// Numerical gradient check of the conv backward pass.
    #[test]
    fn conv_backward_matches_finite_differences() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let input = Tensor4::from_data(
            1,
            2,
            4,
            4,
            (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let weight = Tensor4::from_data(
            2,
            2,
            3,
            3,
            (0..36).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let bias = vec![0.1, -0.2];
        let pad = 1;

        // Loss = sum of outputs, so upstream gradient is all ones.
        let out = conv2d_forward(&input, &weight, &bias, pad);
        let ones = Tensor4::from_data(out.n(), out.c(), out.h(), out.w(), vec![1.0; out.len()]);
        let (gi, gw, gb) = conv2d_backward(&input, &weight, pad, &ones);

        let eps = 1e-2f32;
        let loss = |inp: &Tensor4, w: &Tensor4, b: &[f32]| -> f32 {
            conv2d_forward(inp, w, b, pad).as_slice().iter().sum()
        };

        // Spot-check a few input positions.
        for &idx in &[0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let fd = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            assert!(
                (gi.as_slice()[idx] - fd).abs() < 1e-2,
                "input grad {idx}: {} vs fd {}",
                gi.as_slice()[idx],
                fd
            );
        }
        // Spot-check weights.
        for &idx in &[0usize, 9, 20, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (gw.as_slice()[idx] - fd).abs() < 1e-1,
                "weight grad {idx}: {} vs fd {}",
                gw.as_slice()[idx],
                fd
            );
        }
        // Bias gradient is the number of output positions per channel.
        let per_channel = (out.h() * out.w()) as f32;
        assert!((gb[0] - per_channel).abs() < 1e-3);
        assert!((gb[1] - per_channel).abs() < 1e-3);
    }

    #[test]
    fn max_pool_selects_maximum_and_routes_gradient() {
        let input = Tensor4::from_data(1, 1, 2, 4, vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 9.0]);
        let res = max_pool2x2_forward(&input);
        assert_eq!(res.output.shape(), (1, 1, 1, 2));
        assert_eq!(res.output.as_slice(), &[5.0, 9.0]);

        let go = Tensor4::from_data(1, 1, 1, 2, vec![10.0, 20.0]);
        let gi = max_pool2x2_backward(input.shape(), &res.argmax, &go);
        assert_eq!(gi.as_slice(), &[0.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 20.0]);
    }

    #[test]
    fn max_pool_drops_odd_edges() {
        let input = Tensor4::zeros(1, 1, 5, 5);
        let res = max_pool2x2_forward(&input);
        assert_eq!(res.output.shape(), (1, 1, 2, 2));
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let input =
            Tensor4::from_data(1, 2, 2, 2, vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let out = global_avg_pool_forward(&input);
        assert_eq!(out.as_slice(), &[2.5, 10.0]);
        let go = Tensor4::from_data(1, 2, 1, 1, vec![4.0, 8.0]);
        let gi = global_avg_pool_backward(input.shape(), &go);
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }
}
