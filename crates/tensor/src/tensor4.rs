//! NCHW 4-D tensors used by the convolutional layers of the model zoo.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Vector;

/// A dense 4-D tensor in NCHW layout (batch, channels, height, width).
///
/// The convolution and pooling routines in [`crate::conv`] operate on this
/// type. Storage is a single contiguous `Vec<f32>` with the innermost index
/// being width.
///
/// # Example
///
/// ```
/// use hieradmo_tensor::Tensor4;
///
/// let mut t = Tensor4::zeros(1, 1, 2, 2);
/// *t.at_mut(0, 0, 1, 1) = 5.0;
/// assert_eq!(t.at(0, 0, 1, 1), 5.0);
/// assert_eq!(t.len(), 4);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Tensor4 {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor from existing NCHW data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n*c*h*w`.
    pub fn from_data(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            n * c * h * w,
            "tensor data length {} does not match {n}x{c}x{h}x{w}",
            data.len()
        );
        Tensor4 { n, c, h, w, data }
    }

    /// Shape as `(n, c, h, w)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Resizes to the given shape reusing the existing allocation;
    /// contents afterwards are unspecified (callers overwrite every
    /// element). This is how `conv2d_forward_into` recycles its output
    /// tensor across layers and batches.
    pub fn reshape(&mut self, n: usize, c: usize, h: usize, w: usize) {
        self.n = n;
        self.c = c;
        self.h = h;
        self.w = w;
        self.data.resize(n * c * h * w, 0.0);
    }

    /// Batch dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel dimension.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn offset(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && y < self.h && x < self.w);
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an index is out of range.
    #[inline]
    pub fn at(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.offset(n, c, y, x)]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an index is out of range.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, y: usize, x: usize) -> &mut f32 {
        let off = self.offset(n, c, y, x);
        &mut self.data[off]
    }

    /// Borrows the contiguous NCHW storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the contiguous NCHW storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrows the `(n, c)` plane as a `h*w` slice.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` are out of range.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        assert!(n < self.n && c < self.c, "plane index out of bounds");
        let start = (n * self.c + c) * self.h * self.w;
        &self.data[start..start + self.h * self.w]
    }

    /// Mutably borrows the `(n, c)` plane.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `c` are out of range.
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        assert!(n < self.n && c < self.c, "plane index out of bounds");
        let hw = self.h * self.w;
        let start = (n * self.c + c) * hw;
        &mut self.data[start..start + hw]
    }

    /// Flattens one batch element to a [`Vector`] (used at the conv→fc
    /// boundary of CNNs).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn flatten_sample(&self, n: usize) -> Vector {
        assert!(n < self.n, "sample index out of bounds");
        let chw = self.c * self.h * self.w;
        Vector::from(&self.data[n * chw..(n + 1) * chw])
    }

    /// Builds a single-sample tensor (`n = 1`) from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != c*h*w`.
    pub fn from_flat_sample(v: &Vector, c: usize, h: usize, w: usize) -> Self {
        assert_eq!(v.len(), c * h * w, "flat sample length mismatch");
        Tensor4::from_data(1, c, h, w, v.as_slice().to_vec())
    }

    /// Sets every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

impl fmt::Debug for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor4({}x{}x{}x{})", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_len() {
        let t = Tensor4::zeros(2, 3, 4, 5);
        assert_eq!(t.shape(), (2, 3, 4, 5));
        assert_eq!(t.len(), 120);
        assert!(!t.is_empty());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor4::zeros(2, 2, 2, 2);
        *t.at_mut(1, 0, 1, 0) = 9.0;
        assert_eq!(t.at(1, 0, 1, 0), 9.0);
        // NCHW layout: offset = ((n*C + c)*H + y)*W + x = ((1*2+0)*2+1)*2+0 = 10
        assert_eq!(t.as_slice()[10], 9.0);
    }

    #[test]
    fn plane_views() {
        let mut t = Tensor4::zeros(1, 2, 2, 2);
        t.plane_mut(0, 1).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.plane(0, 1), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.plane(0, 0), &[0.0; 4]);
    }

    #[test]
    fn flatten_and_restore() {
        let t = Tensor4::from_data(2, 1, 2, 2, (0..8).map(|i| i as f32).collect());
        let s1 = t.flatten_sample(1);
        assert_eq!(s1.as_slice(), &[4.0, 5.0, 6.0, 7.0]);
        let back = Tensor4::from_flat_sample(&s1, 1, 2, 2);
        assert_eq!(back.plane(0, 0), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bad_data_length_panics() {
        let _ = Tensor4::from_data(1, 1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn fill_zero_resets() {
        let mut t = Tensor4::from_data(1, 1, 1, 2, vec![1.0, 2.0]);
        t.fill_zero();
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
    }
}
