//! Parameter initializers.
//!
//! All initializers take a caller-supplied [`rand::Rng`] so that every
//! federated worker, model and experiment is reproducible from an explicit
//! seed — a hard requirement for the paper's "same initial model on every
//! worker" setup (Algorithm 1, line 1).

use rand::Rng;

use crate::{Matrix, Tensor4, Vector};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to linear/sigmoid layers.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, len: usize) -> Vector {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..len).map(|_| rng.gen_range(-a..=a)).collect()
}

/// He/Kaiming uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Suited to ReLU layers.
pub fn he_uniform<R: Rng>(rng: &mut R, fan_in: usize, len: usize) -> Vector {
    let a = (6.0 / fan_in as f32).sqrt();
    (0..len).map(|_| rng.gen_range(-a..=a)).collect()
}

/// Xavier-initialized fully-connected weight matrix of shape
/// `(fan_out, fan_in)`.
pub fn xavier_matrix<R: Rng>(rng: &mut R, fan_out: usize, fan_in: usize) -> Matrix {
    Matrix::from_rows(
        fan_out,
        fan_in,
        xavier_uniform(rng, fan_in, fan_out, fan_out * fan_in).into_inner(),
    )
}

/// He-initialized fully-connected weight matrix of shape `(fan_out, fan_in)`.
pub fn he_matrix<R: Rng>(rng: &mut R, fan_out: usize, fan_in: usize) -> Matrix {
    Matrix::from_rows(
        fan_out,
        fan_in,
        he_uniform(rng, fan_in, fan_out * fan_in).into_inner(),
    )
}

/// He-initialized convolution kernel of shape `(c_out, c_in, kh, kw)`.
/// `fan_in = c_in * kh * kw`.
pub fn he_conv<R: Rng>(rng: &mut R, c_out: usize, c_in: usize, kh: usize, kw: usize) -> Tensor4 {
    let fan_in = c_in * kh * kw;
    Tensor4::from_data(
        c_out,
        c_in,
        kh,
        kw,
        he_uniform(rng, fan_in, c_out * c_in * kh * kw).into_inner(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_stays_in_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let v = xavier_uniform(&mut rng, 100, 100, 1000);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(v.iter().all(|&x| x.abs() <= a));
        assert!(v.max_abs() > 0.0, "should not be all zeros");
    }

    #[test]
    fn he_stays_in_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let v = he_uniform(&mut rng, 64, 500);
        let a = (6.0f32 / 64.0).sqrt();
        assert!(v.iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn same_seed_same_init() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(42);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(42);
        let a = xavier_matrix(&mut r1, 4, 3);
        let b = xavier_matrix(&mut r2, 4, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn shapes_are_correct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = he_matrix(&mut rng, 5, 7);
        assert_eq!((m.rows(), m.cols()), (5, 7));
        let k = he_conv(&mut rng, 8, 3, 5, 5);
        assert_eq!(k.shape(), (8, 3, 5, 5));
    }
}
