//! Row-major 2-D matrices used by fully-connected layers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{kernels, Vector};

/// A dense row-major matrix of `f32` values.
///
/// Used by the model zoo for fully-connected layers: forward passes are
/// `W·x + b` ([`Matrix::matvec`]) and backward passes need the transposed
/// product ([`Matrix::matvec_transposed`]) and outer-product gradient
/// accumulation ([`Matrix::add_outer`]).
///
/// # Example
///
/// ```
/// use hieradmo_tensor::{Matrix, Vector};
///
/// let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let x = Vector::from(vec![1.0, 1.0]);
/// assert_eq!(m.matvec(&x).as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let xs = x.as_slice();
        (0..self.rows)
            .map(|r| kernels::dot(&self.data[r * self.cols..(r + 1) * self.cols], xs))
            .collect()
    }

    /// Transposed matrix-vector product `selfᵀ · y` (backprop through a
    /// linear layer).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn matvec_transposed(&self, y: &Vector) -> Vector {
        assert_eq!(y.len(), self.rows, "matvec_transposed dimension mismatch");
        let mut out = vec![0.0f32; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            kernels::axpy(&mut out, yr, &self.data[r * self.cols..(r + 1) * self.cols]);
        }
        Vector::from(out)
    }

    /// Accumulates the outer product `self += alpha · y xᵀ` — the weight
    /// gradient of a linear layer given upstream gradient `y` and input `x`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows` or `x.len() != cols`.
    pub fn add_outer(&mut self, alpha: f32, y: &Vector, x: &Vector) {
        assert_eq!(y.len(), self.rows, "add_outer row mismatch");
        assert_eq!(x.len(), self.cols, "add_outer col mismatch");
        for (r, &yr) in y.iter().enumerate() {
            let coeff = alpha * yr;
            if coeff == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            kernels::axpy(row, coeff, x.as_slice());
        }
    }

    /// Matrix product `self · other`.
    ///
    /// Internally transposes `other` once and runs the blocked kernel
    /// ([`Matrix::matmul_transposed_into`]), so both operands stream
    /// through cache contiguously. Allocation-sensitive callers should hold
    /// the scratch/output buffers themselves and use
    /// [`Matrix::matmul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut bt = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut bt, &mut out);
        out
    }

    /// Matrix product `self · other` written into `out`, with `bt` reused
    /// as the transposed-`other` scratch buffer.
    ///
    /// After the first call at a given shape, subsequent calls perform zero
    /// heap allocation: both `bt` and `out` are resized in place and their
    /// storage is recycled.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, bt: &mut Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        other.transpose_into(bt);
        self.matmul_transposed_into(bt, out);
    }

    /// Blocked, register-tiled product `self · btᵀ` where `bt` is already
    /// the transpose of the right-hand operand
    /// ([`kernels::matmul_bt`]).
    ///
    /// The kernel tiles the `(row, col)` output space 32×32 so a block of
    /// `self` rows is reused against a block of `bt` rows while both are
    /// hot in cache, and computes 2×2 output micro-tiles together, each
    /// element carrying eight independent lane accumulators
    /// ([`kernels::LANES`]). Each element's summation therefore runs as
    /// eight strided partial sums over `k` plus a serial tail, combined by
    /// a fixed balanced tree — **not** the naive left-to-right order, so
    /// results agree with the textbook triple loop only within `f32`
    /// rounding (reference tests use a relative tolerance). The order is a
    /// pure function of the shapes: the same operands give bitwise
    /// identical results on every call, every thread, every run of the
    /// same build, and every element is bitwise equal to
    /// [`kernels::dot`] of its row pair regardless of tiling.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions differ (`self.cols != bt.cols`).
    pub fn matmul_transposed_into(&self, bt: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, bt.cols,
            "matmul_transposed dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, bt.rows, bt.cols
        );
        let (n, m, kk) = (self.rows, bt.rows, self.cols);
        out.reshape(n, m);
        kernels::matmul_bt(&self.data, &bt.data, &mut out.data, n, m, kk);
    }

    /// Returns the transpose of `self`.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_into(&mut out);
        out
    }

    /// Writes the transpose of `self` into `out`, recycling its storage.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reshape(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }

    /// Resizes to `rows × cols` reusing the existing allocation; contents
    /// afterwards are unspecified (every element is overwritten by callers).
    fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let id = Matrix::from_rows(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let x = Vector::from(vec![5.0, -2.0]);
        assert_eq!(id.matvec(&x).as_slice(), x.as_slice());
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = Vector::from(vec![1.0, -1.0]);
        let via_method = m.matvec_transposed(&y);
        let via_transpose = m.transposed().matvec(&y);
        assert_eq!(via_method.as_slice(), via_transpose.as_slice());
    }

    #[test]
    fn add_outer_is_rank_one_update() {
        let mut m = Matrix::zeros(2, 2);
        let y = Vector::from(vec![1.0, 2.0]);
        let x = Vector::from(vec![3.0, 4.0]);
        m.add_outer(1.0, &y, &x);
        assert_eq!(m.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Naive triple-loop reference: `out[r][c] = Σ_k a[r][k]·b[k][c]`,
    /// increasing `k`, one accumulator per element.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for c in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.at(r, k) * b.at(k, c);
                }
                *out.at_mut(r, c) = acc;
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_matches_naive_within_tolerance() {
        // Shapes straddling the 32-wide block boundary on every axis. The
        // multi-accumulator kernel reorders each element's summation, so
        // the naive oracle is matched within f32 rounding, not bitwise.
        let (n, k, m) = (37, 41, 35);
        let a = Matrix::from_rows(
            n,
            k,
            (0..n * k)
                .map(|i| ((i * 37 % 97) as f32 - 48.0) / 7.0)
                .collect(),
        );
        let b = Matrix::from_rows(
            k,
            m,
            (0..k * m)
                .map(|i| ((i * 53 % 89) as f32 - 44.0) / 9.0)
                .collect(),
        );
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        for (f, s) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((f - s).abs() <= 1e-4 * (1.0 + s.abs()), "{f} vs {s}");
        }
        // Same input, same bits: the kernel's order is fixed per shape.
        assert_eq!(fast.as_slice(), a.matmul(&b).as_slice());
    }

    #[test]
    fn matmul_into_recycles_buffers() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut bt = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut bt, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Second call at the same shape reuses the buffers and agrees
        // bitwise with the first (identical kernel, identical order).
        a.matmul_into(&b, &mut bt, &mut out);
        assert_eq!(out, a.matmul(&b));
        assert_eq!(bt, b.transposed());
        for (f, s) in out.as_slice().iter().zip(naive_matmul(&a, &b).as_slice()) {
            assert!((f - s).abs() <= 1e-4 * (1.0 + s.abs()), "{f} vs {s}");
        }
    }

    #[test]
    fn transpose_into_overwrites_stale_contents() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = Matrix::from_rows(1, 2, vec![9.0, 9.0]);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transposed());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(2, 1), m.at(1, 2));
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 2);
        *m.at_mut(1, 0) = 7.0;
        assert_eq!(m.at(1, 0), 7.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
    }
}
