//! Multi-lane compute kernels for the training hot path.
//!
//! Every HierAdMo run spends almost all of its wall-clock in a handful of
//! `f32` primitives: the dense products behind `loss_and_grad_into`, the
//! im2col convolution path, and the BLAS-1 vector ops that implement the
//! worker-NAG step (Algorithm 1 lines 5–6) and the edge/cloud aggregations
//! (lines 11–13, 18–23). The naive forms of these loops are single
//! serial FMA dependency chains — one accumulator per output — which caps
//! throughput at one multiply-add per FMA latency. The kernels here break
//! that chain into [`LANES`] *independent* accumulators over
//! `chunks_exact(LANES)` so the autovectorizer can keep every SIMD lane and
//! execution port busy, on stable Rust with no intrinsics.
//!
//! # Determinism contract
//!
//! Each kernel uses a **fixed summation order** that depends only on the
//! input lengths — never on thread count, alignment, or runtime CPU
//! detection — so results are bitwise reproducible run-to-run on the same
//! build. The order is *not* the naive left-to-right order: a reduction
//! over `n` elements is split into `LANES` strided partial sums plus a
//! serial tail, then combined by a fixed balanced tree (see
//! `reduce_lanes`). Reference tests therefore compare against naive
//! oracles within a relative tolerance instead of expecting bit equality,
//! while thread-count invariance (what `tests/parallel_determinism.rs`
//! pins) is untouched: the same kernel with the same input produces the
//! same bits no matter which thread runs it.
//!
//! The matmul micro-kernel ([`matmul_bt`]) computes every output element
//! with *exactly* the same per-element order as [`dot`], whether the
//! element lands in a full register tile or on a remainder edge, so
//! `matmul` results never depend on how the output space was tiled.
//!
//! # Batched aggregation kernels and runtime dispatch
//!
//! The K-worker aggregation path has its own kernel family
//! ([`weighted_sum_batch`], [`fused_aggregate_momentum`],
//! [`momentum_step`]) that treats workers as a batch dimension: one
//! coordinate-tiled pass over the `f64` accumulator instead of `K`
//! sequential sweeps, and the mean + momentum-lookahead finalize fused
//! into a single traversal. These kernels carry a stronger guarantee than
//! the tolerance-tested reductions above: they are **bitwise identical**
//! to the sequential compositions they replace, because they vectorize
//! across independent coordinates while keeping each coordinate's
//! operation sequence unchanged. They are also the only kernels with
//! explicit intrinsics: [`dispatch_level`] probes the CPU once per process
//! (overridable via `HIERADMO_KERNEL_DISPATCH=scalar|avx2`) and selects
//! AVX2 or the portable scalar oracle — both produce the same bits, the
//! property suite pins it, and the level is recorded in bench output.

/// Number of independent accumulator lanes per kernel.
///
/// Eight `f32` lanes fill two SSE registers or one AVX register, and give
/// the out-of-order core 8 independent FMA chains to overlap — enough to
/// hide the 4–5 cycle FMA latency on every x86-64 / aarch64 core we target.
pub const LANES: usize = 8;

/// Fused (or contracted) multiply-add `a * b + c`.
///
/// `f32::mul_add` is only an FMA *instruction* when the target has one
/// compiled in; on a baseline `x86-64` build (SSE2, no `+fma`) it lowers to
/// a `fmaf` libm call that is ~50× slower than `mulss`/`addss`. Gate on the
/// compile-time feature so the kernels are fast on every build. This makes
/// results differ between `+fma` and non-`fma` *builds* (single vs double
/// rounding) but stays bitwise deterministic within any one build.
#[inline(always)]
fn fma(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Fixed balanced-tree reduction of the lane accumulators:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// Shared by every reducing kernel so any two code paths that accumulate
/// the same lanes produce the same bits.
#[inline(always)]
fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Inner product `⟨a, b⟩` with [`LANES`] independent accumulators.
///
/// Summation order: element `i` of chunk `j` goes to lane `i`; lanes are
/// combined by `reduce_lanes`; the `len % LANES` tail is accumulated
/// serially and added last. Bitwise deterministic for a given input.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "kernels::dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            acc[l] = fma(ca[l], cb[l], acc[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail = fma(x, y, tail);
    }
    reduce_lanes(acc) + tail
}

/// Squared Euclidean norm `⟨a, a⟩` (same summation order as [`dot`]).
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// In-place scaled addition `y[i] += alpha * x[i]` (BLAS `axpy`).
///
/// Element-wise with no cross-element dependency, so the chunked form
/// exists purely to hand the autovectorizer a fixed-width inner loop.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "kernels::axpy length mismatch");
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (cy, cx) in (&mut yc).zip(&mut xc) {
        for l in 0..LANES {
            cy[l] = fma(alpha, cx[l], cy[l]);
        }
    }
    for (vy, &vx) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *vy = fma(alpha, vx, *vy);
    }
}

/// In-place scaling `x[i] *= alpha` (BLAS `scal`).
///
/// Purely elementwise, so a flat loop vectorizes without any lane
/// bookkeeping.
#[inline]
pub fn scal(x: &mut [f32], alpha: f32) {
    for v in x {
        *v *= alpha;
    }
}

/// Fused two-operand scale-add `out[i] = alpha * a[i] + beta * b[i]`.
///
/// This is the worker-NAG lookahead / `lerp` shape (`(1−t)·a + t·b`) and
/// the momentum-combination shape of Algorithm 1 in one pass.
///
/// # Panics
///
/// Panics if any length differs.
#[inline]
pub fn fused_scale_add(out: &mut [f32], alpha: f32, a: &[f32], beta: f32, b: &[f32]) {
    assert_eq!(
        out.len(),
        a.len(),
        "kernels::fused_scale_add length mismatch"
    );
    assert_eq!(
        out.len(),
        b.len(),
        "kernels::fused_scale_add length mismatch"
    );
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((co, ca), cb) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            co[l] = fma(alpha, ca[l], beta * cb[l]);
        }
    }
    for ((vo, &va), &vb) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *vo = fma(alpha, va, beta * vb);
    }
}

/// Weighted accumulation into an `f64` buffer: `acc[i] += w * v[i]`.
///
/// The aggregation primitive of Algorithm 1 (lines 11, 12, 18, 19) — the
/// data-size-weighted average keeps an `f64` accumulator per coordinate so
/// shard-count growth cannot lose worker contributions to `f32` rounding.
///
/// Unlike the reduction kernels this is purely elementwise — there is no
/// cross-iteration dependency chain to break — so a flat zip both
/// autovectorizes best and trivially preserves the per-coordinate
/// summation order.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn weighted_accumulate(acc: &mut [f64], w: f64, v: &[f32]) {
    assert_eq!(
        acc.len(),
        v.len(),
        "kernels::weighted_accumulate length mismatch"
    );
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += w * f64::from(x);
    }
}

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch
// ---------------------------------------------------------------------------

/// Instruction-set level the batched kernels dispatch to at runtime.
///
/// Selected **once** per process (see [`dispatch_level`]) so the choice can
/// never flip mid-run: a run either executes every batched reduction on the
/// AVX2 path or every one on the portable path. Both paths are bitwise
/// identical by construction (the vector lanes perform exactly the scalar
/// per-coordinate operation sequence), so the level is a pure performance
/// knob — determinism never depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchLevel {
    /// 256-bit AVX2 `f64` lanes (x86-64 only).
    Avx2,
    /// Portable scalar fallback — the always-available oracle.
    Scalar,
}

impl DispatchLevel {
    /// Stable lower-case name (`"avx2"` / `"scalar"`), recorded in bench
    /// output so BENCH_kernels.json numbers are attributable to a path.
    pub fn name(self) -> &'static str {
        match self {
            DispatchLevel::Avx2 => "avx2",
            DispatchLevel::Scalar => "scalar",
        }
    }
}

/// The process-wide dispatch level for the batched kernels.
///
/// Chosen on first call and cached: the `HIERADMO_KERNEL_DISPATCH`
/// environment variable (`"scalar"` or `"avx2"`) forces a path — CI uses
/// `scalar` to run the determinism suites on the fallback — otherwise the
/// CPU is probed for AVX2. Forcing `avx2` on a CPU without it panics
/// rather than silently executing unsupported instructions.
pub fn dispatch_level() -> DispatchLevel {
    static LEVEL: std::sync::OnceLock<DispatchLevel> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("HIERADMO_KERNEL_DISPATCH") {
        Ok(v) if v == "scalar" => DispatchLevel::Scalar,
        Ok(v) if v == "avx2" => {
            assert!(
                avx2_available(),
                "HIERADMO_KERNEL_DISPATCH=avx2 forced, but this CPU has no AVX2"
            );
            DispatchLevel::Avx2
        }
        Ok(v) => panic!("HIERADMO_KERNEL_DISPATCH must be `scalar` or `avx2`, got `{v}`"),
        Err(_) => {
            if avx2_available() {
                DispatchLevel::Avx2
            } else {
                DispatchLevel::Scalar
            }
        }
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Batched aggregation kernels
// ---------------------------------------------------------------------------

/// Coordinate-tile width for the batched reductions: 512 `f64` accumulators
/// (4 KiB) stay L1-resident while all `K` worker inputs stream through the
/// tile, cutting accumulator traffic from `K` round trips to one.
const COORD_TILE: usize = 512;

/// Batched weighted sum `acc[i] += Σₖ weights[k] · inputs[k][i]` — the
/// K-worker aggregation of Algorithm 1 (lines 11, 12, 18, 19) in **one
/// pass** over the accumulator instead of `K` sequential
/// [`weighted_accumulate`] calls.
///
/// The loop is coordinate-tiled (`COORD_TILE`) with `k` ascending inside
/// each tile, so every coordinate `i` receives its `K` additions in exactly
/// the order the sequential per-worker path applied them: the result is
/// **bitwise identical** to `K` calls of [`weighted_accumulate`] in input
/// order, on every build and both dispatch paths (`f64` multiply/add and
/// the `f32→f64` convert are exact IEEE operations with no contraction).
/// Splitting a batch into consecutive sub-batches is likewise bitwise
/// neutral.
///
/// Dispatches once per process to AVX2 or the scalar oracle
/// ([`weighted_sum_batch_scalar`]) — see [`dispatch_level`].
///
/// # Panics
///
/// Panics if `weights` and `inputs` differ in length or any input's length
/// differs from `acc`'s.
pub fn weighted_sum_batch(acc: &mut [f64], weights: &[f64], inputs: &[&[f32]]) {
    assert_eq!(
        weights.len(),
        inputs.len(),
        "kernels::weighted_sum_batch weight/input count mismatch"
    );
    for v in inputs {
        assert_eq!(
            acc.len(),
            v.len(),
            "kernels::weighted_sum_batch length mismatch"
        );
    }
    #[cfg(target_arch = "x86_64")]
    if dispatch_level() == DispatchLevel::Avx2 {
        // SAFETY: AVX2 presence was verified by `dispatch_level`.
        unsafe { weighted_sum_batch_avx2(acc, weights, inputs) };
        return;
    }
    weighted_sum_batch_scalar(acc, weights, inputs);
}

/// Portable oracle for [`weighted_sum_batch`]: identical tiling and
/// per-coordinate operation order, plain scalar arithmetic. Public so the
/// property suite can pin the dispatched path against it bitwise within a
/// single process.
pub fn weighted_sum_batch_scalar(acc: &mut [f64], weights: &[f64], inputs: &[&[f32]]) {
    let n = acc.len();
    for start in (0..n).step_by(COORD_TILE) {
        let end = (start + COORD_TILE).min(n);
        let tile = &mut acc[start..end];
        for (&w, v) in weights.iter().zip(inputs) {
            for (a, &x) in tile.iter_mut().zip(&v[start..end]) {
                *a += w * f64::from(x);
            }
        }
    }
}

/// Workers per register-resident block in [`weighted_sum_batch_avx2`]
/// when the fan-in is large. Small enough that the hardware prefetcher
/// tracks one stream per worker in the block; large enough to amortize
/// the accumulator load/store. Fan-ins of at most [`SMALL_FAN_IN`]
/// workers run as a single block — the accumulator makes exactly one
/// round trip and that few streams never strain the prefetcher.
#[cfg(target_arch = "x86_64")]
const WORKER_BLOCK: usize = 8;

/// Largest fan-in processed as one block in [`weighted_sum_batch_avx2`].
#[cfg(target_arch = "x86_64")]
const SMALL_FAN_IN: usize = 16;

/// AVX2 path for [`weighted_sum_batch`]: workers are processed in blocks
/// of [`WORKER_BLOCK`], and for each 16-coordinate strip the four `f64`
/// accumulator registers stay resident while the whole block is folded in
/// (`f32` quad → `cvtps_pd` → broadcast-weight `mul_pd` → `add_pd`). The
/// accumulator is loaded and stored once per block instead of once per
/// worker, which is what makes the batched kernel beat K sequential
/// [`weighted_accumulate`] passes.
///
/// Per coordinate the operation sequence is exactly the scalar
/// `acc += w * f64::from(x)` in ascending-`k` order — block boundaries
/// only change *where* the running sum lives (register vs memory), not
/// the order or rounding of any `f64` op — so the result is bitwise
/// identical to [`weighted_sum_batch_scalar`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn weighted_sum_batch_avx2(acc: &mut [f64], weights: &[f64], inputs: &[&[f32]]) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let k = weights.len();
    let strips = n / 16;
    let block_size = if k <= SMALL_FAN_IN {
        SMALL_FAN_IN
    } else {
        WORKER_BLOCK
    };
    for block in (0..k).step_by(block_size) {
        let block_end = (block + block_size).min(k);
        let ws = &weights[block..block_end];
        let vs = &inputs[block..block_end];
        let ap = acc.as_mut_ptr();
        for s in 0..strips {
            let i = s * 16;
            let mut a0 = _mm256_loadu_pd(ap.add(i));
            let mut a1 = _mm256_loadu_pd(ap.add(i + 4));
            let mut a2 = _mm256_loadu_pd(ap.add(i + 8));
            let mut a3 = _mm256_loadu_pd(ap.add(i + 12));
            for (&w, v) in ws.iter().zip(vs) {
                let wv = _mm256_set1_pd(w);
                let xp = v.as_ptr().add(i);
                // One worker stream advances 64 B (one line) per strip;
                // with many streams in flight the hardware prefetcher
                // loses track, so pull upcoming lines in explicitly
                // (distance clamped to stay in bounds).
                let ahead = (i + 128).min(v.len());
                _mm_prefetch::<_MM_HINT_T0>(v.as_ptr().add(ahead).cast());
                let x0 = _mm256_cvtps_pd(_mm_loadu_ps(xp));
                let x1 = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(4)));
                let x2 = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(8)));
                let x3 = _mm256_cvtps_pd(_mm_loadu_ps(xp.add(12)));
                a0 = _mm256_add_pd(a0, _mm256_mul_pd(wv, x0));
                a1 = _mm256_add_pd(a1, _mm256_mul_pd(wv, x1));
                a2 = _mm256_add_pd(a2, _mm256_mul_pd(wv, x2));
                a3 = _mm256_add_pd(a3, _mm256_mul_pd(wv, x3));
            }
            _mm256_storeu_pd(ap.add(i), a0);
            _mm256_storeu_pd(ap.add(i + 4), a1);
            _mm256_storeu_pd(ap.add(i + 8), a2);
            _mm256_storeu_pd(ap.add(i + 12), a3);
        }
        for i in strips * 16..n {
            let mut a = acc[i];
            for (&w, v) in ws.iter().zip(vs) {
                a += w * f64::from(v[i]);
            }
            acc[i] = a;
        }
    }
}

/// Fused finalize of the edge/cloud momentum sync (Eq. 6–7): one traversal
/// computing the data-weighted mean **and** the adaptive-momentum lookahead
/// that the unfused path spread over three passes
/// (`weighted_average` finalize → clone → subtract → `axpy`).
///
/// Per coordinate, with `m = (acc[i] / total) as f32`:
///
/// * `mean[i] = m` — the aggregated model `y⁺`;
/// * `looked[i] = fma(gamma, m − y_old[i], m)` — the momentum-accelerated
///   `x⁺ = y⁺ + γ·(y⁺ − y⁺_prev)`, using the same contraction-gated `fma`
///   as [`axpy`], so the result is bitwise identical to the unfused
///   composition on every build.
///
/// Dispatches like [`weighted_sum_batch`];
/// [`fused_aggregate_momentum_scalar`] is the oracle.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn fused_aggregate_momentum(
    acc: &[f64],
    total: f64,
    gamma: f32,
    y_old: &[f32],
    mean: &mut [f32],
    looked: &mut [f32],
) {
    assert_eq!(
        acc.len(),
        y_old.len(),
        "kernels::fused_aggregate_momentum length mismatch"
    );
    assert_eq!(
        acc.len(),
        mean.len(),
        "kernels::fused_aggregate_momentum length mismatch"
    );
    assert_eq!(
        acc.len(),
        looked.len(),
        "kernels::fused_aggregate_momentum length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if dispatch_level() == DispatchLevel::Avx2 {
        // SAFETY: AVX2 presence was verified by `dispatch_level`.
        unsafe { fused_aggregate_momentum_avx2(acc, total, gamma, y_old, mean, looked) };
        return;
    }
    fused_aggregate_momentum_scalar(acc, total, gamma, y_old, mean, looked);
}

/// Portable oracle for [`fused_aggregate_momentum`].
pub fn fused_aggregate_momentum_scalar(
    acc: &[f64],
    total: f64,
    gamma: f32,
    y_old: &[f32],
    mean: &mut [f32],
    looked: &mut [f32],
) {
    for i in 0..acc.len() {
        let m = (acc[i] / total) as f32;
        mean[i] = m;
        looked[i] = fma(gamma, m - y_old[i], m);
    }
}

/// AVX2 path for [`fused_aggregate_momentum`]: four coordinates per step.
/// The `f64` divide and `f64→f32` convert are exact-rounding, the `f32`
/// tail mirrors the [`fma`] contraction gate at vector width
/// (`fmadd_ps` only on `+fma` builds, separate `mul`/`add` otherwise), so
/// every lane reproduces the scalar bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fused_aggregate_momentum_avx2(
    acc: &[f64],
    total: f64,
    gamma: f32,
    y_old: &[f32],
    mean: &mut [f32],
    looked: &mut [f32],
) {
    use std::arch::x86_64::*;
    let n = acc.len();
    let tv = _mm256_set1_pd(total);
    let gv = _mm_set1_ps(gamma);
    let quads = n / 4;
    for q in 0..quads {
        let i = q * 4;
        let mv = _mm256_cvtpd_ps(_mm256_div_pd(_mm256_loadu_pd(acc.as_ptr().add(i)), tv));
        _mm_storeu_ps(mean.as_mut_ptr().add(i), mv);
        let dv = _mm_sub_ps(mv, _mm_loadu_ps(y_old.as_ptr().add(i)));
        #[cfg(target_feature = "fma")]
        let lv = _mm_fmadd_ps(gv, dv, mv);
        #[cfg(not(target_feature = "fma"))]
        let lv = _mm_add_ps(_mm_mul_ps(gv, dv), mv);
        _mm_storeu_ps(looked.as_mut_ptr().add(i), lv);
    }
    for i in quads * 4..n {
        let m = (acc[i] / total) as f32;
        mean[i] = m;
        looked[i] = fma(gamma, m - y_old[i], m);
    }
}

/// Momentum lookahead `looked[i] = fma(gamma, mean[i] − y_old[i], mean[i])`
/// from an already-materialised mean — the Eq. 7 step when a robust
/// (non-mean) aggregation rule produced `mean` and there is no `f64`
/// accumulator to fuse with. Bitwise identical to the historical
/// clone → subtract → [`axpy`] composition (same contraction-gated `fma`
/// per element).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn momentum_step(looked: &mut [f32], gamma: f32, mean: &[f32], y_old: &[f32]) {
    assert_eq!(
        looked.len(),
        mean.len(),
        "kernels::momentum_step length mismatch"
    );
    assert_eq!(
        looked.len(),
        y_old.len(),
        "kernels::momentum_step length mismatch"
    );
    for i in 0..looked.len() {
        looked[i] = fma(gamma, mean[i] - y_old[i], mean[i]);
    }
}

/// Output-tile edge for [`matmul_bt`]: tiles of A-rows and Bᵀ-rows stay
/// resident in L1/L2 across the tile's inner products.
const BLOCK: usize = 32;

/// Register micro-tile: 2 A-rows × 2 Bᵀ-rows computed together, each
/// output carrying its own [`LANES`]-wide accumulator (4·8 = 32 live
/// `f32` accumulators — eight SSE / four AVX registers), so every loaded
/// `a` and `b` chunk is reused twice.
const TILE: usize = 2;

/// Blocked, register-tiled product `out = a · btᵀ` on raw row-major
/// slices, where `bt` is already the transpose of the right-hand operand.
///
/// * `a` is `n × k` row-major, `bt` is `m × k` row-major, `out` is
///   `n × m` row-major and fully overwritten.
/// * The `(row, col)` output space is tiled `BLOCK`² for cache reuse and
///   `TILE`² for register reuse; every output element's own summation
///   order is identical to [`dot`] regardless of which tile computed it.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn matmul_bt(a: &[f32], bt: &[f32], out: &mut [f32], n: usize, m: usize, k: usize) {
    assert_eq!(a.len(), n * k, "kernels::matmul_bt lhs size mismatch");
    assert_eq!(bt.len(), m * k, "kernels::matmul_bt rhs size mismatch");
    assert_eq!(out.len(), n * m, "kernels::matmul_bt out size mismatch");
    for r0 in (0..n).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(n);
        for c0 in (0..m).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(m);
            // 2×2 register micro-tiles over the cache block.
            let mut r = r0;
            while r + TILE <= r1 {
                let mut c = c0;
                while c + TILE <= c1 {
                    micro_2x2(a, bt, out, m, k, r, c);
                    c += TILE;
                }
                // Remainder column(s) of this row pair.
                for rr in r..r + TILE {
                    for cc in c..c1 {
                        out[rr * m + cc] = dot(&a[rr * k..(rr + 1) * k], &bt[cc * k..(cc + 1) * k]);
                    }
                }
                r += TILE;
            }
            // Remainder row(s) of this block.
            for rr in r..r1 {
                for cc in c0..c1 {
                    out[rr * m + cc] = dot(&a[rr * k..(rr + 1) * k], &bt[cc * k..(cc + 1) * k]);
                }
            }
        }
    }
}

/// The 2×2 micro-kernel: four inner products over `k` advance in lock-step
/// so each `a`/`bt` chunk loaded from L1 feeds two accumulator sets.
///
/// Per output element this performs exactly the [`dot`] recurrence (same
/// lane assignment, same `reduce_lanes` tree, same serial tail), so the
/// result is bitwise identical to calling [`dot`] on that row pair.
#[inline(always)]
fn micro_2x2(a: &[f32], bt: &[f32], out: &mut [f32], m: usize, k: usize, r: usize, c: usize) {
    let a0 = &a[r * k..(r + 1) * k];
    let a1 = &a[(r + 1) * k..(r + 2) * k];
    let b0 = &bt[c * k..(c + 1) * k];
    let b1 = &bt[(c + 1) * k..(c + 2) * k];

    let mut acc00 = [0.0f32; LANES];
    let mut acc01 = [0.0f32; LANES];
    let mut acc10 = [0.0f32; LANES];
    let mut acc11 = [0.0f32; LANES];

    let mut a0c = a0.chunks_exact(LANES);
    let mut a1c = a1.chunks_exact(LANES);
    let mut b0c = b0.chunks_exact(LANES);
    let mut b1c = b1.chunks_exact(LANES);
    for (((c_a0, c_a1), c_b0), c_b1) in (&mut a0c).zip(&mut a1c).zip(&mut b0c).zip(&mut b1c) {
        for l in 0..LANES {
            acc00[l] = fma(c_a0[l], c_b0[l], acc00[l]);
            acc01[l] = fma(c_a0[l], c_b1[l], acc01[l]);
            acc10[l] = fma(c_a1[l], c_b0[l], acc10[l]);
            acc11[l] = fma(c_a1[l], c_b1[l], acc11[l]);
        }
    }
    let (mut t00, mut t01, mut t10, mut t11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (((&x0, &x1), &y0), &y1) in a0c
        .remainder()
        .iter()
        .zip(a1c.remainder())
        .zip(b0c.remainder())
        .zip(b1c.remainder())
    {
        t00 = fma(x0, y0, t00);
        t01 = fma(x0, y1, t01);
        t10 = fma(x1, y0, t10);
        t11 = fma(x1, y1, t11);
    }
    out[r * m + c] = reduce_lanes(acc00) + t00;
    out[r * m + c + 1] = reduce_lanes(acc01) + t01;
    out[(r + 1) * m + c] = reduce_lanes(acc10) + t10;
    out[(r + 1) * m + c + 1] = reduce_lanes(acc11) + t11;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32).mul_add(scale, shift).sin())
            .collect()
    }

    #[test]
    fn dot_matches_naive_within_tolerance() {
        for n in [0, 1, 7, 8, 9, 64, 100] {
            let a = seq(n, 0.3, 0.1);
            let b = seq(n, 0.7, -0.2);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot(&a, &b);
            assert!(
                (fast - naive).abs() <= 1e-4 * (1.0 + naive.abs()),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_is_bitwise_reproducible() {
        let a = seq(1000, 0.13, 0.4);
        let b = seq(1000, 0.91, -0.7);
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_scal_elementwise() {
        for n in [3, 8, 17] {
            let x = seq(n, 0.5, 0.0);
            let mut y = seq(n, 0.2, 1.0);
            let expect: Vec<f32> = y.iter().zip(&x).map(|(v, u)| v + 2.5 * u).collect();
            axpy(&mut y, 2.5, &x);
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "{got} vs {want}");
            }
            scal(&mut y, 0.5);
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - 0.5 * want).abs() <= 1e-5);
            }
        }
    }

    #[test]
    fn fused_scale_add_matches_lerp_form() {
        let a = seq(11, 0.4, 0.2);
        let b = seq(11, 0.8, -0.1);
        let mut out = vec![0.0f32; 11];
        fused_scale_add(&mut out, 0.75, &a, 0.25, &b);
        for i in 0..11 {
            let want = 0.75 * a[i] + 0.25 * b[i];
            assert!((out[i] - want).abs() <= 1e-5);
        }
    }

    #[test]
    fn weighted_accumulate_matches_naive() {
        let v = seq(19, 0.6, 0.3);
        let mut acc = vec![1.0f64; 19];
        weighted_accumulate(&mut acc, 0.25, &v);
        for i in 0..19 {
            let want = 1.0 + 0.25 * f64::from(v[i]);
            assert!((acc[i] - want).abs() <= 1e-12);
        }
    }

    fn batch_fixture(k: usize, n: usize) -> (Vec<f64>, Vec<Vec<f32>>) {
        let weights: Vec<f64> = (0..k).map(|i| 0.5 + i as f64 * 0.75).collect();
        let inputs: Vec<Vec<f32>> = (0..k)
            .map(|i| seq(n, 0.17 + i as f32 * 0.03, -0.4 + i as f32 * 0.11))
            .collect();
        (weights, inputs)
    }

    #[test]
    fn weighted_sum_batch_is_bitwise_equal_to_sequential_accumulates() {
        for (k, n) in [(1, 7), (3, 64), (5, 513), (16, 1037)] {
            let (weights, inputs) = batch_fixture(k, n);
            let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
            let mut batched = vec![0.125f64; n];
            weighted_sum_batch(&mut batched, &weights, &views);
            let mut sequential = vec![0.125f64; n];
            for (&w, v) in weights.iter().zip(&views) {
                weighted_accumulate(&mut sequential, w, v);
            }
            for i in 0..n {
                assert_eq!(
                    batched[i].to_bits(),
                    sequential[i].to_bits(),
                    "coord {i} of {k}x{n}"
                );
            }
        }
    }

    #[test]
    fn weighted_sum_batch_dispatch_matches_scalar_oracle_bitwise() {
        let (weights, inputs) = batch_fixture(6, 1031);
        let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut dispatched = vec![0.0f64; 1031];
        weighted_sum_batch(&mut dispatched, &weights, &views);
        let mut oracle = vec![0.0f64; 1031];
        weighted_sum_batch_scalar(&mut oracle, &weights, &views);
        for i in 0..1031 {
            assert_eq!(dispatched[i].to_bits(), oracle[i].to_bits(), "coord {i}");
        }
    }

    #[test]
    fn weighted_sum_batch_splits_are_bitwise_neutral() {
        let (weights, inputs) = batch_fixture(9, 300);
        let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut whole = vec![0.0f64; 300];
        weighted_sum_batch(&mut whole, &weights, &views);
        let mut split = vec![0.0f64; 300];
        weighted_sum_batch(&mut split, &weights[..4], &views[..4]);
        weighted_sum_batch(&mut split, &weights[4..], &views[4..]);
        for i in 0..300 {
            assert_eq!(whole[i].to_bits(), split[i].to_bits(), "coord {i}");
        }
    }

    #[test]
    #[should_panic(expected = "weighted_sum_batch length mismatch")]
    fn weighted_sum_batch_length_mismatch_panics() {
        let v = [1.0f32, 2.0];
        let mut acc = [0.0f64; 3];
        weighted_sum_batch(&mut acc, &[1.0], &[&v]);
    }

    #[test]
    fn fused_aggregate_momentum_matches_unfused_composition_bitwise() {
        for n in [1, 4, 9, 513] {
            let (weights, inputs) = batch_fixture(4, n);
            let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
            let mut acc = vec![0.0f64; n];
            weighted_sum_batch(&mut acc, &weights, &views);
            let total: f64 = weights.iter().sum();
            let y_old = seq(n, 0.41, 0.09);
            let gamma = 0.625f32;

            // Historical composition: finalize, clone, subtract, axpy.
            let mean_ref: Vec<f32> = acc.iter().map(|&a| (a / total) as f32).collect();
            let mut looked_ref = mean_ref.clone();
            let delta: Vec<f32> = mean_ref.iter().zip(&y_old).map(|(m, y)| m - y).collect();
            axpy(&mut looked_ref, gamma, &delta);

            let mut mean = vec![0.0f32; n];
            let mut looked = vec![0.0f32; n];
            fused_aggregate_momentum(&acc, total, gamma, &y_old, &mut mean, &mut looked);
            for i in 0..n {
                assert_eq!(mean[i].to_bits(), mean_ref[i].to_bits(), "mean {i} of {n}");
                assert_eq!(
                    looked[i].to_bits(),
                    looked_ref[i].to_bits(),
                    "looked {i} of {n}"
                );
            }

            let mut mean_s = vec![0.0f32; n];
            let mut looked_s = vec![0.0f32; n];
            fused_aggregate_momentum_scalar(&acc, total, gamma, &y_old, &mut mean_s, &mut looked_s);
            for i in 0..n {
                assert_eq!(mean[i].to_bits(), mean_s[i].to_bits(), "oracle mean {i}");
                assert_eq!(
                    looked[i].to_bits(),
                    looked_s[i].to_bits(),
                    "oracle looked {i}"
                );
            }
        }
    }

    #[test]
    fn momentum_step_matches_clone_sub_axpy_bitwise() {
        let mean = seq(77, 0.23, 0.5);
        let y_old = seq(77, 0.61, -0.2);
        let mut want = mean.clone();
        let delta: Vec<f32> = mean.iter().zip(&y_old).map(|(m, y)| m - y).collect();
        axpy(&mut want, 0.375, &delta);
        let mut got = vec![0.0f32; 77];
        momentum_step(&mut got, 0.375, &mean, &y_old);
        for i in 0..77 {
            assert_eq!(got[i].to_bits(), want[i].to_bits(), "coord {i}");
        }
    }

    #[test]
    fn dispatch_level_is_stable_and_named() {
        let level = dispatch_level();
        assert_eq!(level, dispatch_level());
        assert!(matches!(level.name(), "avx2" | "scalar"));
    }

    #[test]
    fn matmul_bt_elements_are_bitwise_equal_to_dot() {
        // Shapes exercising full 2×2 tiles, row/col remainders, and block
        // edges; every element must match a direct `dot` of its row pair.
        for (n, m, k) in [(1, 1, 1), (2, 2, 8), (5, 3, 17), (33, 35, 41), (64, 64, 64)] {
            let a = seq(n * k, 0.21, 0.05);
            let bt = seq(m * k, 0.37, -0.11);
            let mut out = vec![0.0f32; n * m];
            matmul_bt(&a, &bt, &mut out, n, m, k);
            for r in 0..n {
                for c in 0..m {
                    let want = dot(&a[r * k..(r + 1) * k], &bt[c * k..(c + 1) * k]);
                    assert_eq!(
                        out[r * m + c].to_bits(),
                        want.to_bits(),
                        "({r},{c}) of {n}x{m}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_bt_handles_empty_inner_dim() {
        let mut out = vec![7.0f32; 6];
        matmul_bt(&[], &[], &mut out, 2, 3, 0);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
