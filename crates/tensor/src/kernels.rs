//! Multi-lane compute kernels for the training hot path.
//!
//! Every HierAdMo run spends almost all of its wall-clock in a handful of
//! `f32` primitives: the dense products behind `loss_and_grad_into`, the
//! im2col convolution path, and the BLAS-1 vector ops that implement the
//! worker-NAG step (Algorithm 1 lines 5–6) and the edge/cloud aggregations
//! (lines 11–13, 18–23). The naive forms of these loops are single
//! serial FMA dependency chains — one accumulator per output — which caps
//! throughput at one multiply-add per FMA latency. The kernels here break
//! that chain into [`LANES`] *independent* accumulators over
//! `chunks_exact(LANES)` so the autovectorizer can keep every SIMD lane and
//! execution port busy, on stable Rust with no intrinsics.
//!
//! # Determinism contract
//!
//! Each kernel uses a **fixed summation order** that depends only on the
//! input lengths — never on thread count, alignment, or runtime CPU
//! detection — so results are bitwise reproducible run-to-run on the same
//! build. The order is *not* the naive left-to-right order: a reduction
//! over `n` elements is split into `LANES` strided partial sums plus a
//! serial tail, then combined by a fixed balanced tree (see
//! `reduce_lanes`). Reference tests therefore compare against naive
//! oracles within a relative tolerance instead of expecting bit equality,
//! while thread-count invariance (what `tests/parallel_determinism.rs`
//! pins) is untouched: the same kernel with the same input produces the
//! same bits no matter which thread runs it.
//!
//! The matmul micro-kernel ([`matmul_bt`]) computes every output element
//! with *exactly* the same per-element order as [`dot`], whether the
//! element lands in a full register tile or on a remainder edge, so
//! `matmul` results never depend on how the output space was tiled.

/// Number of independent accumulator lanes per kernel.
///
/// Eight `f32` lanes fill two SSE registers or one AVX register, and give
/// the out-of-order core 8 independent FMA chains to overlap — enough to
/// hide the 4–5 cycle FMA latency on every x86-64 / aarch64 core we target.
pub const LANES: usize = 8;

/// Fused (or contracted) multiply-add `a * b + c`.
///
/// `f32::mul_add` is only an FMA *instruction* when the target has one
/// compiled in; on a baseline `x86-64` build (SSE2, no `+fma`) it lowers to
/// a `fmaf` libm call that is ~50× slower than `mulss`/`addss`. Gate on the
/// compile-time feature so the kernels are fast on every build. This makes
/// results differ between `+fma` and non-`fma` *builds* (single vs double
/// rounding) but stays bitwise deterministic within any one build.
#[inline(always)]
fn fma(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Fixed balanced-tree reduction of the lane accumulators:
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
///
/// Shared by every reducing kernel so any two code paths that accumulate
/// the same lanes produce the same bits.
#[inline(always)]
fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Inner product `⟨a, b⟩` with [`LANES`] independent accumulators.
///
/// Summation order: element `i` of chunk `j` goes to lane `i`; lanes are
/// combined by `reduce_lanes`; the `len % LANES` tail is accumulated
/// serially and added last. Bitwise deterministic for a given input.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "kernels::dot length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            acc[l] = fma(ca[l], cb[l], acc[l]);
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail = fma(x, y, tail);
    }
    reduce_lanes(acc) + tail
}

/// Squared Euclidean norm `⟨a, a⟩` (same summation order as [`dot`]).
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// In-place scaled addition `y[i] += alpha * x[i]` (BLAS `axpy`).
///
/// Element-wise with no cross-element dependency, so the chunked form
/// exists purely to hand the autovectorizer a fixed-width inner loop.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "kernels::axpy length mismatch");
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (cy, cx) in (&mut yc).zip(&mut xc) {
        for l in 0..LANES {
            cy[l] = fma(alpha, cx[l], cy[l]);
        }
    }
    for (vy, &vx) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *vy = fma(alpha, vx, *vy);
    }
}

/// In-place scaling `x[i] *= alpha` (BLAS `scal`).
///
/// Purely elementwise, so a flat loop vectorizes without any lane
/// bookkeeping.
#[inline]
pub fn scal(x: &mut [f32], alpha: f32) {
    for v in x {
        *v *= alpha;
    }
}

/// Fused two-operand scale-add `out[i] = alpha * a[i] + beta * b[i]`.
///
/// This is the worker-NAG lookahead / `lerp` shape (`(1−t)·a + t·b`) and
/// the momentum-combination shape of Algorithm 1 in one pass.
///
/// # Panics
///
/// Panics if any length differs.
#[inline]
pub fn fused_scale_add(out: &mut [f32], alpha: f32, a: &[f32], beta: f32, b: &[f32]) {
    assert_eq!(
        out.len(),
        a.len(),
        "kernels::fused_scale_add length mismatch"
    );
    assert_eq!(
        out.len(),
        b.len(),
        "kernels::fused_scale_add length mismatch"
    );
    let mut oc = out.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((co, ca), cb) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        for l in 0..LANES {
            co[l] = fma(alpha, ca[l], beta * cb[l]);
        }
    }
    for ((vo, &va), &vb) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *vo = fma(alpha, va, beta * vb);
    }
}

/// Weighted accumulation into an `f64` buffer: `acc[i] += w * v[i]`.
///
/// The aggregation primitive of Algorithm 1 (lines 11, 12, 18, 19) — the
/// data-size-weighted average keeps an `f64` accumulator per coordinate so
/// shard-count growth cannot lose worker contributions to `f32` rounding.
///
/// Unlike the reduction kernels this is purely elementwise — there is no
/// cross-iteration dependency chain to break — so a flat zip both
/// autovectorizes best and trivially preserves the per-coordinate
/// summation order.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn weighted_accumulate(acc: &mut [f64], w: f64, v: &[f32]) {
    assert_eq!(
        acc.len(),
        v.len(),
        "kernels::weighted_accumulate length mismatch"
    );
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += w * f64::from(x);
    }
}

/// Output-tile edge for [`matmul_bt`]: tiles of A-rows and Bᵀ-rows stay
/// resident in L1/L2 across the tile's inner products.
const BLOCK: usize = 32;

/// Register micro-tile: 2 A-rows × 2 Bᵀ-rows computed together, each
/// output carrying its own [`LANES`]-wide accumulator (4·8 = 32 live
/// `f32` accumulators — eight SSE / four AVX registers), so every loaded
/// `a` and `b` chunk is reused twice.
const TILE: usize = 2;

/// Blocked, register-tiled product `out = a · btᵀ` on raw row-major
/// slices, where `bt` is already the transpose of the right-hand operand.
///
/// * `a` is `n × k` row-major, `bt` is `m × k` row-major, `out` is
///   `n × m` row-major and fully overwritten.
/// * The `(row, col)` output space is tiled `BLOCK`² for cache reuse and
///   `TILE`² for register reuse; every output element's own summation
///   order is identical to [`dot`] regardless of which tile computed it.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn matmul_bt(a: &[f32], bt: &[f32], out: &mut [f32], n: usize, m: usize, k: usize) {
    assert_eq!(a.len(), n * k, "kernels::matmul_bt lhs size mismatch");
    assert_eq!(bt.len(), m * k, "kernels::matmul_bt rhs size mismatch");
    assert_eq!(out.len(), n * m, "kernels::matmul_bt out size mismatch");
    for r0 in (0..n).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(n);
        for c0 in (0..m).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(m);
            // 2×2 register micro-tiles over the cache block.
            let mut r = r0;
            while r + TILE <= r1 {
                let mut c = c0;
                while c + TILE <= c1 {
                    micro_2x2(a, bt, out, m, k, r, c);
                    c += TILE;
                }
                // Remainder column(s) of this row pair.
                for rr in r..r + TILE {
                    for cc in c..c1 {
                        out[rr * m + cc] = dot(&a[rr * k..(rr + 1) * k], &bt[cc * k..(cc + 1) * k]);
                    }
                }
                r += TILE;
            }
            // Remainder row(s) of this block.
            for rr in r..r1 {
                for cc in c0..c1 {
                    out[rr * m + cc] = dot(&a[rr * k..(rr + 1) * k], &bt[cc * k..(cc + 1) * k]);
                }
            }
        }
    }
}

/// The 2×2 micro-kernel: four inner products over `k` advance in lock-step
/// so each `a`/`bt` chunk loaded from L1 feeds two accumulator sets.
///
/// Per output element this performs exactly the [`dot`] recurrence (same
/// lane assignment, same `reduce_lanes` tree, same serial tail), so the
/// result is bitwise identical to calling [`dot`] on that row pair.
#[inline(always)]
fn micro_2x2(a: &[f32], bt: &[f32], out: &mut [f32], m: usize, k: usize, r: usize, c: usize) {
    let a0 = &a[r * k..(r + 1) * k];
    let a1 = &a[(r + 1) * k..(r + 2) * k];
    let b0 = &bt[c * k..(c + 1) * k];
    let b1 = &bt[(c + 1) * k..(c + 2) * k];

    let mut acc00 = [0.0f32; LANES];
    let mut acc01 = [0.0f32; LANES];
    let mut acc10 = [0.0f32; LANES];
    let mut acc11 = [0.0f32; LANES];

    let mut a0c = a0.chunks_exact(LANES);
    let mut a1c = a1.chunks_exact(LANES);
    let mut b0c = b0.chunks_exact(LANES);
    let mut b1c = b1.chunks_exact(LANES);
    for (((c_a0, c_a1), c_b0), c_b1) in (&mut a0c).zip(&mut a1c).zip(&mut b0c).zip(&mut b1c) {
        for l in 0..LANES {
            acc00[l] = fma(c_a0[l], c_b0[l], acc00[l]);
            acc01[l] = fma(c_a0[l], c_b1[l], acc01[l]);
            acc10[l] = fma(c_a1[l], c_b0[l], acc10[l]);
            acc11[l] = fma(c_a1[l], c_b1[l], acc11[l]);
        }
    }
    let (mut t00, mut t01, mut t10, mut t11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (((&x0, &x1), &y0), &y1) in a0c
        .remainder()
        .iter()
        .zip(a1c.remainder())
        .zip(b0c.remainder())
        .zip(b1c.remainder())
    {
        t00 = fma(x0, y0, t00);
        t01 = fma(x0, y1, t01);
        t10 = fma(x1, y0, t10);
        t11 = fma(x1, y1, t11);
    }
    out[r * m + c] = reduce_lanes(acc00) + t00;
    out[r * m + c + 1] = reduce_lanes(acc01) + t01;
    out[(r + 1) * m + c] = reduce_lanes(acc10) + t10;
    out[(r + 1) * m + c + 1] = reduce_lanes(acc11) + t11;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32).mul_add(scale, shift).sin())
            .collect()
    }

    #[test]
    fn dot_matches_naive_within_tolerance() {
        for n in [0, 1, 7, 8, 9, 64, 100] {
            let a = seq(n, 0.3, 0.1);
            let b = seq(n, 0.7, -0.2);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let fast = dot(&a, &b);
            assert!(
                (fast - naive).abs() <= 1e-4 * (1.0 + naive.abs()),
                "n={n}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_is_bitwise_reproducible() {
        let a = seq(1000, 0.13, 0.4);
        let b = seq(1000, 0.91, -0.7);
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_and_scal_elementwise() {
        for n in [3, 8, 17] {
            let x = seq(n, 0.5, 0.0);
            let mut y = seq(n, 0.2, 1.0);
            let expect: Vec<f32> = y.iter().zip(&x).map(|(v, u)| v + 2.5 * u).collect();
            axpy(&mut y, 2.5, &x);
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-5, "{got} vs {want}");
            }
            scal(&mut y, 0.5);
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - 0.5 * want).abs() <= 1e-5);
            }
        }
    }

    #[test]
    fn fused_scale_add_matches_lerp_form() {
        let a = seq(11, 0.4, 0.2);
        let b = seq(11, 0.8, -0.1);
        let mut out = vec![0.0f32; 11];
        fused_scale_add(&mut out, 0.75, &a, 0.25, &b);
        for i in 0..11 {
            let want = 0.75 * a[i] + 0.25 * b[i];
            assert!((out[i] - want).abs() <= 1e-5);
        }
    }

    #[test]
    fn weighted_accumulate_matches_naive() {
        let v = seq(19, 0.6, 0.3);
        let mut acc = vec![1.0f64; 19];
        weighted_accumulate(&mut acc, 0.25, &v);
        for i in 0..19 {
            let want = 1.0 + 0.25 * f64::from(v[i]);
            assert!((acc[i] - want).abs() <= 1e-12);
        }
    }

    #[test]
    fn matmul_bt_elements_are_bitwise_equal_to_dot() {
        // Shapes exercising full 2×2 tiles, row/col remainders, and block
        // edges; every element must match a direct `dot` of its row pair.
        for (n, m, k) in [(1, 1, 1), (2, 2, 8), (5, 3, 17), (33, 35, 41), (64, 64, 64)] {
            let a = seq(n * k, 0.21, 0.05);
            let bt = seq(m * k, 0.37, -0.11);
            let mut out = vec![0.0f32; n * m];
            matmul_bt(&a, &bt, &mut out, n, m, k);
            for r in 0..n {
                for c in 0..m {
                    let want = dot(&a[r * k..(r + 1) * k], &bt[c * k..(c + 1) * k]);
                    assert_eq!(
                        out[r * m + c].to_bits(),
                        want.to_bits(),
                        "({r},{c}) of {n}x{m}x{k}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_bt_handles_empty_inner_dim() {
        let mut out = vec![7.0f32; 6];
        matmul_bt(&[], &[], &mut out, 2, 3, 0);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
