//! Activations and losses with their analytic derivatives.
//!
//! Everything the model zoo needs for exact (non-autodiff) backpropagation:
//! ReLU, sigmoid, softmax / log-softmax, cross-entropy and mean-squared-error
//! losses. All loss gradients are *with respect to the pre-activation
//! logits*, which is the form the layer backward passes consume.

use crate::Vector;

/// Element-wise ReLU, `max(0, x)`.
pub fn relu(x: &Vector) -> Vector {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// In-place ReLU.
pub fn relu_in_place(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward pass of ReLU: zeroes upstream gradient where the *input* was
/// non-positive.
///
/// # Panics
///
/// Panics if `input.len() != upstream.len()`.
pub fn relu_backward(input: &Vector, upstream: &Vector) -> Vector {
    assert_eq!(input.len(), upstream.len(), "relu_backward length mismatch");
    input
        .iter()
        .zip(upstream.iter())
        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
        .collect()
}

/// Element-wise logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(x: &Vector) -> Vector {
    x.iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect()
}

/// Numerically-stable softmax.
pub fn softmax(logits: &Vector) -> Vector {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically-stable log-softmax.
pub fn log_softmax(logits: &Vector) -> Vector {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&v| v - log_sum).collect()
}

/// Cross-entropy loss of one sample given raw logits and the true class.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn cross_entropy_loss(logits: &Vector, label: usize) -> f32 {
    assert!(label < logits.len(), "label {label} out of range");
    -log_softmax(logits)[label]
}

/// Gradient of the cross-entropy loss w.r.t. the logits:
/// `softmax(logits) - one_hot(label)`.
///
/// # Panics
///
/// Panics if `label >= logits.len()`.
pub fn cross_entropy_grad(logits: &Vector, label: usize) -> Vector {
    assert!(label < logits.len(), "label {label} out of range");
    let mut g = softmax(logits);
    g[label] -= 1.0;
    g
}

/// Mean-squared-error loss `0.5 ‖pred - target‖²` of one sample.
///
/// The `0.5` factor makes the gradient exactly `pred - target`, matching the
/// linear-regression formulation used in the paper's convex experiments.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn mse_loss(pred: &Vector, target: &Vector) -> f32 {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    0.5 * pred
        .iter()
        .zip(target.iter())
        .map(|(p, t)| {
            let d = p - t;
            d * d
        })
        .sum::<f32>()
}

/// Gradient of [`mse_loss`] w.r.t. the prediction: `pred - target`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn mse_grad(pred: &Vector, target: &Vector) -> Vector {
    pred - target
}

/// Index of the maximum element (predicted class). Ties resolve to the
/// first maximal index.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn argmax(v: &Vector) -> usize {
    assert!(!v.is_empty(), "argmax of empty vector");
    let mut best = 0;
    let mut best_val = v[0];
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > best_val {
            best = i;
            best_val = x;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn relu_clips_negatives() {
        let x = Vector::from(vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0]);
        let mut y = [-1.0, 3.0];
        relu_in_place(&mut y);
        assert_eq!(y, [0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks_by_input() {
        let input = Vector::from(vec![-1.0, 2.0, 0.0]);
        let up = Vector::from(vec![5.0, 5.0, 5.0]);
        assert_eq!(relu_backward(&input, &up).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = Vector::from(vec![1000.0, 1000.0, 999.0]);
        let s = softmax(&x);
        assert!(s.is_finite());
        assert_close(s.iter().sum::<f32>(), 1.0, 1e-5);
        assert!(s[0] > s[2]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Vector::from(vec![0.3, -1.2, 2.0]);
        let ls = log_softmax(&x);
        let s = softmax(&x);
        for i in 0..3 {
            assert_close(ls[i], s[i].ln(), 1e-5);
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_is_small() {
        let good = Vector::from(vec![10.0, -10.0]);
        let bad = Vector::from(vec![-10.0, 10.0]);
        assert!(cross_entropy_loss(&good, 0) < 1e-3);
        assert!(cross_entropy_loss(&bad, 0) > 5.0);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero() {
        let x = Vector::from(vec![0.5, -0.5, 1.5]);
        let g = cross_entropy_grad(&x, 1);
        assert_close(g.iter().sum::<f32>(), 0.0, 1e-5);
        assert!(g[1] < 0.0, "true-class gradient must be negative");
    }

    #[test]
    fn cross_entropy_grad_is_finite_difference_of_loss() {
        let x = Vector::from(vec![0.2, -0.7, 1.1]);
        let g = cross_entropy_grad(&x, 2);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fd = (cross_entropy_loss(&xp, 2) - cross_entropy_loss(&xm, 2)) / (2.0 * eps);
            assert_close(g[i], fd, 1e-3);
        }
    }

    #[test]
    fn mse_and_grad() {
        let p = Vector::from(vec![1.0, 2.0]);
        let t = Vector::from(vec![0.0, 0.0]);
        assert_close(mse_loss(&p, &t), 2.5, 1e-6);
        assert_eq!(mse_grad(&p, &t).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&Vector::from(vec![1.0, 3.0, 3.0])), 1);
        assert_eq!(argmax(&Vector::from(vec![-5.0])), 0);
    }

    #[test]
    fn sigmoid_range() {
        let s = sigmoid(&Vector::from(vec![-100.0, 0.0, 100.0]));
        assert_close(s[0], 0.0, 1e-6);
        assert_close(s[1], 0.5, 1e-6);
        assert_close(s[2], 1.0, 1e-6);
    }
}
