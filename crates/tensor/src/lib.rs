//! Dense tensor and linear-algebra substrate for the HierAdMo reproduction.
//!
//! This crate provides everything the model zoo (`hieradmo-models`) and the
//! federated-learning algorithms (`hieradmo-core`) need to train real
//! models without any external ML framework:
//!
//! - [`Vector`] — a 1-D `f32` vector with the arithmetic used by momentum
//!   methods (axpy, dot, norms, cosine similarity). Federated algorithms see
//!   models *only* through flat parameter vectors of this type.
//! - [`Matrix`] — row-major 2-D matrix with matmul / matvec / transposed
//!   products, used by fully-connected layers.
//! - [`Tensor4`] — NCHW 4-D tensor used by convolutional layers.
//! - [`conv`] — convolution and pooling forward/backward passes with
//!   analytic gradients.
//! - [`ops`] — activations and losses (ReLU, softmax, cross-entropy, MSE)
//!   together with their derivatives.
//! - [`init`] — Xavier/He initializers driven by a caller-supplied RNG so
//!   every experiment is reproducible from a seed.
//! - [`kernels`] — multi-accumulator, autovectorization-friendly `f32`
//!   primitives (lane-chunked dot/axpy/scal, register-tiled matmul) that
//!   the types above delegate their hot loops to.
//!
//! # Example
//!
//! ```
//! use hieradmo_tensor::Vector;
//!
//! let g = Vector::from(vec![1.0, 0.0]);
//! let mut m = Vector::zeros(2);
//! // One Polyak momentum step: m <- 0.9 m - 0.1 g
//! m.scale_in_place(0.9);
//! m.axpy(-0.1, &g);
//! assert_eq!(m.as_slice(), &[-0.1, 0.0]);
//! ```

#![deny(missing_docs)]

pub mod conv;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod tensor4;
pub mod vector;

pub use matrix::Matrix;
pub use tensor4::Tensor4;
pub use vector::Vector;
