//! Elastic topology: a versioned, mutable view of the worker–edge tree
//! plus the deterministic churn plans that mutate it.
//!
//! The frozen [`crate::Hierarchy`] stays the unit the engines execute
//! against; elasticity is layered on top as a sequence of *topology
//! epochs*. A [`TopologyVersion`] tracks which stable edge ids are live
//! and which registered worker (by *uid*, its index into the caller's
//! data table) currently sits under which edge. A validated [`ChurnPlan`]
//! schedules [`TopologyEvent`]s at cloud-round boundaries; applying the
//! events at a boundary advances the version's epoch and yields the next
//! frozen tree. Within an epoch every `TierPath` is stable — the
//! invariant the aggregation paths rely on — and across epochs the whole
//! evolution is a pure function of `(plan, seed)`, so churn runs replay
//! bitwise across thread counts and engines.
//!
//! Edge-failure re-homing draws each orphan's surviving parent from a
//! salted per-`(worker, epoch)` SplitMix64 stream ([`churn_stream_seed`],
//! the same finalizer as `hieradmo_netsim::stream_seed`), mirroring how
//! `FaultPlan` keeps per-actor fault streams decorrelated: the draw never
//! depends on event interleaving, only on the plan, the seed, and the
//! worker's uid.

use serde::{Deserialize, Serialize};

/// Salt XOR-ed into the master seed before deriving churn streams, so
/// re-homing draws are decorrelated from every delay, fault, and
/// adversary stream of the same master seed.
pub const CHURN_SEED_SALT: u64 = 0xe1a5_71c7_0b01_0917;

/// SplitMix64 finalizer over `master + stream` — bit-for-bit the same
/// mixing as `hieradmo_netsim::stream_seed` (duplicated here so the
/// topology crate stays dependency-free; a parity test in
/// `tests/elastic_topology.rs` pins the two together). Consecutive
/// stream indices land in unrelated parts of the seed space.
pub fn churn_stream_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One topology mutation, applied at a cloud-round boundary.
///
/// Workers are named by *uid* — their index into the caller's registered
/// data table, stable for the life of the run regardless of where (or
/// whether) the worker currently sits in the tree. Edges are named by
/// *stable id* — their position in the initial tree, which failed edges
/// vacate but never recycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyEvent {
    /// A registered-but-absent worker joins the live tree under `edge`,
    /// materializing its state from the edge's current model.
    Join {
        /// The joining worker's uid.
        worker: usize,
        /// The stable id of the (live) edge it joins.
        edge: usize,
    },
    /// A present worker leaves the tree; its state is dropped. An edge
    /// emptied by the departure fails in place.
    Leave {
        /// The departing worker's uid.
        worker: usize,
    },
    /// A present worker moves to another live edge, keeping its model and
    /// a bounded-age-damped momentum but dropping interval accumulators.
    Migrate {
        /// The migrating worker's uid.
        worker: usize,
        /// The stable id of the (live) destination edge.
        edge: usize,
    },
    /// A live edge dies after its boundary upload. Its members are
    /// re-homed onto surviving edges, each drawing its new parent from a
    /// private `(worker, epoch)` churn stream.
    EdgeFail {
        /// The stable id of the failing edge.
        edge: usize,
    },
    /// The live edges re-form by clustering worker momentum similarity:
    /// capacity-bounded greedy assignment of every present worker to the
    /// edge whose member-momentum centroid its own velocity best aligns
    /// with.
    EdgeReform,
}

/// One scheduled occurrence in a [`ChurnPlan`]: `event` applies at the
/// end of cloud round `round` (1-based), i.e. at tick `round · τ · π`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledEvent {
    /// The 1-based cloud round after which the event applies.
    pub round: usize,
    /// The mutation to apply.
    pub event: TopologyEvent,
}

/// A deterministic churn schedule, the topology-side analogue of
/// `FaultPlan`: explicit [`ScheduledEvent`]s plus an optional periodic
/// [`TopologyEvent::EdgeReform`] cadence. An empty plan is the default
/// and guarantees a run bitwise identical to the frozen-tree engines.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ChurnPlan {
    /// Explicit events, applied in vector order within a round.
    #[serde(default)]
    pub events: Vec<ScheduledEvent>,
    /// When `Some(k)`, an [`TopologyEvent::EdgeReform`] fires after every
    /// `k`-th cloud round (after the round's explicit events).
    #[serde(default)]
    pub reform_every: Option<usize>,
}

impl ChurnPlan {
    /// The empty plan: no churn, frozen tree, bitwise-identical runs.
    pub fn none() -> Self {
        ChurnPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.reform_every.is_none()
    }

    /// Static validation: every scheduled round is ≥ 1 and a periodic
    /// reform cadence is ≥ 1. Dynamic validity (live targets, present
    /// workers) is checked when the event applies, against the topology
    /// version of its epoch.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(ev) = self.events.iter().find(|ev| ev.round == 0) {
            return Err(format!(
                "churn event {:?} scheduled at round 0 (events apply at the \
                 end of 1-based cloud rounds)",
                ev.event
            ));
        }
        if self.reform_every == Some(0) {
            return Err("churn reform_every must be at least 1".to_string());
        }
        Ok(())
    }

    /// `true` when the plan mutates the topology at the end of cloud
    /// round `round` (1-based).
    pub fn is_boundary(&self, round: usize) -> bool {
        self.events.iter().any(|ev| ev.round == round)
            || self
                .reform_every
                .is_some_and(|k| round > 0 && round.is_multiple_of(k))
    }

    /// The sorted, distinct cloud rounds in `1..rounds_total` at which
    /// this plan mutates the topology. Events at or past the run's final
    /// round have nothing left to act on and are skipped.
    pub fn boundary_rounds(&self, rounds_total: usize) -> Vec<usize> {
        let mut rounds: Vec<usize> = (1..rounds_total).filter(|&r| self.is_boundary(r)).collect();
        rounds.dedup();
        rounds
    }

    /// The explicit events scheduled for the end of cloud round `round`,
    /// in plan order.
    pub fn events_at(&self, round: usize) -> impl Iterator<Item = &TopologyEvent> {
        self.events
            .iter()
            .filter(move |ev| ev.round == round)
            .map(|ev| &ev.event)
    }

    /// `true` when the periodic reform cadence fires at `round` (after
    /// the round's explicit events).
    pub fn reform_at(&self, round: usize) -> bool {
        self.reform_every
            .is_some_and(|k| round > 0 && round.is_multiple_of(k))
    }
}

/// A move produced by applying a [`TopologyEvent`]: worker `worker`
/// now sits under `edge`, carrying momentum of age `age` (cloud rounds
/// since it last changed parents — the damping input for bounded-age
/// momentum carry-over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The moved worker's uid.
    pub worker: usize,
    /// The stable id of its new edge.
    pub edge: usize,
    /// Cloud rounds spent under the previous parent, the momentum age.
    pub age: u64,
}

/// The versioned, mutable view of the tree: which stable edge ids are
/// live and which registered worker sits where, at a given topology
/// epoch. Serializable so checkpoints carry the epoch across a resume
/// (as [`ElasticSnapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyVersion {
    /// The cloud round at which this version took effect (0 = initial).
    epoch: u64,
    /// Member uids per stable edge id, each list sorted ascending. A
    /// failed edge keeps an empty list.
    members: Vec<Vec<usize>>,
    /// Liveness per stable edge id; failed ids never recycle.
    live: Vec<bool>,
    /// Per uid, the epoch at which the worker last changed parents
    /// (`u64::MAX` while absent). Momentum age for a move at epoch `E`
    /// is `E − parent_since`.
    parent_since: Vec<u64>,
}

/// The serialized form of a [`TopologyVersion`], as carried by training
/// checkpoints across a topology epoch boundary.
pub type ElasticSnapshot = TopologyVersion;

impl TopologyVersion {
    /// The initial version: edges `0..edge_sizes.len()` all live, uids
    /// `0..Σ sizes` dealt consecutively, uids `Σ sizes..registered`
    /// registered but absent (available to [`TopologyEvent::Join`]).
    ///
    /// # Errors
    ///
    /// Rejects an empty tree, a zero-worker edge, and a registered count
    /// below the initial population.
    pub fn initial(edge_sizes: &[usize], registered: usize) -> Result<Self, String> {
        if edge_sizes.is_empty() {
            return Err("elastic topology needs at least one edge".to_string());
        }
        if edge_sizes.contains(&0) {
            return Err("initial edges must have at least one worker".to_string());
        }
        let present: usize = edge_sizes.iter().sum();
        if registered < present {
            return Err(format!(
                "{registered} registered workers cannot fill an initial tree \
                 of {present}"
            ));
        }
        let mut members = Vec::with_capacity(edge_sizes.len());
        let mut next = 0;
        for &c in edge_sizes {
            members.push((next..next + c).collect());
            next += c;
        }
        Ok(TopologyVersion {
            epoch: 0,
            members,
            live: vec![true; edge_sizes.len()],
            parent_since: (0..registered)
                .map(|u| if u < present { 0 } else { u64::MAX })
                .collect(),
        })
    }

    /// The cloud round at which this version took effect.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The stable-id space size (live and failed edges).
    pub fn num_edges(&self) -> usize {
        self.members.len()
    }

    /// The registered uid space size.
    pub fn registered(&self) -> usize {
        self.parent_since.len()
    }

    /// `true` when stable edge id `edge` is live.
    pub fn is_live(&self, edge: usize) -> bool {
        self.live.get(edge).copied().unwrap_or(false)
    }

    /// Stable ids of the live edges, ascending.
    pub fn live_edges(&self) -> Vec<usize> {
        (0..self.live.len()).filter(|&e| self.live[e]).collect()
    }

    /// The member uids of stable edge `edge`, sorted ascending.
    pub fn members(&self, edge: usize) -> &[usize] {
        &self.members[edge]
    }

    /// Present uids in flat engine order: live edges by stable id, then
    /// members ascending.
    pub fn flat_members(&self) -> Vec<usize> {
        self.live_edges()
            .into_iter()
            .flat_map(|e| self.members[e].iter().copied())
            .collect()
    }

    /// Worker counts of the live edges, in stable-id order — the shape of
    /// the epoch's frozen `Hierarchy`.
    pub fn live_edge_sizes(&self) -> Vec<usize> {
        self.live_edges()
            .into_iter()
            .map(|e| self.members[e].len())
            .collect()
    }

    /// Number of workers currently in the tree.
    pub fn num_present(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// The stable edge id of worker `worker`, when present.
    pub fn parent_of(&self, worker: usize) -> Option<usize> {
        (0..self.members.len()).find(|&e| self.members[e].binary_search(&worker).is_ok())
    }

    /// Opens the epoch taking effect at cloud round `round`; subsequent
    /// event applications stamp moves with this epoch.
    ///
    /// # Panics
    ///
    /// Panics if `round` does not advance the epoch (boundaries apply in
    /// strictly increasing round order).
    pub fn begin_epoch(&mut self, round: u64) {
        assert!(
            round > self.epoch,
            "topology epochs apply in increasing round order \
             ({round} after {})",
            self.epoch
        );
        self.epoch = round;
    }

    fn require_live(&self, edge: usize) -> Result<(), String> {
        if edge >= self.members.len() {
            return Err(format!(
                "edge {edge} out of range for {} stable edge ids",
                self.members.len()
            ));
        }
        if !self.live[edge] {
            return Err(format!("edge {edge} already failed"));
        }
        Ok(())
    }

    fn insert(&mut self, worker: usize, edge: usize) {
        let pos = self.members[edge]
            .binary_search(&worker)
            .expect_err("worker must be absent from the target edge");
        self.members[edge].insert(pos, worker);
    }

    fn remove(&mut self, worker: usize) -> Result<usize, String> {
        let edge = self
            .parent_of(worker)
            .ok_or_else(|| format!("worker {worker} is not in the tree"))?;
        let pos = self.members[edge]
            .binary_search(&worker)
            .expect("parent_of found the worker");
        self.members[edge].remove(pos);
        Ok(edge)
    }

    /// Applies [`TopologyEvent::Join`], returning the placement.
    ///
    /// # Errors
    ///
    /// Rejects an unregistered or already-present worker and a dead or
    /// out-of-range target edge.
    pub fn join(&mut self, worker: usize, edge: usize) -> Result<Placement, String> {
        if worker >= self.parent_since.len() {
            return Err(format!(
                "join of worker {worker} but only {} uids are registered",
                self.parent_since.len()
            ));
        }
        if self.parent_of(worker).is_some() {
            return Err(format!("join of worker {worker}, already present"));
        }
        self.require_live(edge)?;
        self.insert(worker, edge);
        self.parent_since[worker] = self.epoch;
        Ok(Placement {
            worker,
            edge,
            age: 0,
        })
    }

    /// Applies [`TopologyEvent::Leave`], returning the vacated edge. An
    /// edge emptied by the departure fails in place (it cannot host an
    /// epoch of zero workers); the last present worker cannot leave.
    ///
    /// # Errors
    ///
    /// Rejects an absent worker and a departure that would empty the
    /// whole tree.
    pub fn leave(&mut self, worker: usize) -> Result<usize, String> {
        if self.num_present() == 1 {
            return Err(format!(
                "worker {worker} is the last one in the tree and cannot leave"
            ));
        }
        let edge = self.remove(worker)?;
        self.parent_since[worker] = u64::MAX;
        if self.members[edge].is_empty() {
            self.live[edge] = false;
        }
        Ok(edge)
    }

    /// Applies [`TopologyEvent::Migrate`], returning the placement (with
    /// the momentum age the damping uses). The vacated edge fails in
    /// place if emptied.
    ///
    /// # Errors
    ///
    /// Rejects an absent worker, a dead or out-of-range destination, and
    /// a self-migration.
    pub fn migrate(&mut self, worker: usize, edge: usize) -> Result<Placement, String> {
        self.require_live(edge)?;
        let from = self
            .parent_of(worker)
            .ok_or_else(|| format!("worker {worker} is not in the tree"))?;
        if from == edge {
            return Err(format!("worker {worker} already sits under edge {edge}"));
        }
        self.remove(worker).expect("parent_of found the worker");
        if self.members[from].is_empty() {
            self.live[from] = false;
        }
        self.insert(worker, edge);
        let age = self.epoch - self.parent_since[worker];
        self.parent_since[worker] = self.epoch;
        Ok(Placement { worker, edge, age })
    }

    /// Applies [`TopologyEvent::EdgeFail`]: marks the edge dead and
    /// re-homes its members (in uid order) onto surviving edges, each
    /// drawing its new parent from its private
    /// `(master ^ CHURN_SEED_SALT, worker)` stream mixed with the epoch —
    /// independent of event interleaving. Returns the placements.
    ///
    /// # Errors
    ///
    /// Rejects a dead or out-of-range edge and the failure of the last
    /// live edge (nowhere to re-home).
    pub fn fail_edge(&mut self, edge: usize, master_seed: u64) -> Result<Vec<Placement>, String> {
        self.require_live(edge)?;
        self.live[edge] = false;
        let survivors = self.live_edges();
        if survivors.is_empty() {
            return Err(format!("edge {edge} is the last live edge and cannot fail"));
        }
        let orphans = std::mem::take(&mut self.members[edge]);
        let mut moves = Vec::with_capacity(orphans.len());
        for worker in orphans {
            let stream = churn_stream_seed(master_seed ^ CHURN_SEED_SALT, worker as u64);
            let draw = churn_stream_seed(stream, self.epoch);
            let to = survivors[(draw % survivors.len() as u64) as usize];
            self.insert(worker, to);
            let age = self.epoch - self.parent_since[worker];
            self.parent_since[worker] = self.epoch;
            moves.push(Placement {
                worker,
                edge: to,
                age,
            });
        }
        Ok(moves)
    }

    /// Applies [`TopologyEvent::EdgeReform`] from a full assignment
    /// (`(worker, edge)` for every present worker, as produced by the
    /// engines' similarity clustering), returning the placements of the
    /// workers that actually moved. Edges emptied by the re-formation
    /// fail in place.
    ///
    /// # Errors
    ///
    /// Rejects assignments that miss a present worker, name an absent
    /// one, or target a dead edge.
    pub fn reform(&mut self, assignment: &[(usize, usize)]) -> Result<Vec<Placement>, String> {
        if assignment.len() != self.num_present() {
            return Err(format!(
                "reform assigns {} workers but {} are present",
                assignment.len(),
                self.num_present()
            ));
        }
        for &(worker, edge) in assignment {
            self.require_live(edge)?;
            if self.parent_of(worker).is_none() {
                return Err(format!("reform names absent worker {worker}"));
            }
        }
        let mut moves = Vec::new();
        for &(worker, edge) in assignment {
            let from = self.parent_of(worker).expect("validated above");
            if from == edge {
                continue;
            }
            self.remove(worker).expect("validated above");
            self.insert(worker, edge);
            let age = self.epoch - self.parent_since[worker];
            self.parent_since[worker] = self.epoch;
            moves.push(Placement { worker, edge, age });
        }
        for e in 0..self.members.len() {
            if self.live[e] && self.members[e].is_empty() {
                self.live[e] = false;
            }
        }
        Ok(moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v3() -> TopologyVersion {
        TopologyVersion::initial(&[2, 2, 2], 8).expect("valid initial tree")
    }

    #[test]
    fn initial_deals_uids_consecutively() {
        let v = v3();
        assert_eq!(v.members(0), &[0, 1]);
        assert_eq!(v.members(2), &[4, 5]);
        assert_eq!(v.flat_members(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(v.live_edge_sizes(), vec![2, 2, 2]);
        assert_eq!(v.registered(), 8);
        assert_eq!(v.parent_of(6), None);
    }

    #[test]
    fn initial_rejects_bad_shapes() {
        assert!(TopologyVersion::initial(&[], 4).is_err());
        assert!(TopologyVersion::initial(&[2, 0], 4).is_err());
        assert!(TopologyVersion::initial(&[3, 3], 4).is_err());
    }

    #[test]
    fn join_leave_migrate_lifecycle() {
        let mut v = v3();
        v.begin_epoch(2);
        let p = v.join(6, 1).expect("join");
        assert_eq!((p.edge, p.age), (1, 0));
        assert_eq!(v.members(1), &[2, 3, 6]);
        assert!(v.join(6, 1).is_err(), "already present");
        assert!(v.join(9, 0).is_err(), "unregistered");
        assert_eq!(v.leave(0).expect("leave"), 0);
        assert!(v.leave(0).is_err(), "already gone");
        v.begin_epoch(5);
        let p = v.migrate(6, 0).expect("migrate");
        assert_eq!((p.edge, p.age), (0, 3));
        assert!(v.migrate(6, 0).is_err(), "self-migration");
        assert_eq!(v.flat_members(), vec![1, 6, 2, 3, 4, 5]);
    }

    #[test]
    fn leave_empties_edge_into_failure() {
        let mut v = TopologyVersion::initial(&[1, 2], 3).expect("valid");
        v.begin_epoch(1);
        v.leave(0).expect("leave");
        assert!(!v.is_live(0));
        assert_eq!(v.live_edge_sizes(), vec![2]);
        v.leave(1).expect("leave");
        assert!(v.leave(2).is_err(), "last worker cannot leave");
    }

    #[test]
    fn fail_edge_rehomes_deterministically() {
        let mut a = v3();
        let mut b = v3();
        a.begin_epoch(3);
        b.begin_epoch(3);
        let ma = a.fail_edge(1, 42).expect("fail");
        let mb = b.fail_edge(1, 42).expect("fail");
        assert_eq!(ma, mb, "re-homing is a pure function of (plan, seed)");
        assert_eq!(ma.len(), 2);
        assert!(!a.is_live(1));
        assert_eq!(a.num_present(), 6);
        for m in &ma {
            assert_ne!(m.edge, 1);
            assert_eq!(m.age, 3);
        }
        let mc = v3()
            .tap(|v| v.begin_epoch(3))
            .fail_edge(1, 43)
            .expect("fail");
        assert!(
            ma != mc || ma.iter().zip(&mc).all(|(x, y)| x == y),
            "different seeds may re-home differently"
        );
    }

    #[test]
    fn last_live_edge_cannot_fail() {
        let mut v = TopologyVersion::initial(&[2], 2).expect("valid");
        v.begin_epoch(1);
        assert!(v.fail_edge(0, 7).is_err());
    }

    #[test]
    fn reform_moves_and_fails_emptied_edges() {
        let mut v = v3();
        v.begin_epoch(4);
        let moves = v
            .reform(&[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 1)])
            .expect("reform");
        assert_eq!(moves.len(), 3, "2, 4 and 5 moved");
        assert!(!v.is_live(2), "emptied edge fails in place");
        assert_eq!(v.live_edge_sizes(), vec![3, 3]);
        assert!(v.reform(&[(0, 0)]).is_err(), "incomplete assignment");
    }

    #[test]
    fn plan_validation_and_boundaries() {
        let mut plan = ChurnPlan::none();
        assert!(plan.is_empty());
        plan.validate().expect("empty plan is valid");
        plan.events.push(ScheduledEvent {
            round: 2,
            event: TopologyEvent::Leave { worker: 1 },
        });
        plan.reform_every = Some(3);
        plan.validate().expect("valid plan");
        assert_eq!(plan.boundary_rounds(8), vec![2, 3, 6]);
        assert!(plan.is_boundary(2) && plan.is_boundary(6));
        assert!(!plan.is_boundary(4));
        assert_eq!(plan.events_at(2).count(), 1);
        assert!(plan.reform_at(6) && !plan.reform_at(2));

        plan.reform_every = Some(0);
        assert!(plan.validate().is_err());
        plan.reform_every = None;
        plan.events[0].round = 0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn serde_round_trips() {
        let mut v = v3();
        v.begin_epoch(2);
        v.join(7, 0).expect("join");
        let json = serde_json::to_string(&v).expect("serialize");
        let back: TopologyVersion = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(v, back);

        let plan = ChurnPlan {
            events: vec![ScheduledEvent {
                round: 1,
                event: TopologyEvent::EdgeFail { edge: 0 },
            }],
            reform_every: Some(2),
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: ChurnPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
        let legacy: ChurnPlan = serde_json::from_str("{}").expect("defaults");
        assert!(legacy.is_empty());
    }

    trait Tap: Sized {
        fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
            f(&mut self);
            self
        }
    }
    impl<T> Tap for T {}
}
