//! Aggregation timing: `T = K·τ = P·τ·π` (paper Section III-B).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// What happens at one local iteration `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tick {
    /// Local iteration number, `1..=T`.
    pub t: usize,
    /// `Some(k)` when `t = kτ`: the `k`-th edge aggregation fires.
    pub edge_aggregation: Option<usize>,
    /// `Some(p)` when `t = pτπ`: the `p`-th cloud aggregation fires.
    pub cloud_aggregation: Option<usize>,
}

/// Errors from [`Schedule`] construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// τ, π or T was zero.
    ZeroParameter,
    /// `T` is not a multiple of `τ·π`.
    Indivisible {
        /// Total iterations requested.
        total: usize,
        /// The round length `τ·π` it must divide into.
        round: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ZeroParameter => write!(f, "tau, pi and T must be positive"),
            ScheduleError::Indivisible { total, round } => {
                write!(f, "T = {total} is not a multiple of tau*pi = {round}")
            }
        }
    }
}

impl Error for ScheduleError {}

/// An aggregation schedule: worker iterations every tick, edge aggregation
/// every `τ` ticks, cloud aggregation every `τ·π` ticks.
///
/// # Example
///
/// ```
/// use hieradmo_topology::Schedule;
///
/// let s = Schedule::three_tier(2, 2, 8)?;
/// let cloud_ticks: Vec<usize> = s.ticks()
///     .filter(|tk| tk.cloud_aggregation.is_some())
///     .map(|tk| tk.t)
///     .collect();
/// assert_eq!(cloud_ticks, vec![4, 8]);
/// # Ok::<(), hieradmo_topology::ScheduleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    tau: usize,
    pi: usize,
    total: usize,
}

impl Schedule {
    /// Three-tier schedule with worker-edge period `tau`, edge-cloud period
    /// `pi`, and `total` local iterations.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if any parameter is zero or `total` is not
    /// a multiple of `tau * pi`.
    pub fn three_tier(tau: usize, pi: usize, total: usize) -> Result<Self, ScheduleError> {
        if tau == 0 || pi == 0 || total == 0 {
            return Err(ScheduleError::ZeroParameter);
        }
        let round = tau * pi;
        if !total.is_multiple_of(round) {
            return Err(ScheduleError::Indivisible { total, round });
        }
        Ok(Schedule { tau, pi, total })
    }

    /// Two-tier schedule: aggregation (edge = cloud) every `tau` ticks.
    ///
    /// Per the paper's fairness rule, a two-tier baseline compared against a
    /// three-tier run with periods `(τ, π)` uses `tau = τ·π`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] under the same conditions as
    /// [`Schedule::three_tier`].
    pub fn two_tier(tau: usize, total: usize) -> Result<Self, ScheduleError> {
        Schedule::three_tier(tau, 1, total)
    }

    /// Worker-edge aggregation period `τ`.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Edge-cloud aggregation period `π` (in units of edge aggregations).
    pub fn pi(&self) -> usize {
        self.pi
    }

    /// Total local iterations `T`.
    pub fn total_iterations(&self) -> usize {
        self.total
    }

    /// Number of edge aggregations `K = T/τ`.
    pub fn num_edge_aggregations(&self) -> usize {
        self.total / self.tau
    }

    /// Number of cloud aggregations `P = T/(τπ)`.
    pub fn num_cloud_aggregations(&self) -> usize {
        self.total / (self.tau * self.pi)
    }

    /// The tick at local iteration `t` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `t > T`.
    pub fn tick(&self, t: usize) -> Tick {
        assert!(
            t >= 1 && t <= self.total,
            "tick {t} outside 1..={}",
            self.total
        );
        let edge_aggregation = t.is_multiple_of(self.tau).then(|| t / self.tau);
        let cloud_aggregation = t
            .is_multiple_of(self.tau * self.pi)
            .then(|| t / (self.tau * self.pi));
        Tick {
            t,
            edge_aggregation,
            cloud_aggregation,
        }
    }

    /// Iterates over all ticks `1..=T`.
    pub fn ticks(&self) -> impl Iterator<Item = Tick> + '_ {
        (1..=self.total).map(move |t| self.tick(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper_relation() {
        // T = Kτ = Pτπ.
        let s = Schedule::three_tier(10, 2, 1000).unwrap();
        assert_eq!(s.num_edge_aggregations(), 100);
        assert_eq!(s.num_cloud_aggregations(), 50);
        assert_eq!(s.num_edge_aggregations() * s.tau(), s.total_iterations());
        assert_eq!(
            s.num_cloud_aggregations() * s.tau() * s.pi(),
            s.total_iterations()
        );
    }

    #[test]
    fn every_cloud_agg_coincides_with_an_edge_agg() {
        let s = Schedule::three_tier(3, 4, 24).unwrap();
        for tick in s.ticks() {
            if tick.cloud_aggregation.is_some() {
                assert!(tick.edge_aggregation.is_some(), "tick {}", tick.t);
            }
        }
    }

    #[test]
    fn aggregation_indices_are_sequential() {
        let s = Schedule::three_tier(2, 3, 12).unwrap();
        let ks: Vec<usize> = s.ticks().filter_map(|t| t.edge_aggregation).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5, 6]);
        let ps: Vec<usize> = s.ticks().filter_map(|t| t.cloud_aggregation).collect();
        assert_eq!(ps, vec![1, 2]);
    }

    #[test]
    fn two_tier_aggregates_both_levels_together() {
        let s = Schedule::two_tier(5, 20).unwrap();
        for tick in s.ticks() {
            assert_eq!(
                tick.edge_aggregation.is_some(),
                tick.cloud_aggregation.is_some()
            );
        }
        assert_eq!(s.num_cloud_aggregations(), 4);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            Schedule::three_tier(0, 1, 10),
            Err(ScheduleError::ZeroParameter)
        );
        assert_eq!(
            Schedule::three_tier(3, 2, 10),
            Err(ScheduleError::Indivisible {
                total: 10,
                round: 6
            })
        );
        // Error type displays usefully.
        let msg = Schedule::three_tier(3, 2, 10).unwrap_err().to_string();
        assert!(msg.contains("not a multiple"));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn tick_out_of_range_panics() {
        let s = Schedule::two_tier(2, 4).unwrap();
        let _ = s.tick(5);
    }
}
