//! The cloud → edge → worker tree.

use serde::{Deserialize, Serialize};

/// Identifies worker `{i, ℓ}`: the `index`-th worker of edge `edge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId {
    /// Edge node index `ℓ` in `0..L`.
    pub edge: usize,
    /// Worker index `i` within the edge, in `0..C_ℓ`.
    pub index: usize,
}

/// A three-tier hierarchy: one implicit cloud, `L` edges, `C_ℓ` workers per
/// edge.
///
/// Workers are addressed either by [`WorkerId`] or by *flat index* — the
/// position in edge-major order — which is how per-worker arrays (datasets,
/// model states) are laid out throughout the workspace.
///
/// # Example
///
/// ```
/// use hieradmo_topology::{Hierarchy, WorkerId};
///
/// let h = Hierarchy::new(vec![2, 3]);
/// assert_eq!(h.num_edges(), 2);
/// assert_eq!(h.num_workers(), 5);
/// assert_eq!(h.flat_index(WorkerId { edge: 1, index: 0 }), 2);
/// assert_eq!(h.worker_at(4), WorkerId { edge: 1, index: 2 });
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    workers_per_edge: Vec<usize>,
    edge_offsets: Vec<usize>,
    total: usize,
}

impl Hierarchy {
    /// Creates a hierarchy with the given worker count per edge.
    ///
    /// # Panics
    ///
    /// Panics if there are no edges or any edge has zero workers.
    pub fn new(workers_per_edge: Vec<usize>) -> Self {
        assert!(!workers_per_edge.is_empty(), "need at least one edge");
        assert!(
            workers_per_edge.iter().all(|&c| c > 0),
            "every edge needs at least one worker"
        );
        let mut edge_offsets = Vec::with_capacity(workers_per_edge.len());
        let mut total = 0;
        for &c in &workers_per_edge {
            edge_offsets.push(total);
            total += c;
        }
        Hierarchy {
            workers_per_edge,
            edge_offsets,
            total,
        }
    }

    /// A balanced hierarchy: `edges` edge nodes, each with
    /// `workers_per_edge` workers (the paper's experimental topologies:
    /// 2×2, 4×4, 10×10).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn balanced(edges: usize, workers_per_edge: usize) -> Self {
        assert!(edges > 0 && workers_per_edge > 0, "need positive sizes");
        Hierarchy::new(vec![workers_per_edge; edges])
    }

    /// A degenerate two-tier topology: a single "edge" that *is* the cloud
    /// aggregator, serving all `workers` (used by the two-tier baselines).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn two_tier(workers: usize) -> Self {
        Hierarchy::new(vec![workers])
    }

    /// Number of edge nodes `L`.
    pub fn num_edges(&self) -> usize {
        self.workers_per_edge.len()
    }

    /// Total number of workers `N`.
    pub fn num_workers(&self) -> usize {
        self.total
    }

    /// Number of workers `C_ℓ` under the given edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge >= num_edges()`.
    pub fn workers_in_edge(&self, edge: usize) -> usize {
        self.workers_per_edge[edge]
    }

    /// `true` when this is a degenerate two-tier topology (one edge).
    pub fn is_two_tier(&self) -> bool {
        self.num_edges() == 1
    }

    /// Flat index of a worker (edge-major order).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flat_index(&self, id: WorkerId) -> usize {
        assert!(id.edge < self.num_edges(), "edge {} out of range", id.edge);
        assert!(
            id.index < self.workers_per_edge[id.edge],
            "worker {} out of range for edge {}",
            id.index,
            id.edge
        );
        self.edge_offsets[id.edge] + id.index
    }

    /// Inverse of [`Hierarchy::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat >= num_workers()`.
    pub fn worker_at(&self, flat: usize) -> WorkerId {
        assert!(flat < self.total, "flat index {flat} out of range");
        // edge_offsets is sorted; find the edge whose range contains `flat`.
        let edge = match self.edge_offsets.binary_search(&flat) {
            Ok(e) => e,
            Err(e) => e - 1,
        };
        WorkerId {
            edge,
            index: flat - self.edge_offsets[edge],
        }
    }

    /// Iterates over all workers in flat order.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.num_edges()).flat_map(move |edge| {
            (0..self.workers_per_edge[edge]).map(move |index| WorkerId { edge, index })
        })
    }

    /// Flat indices of the workers under one edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge >= num_edges()`.
    pub fn edge_workers(&self, edge: usize) -> std::ops::Range<usize> {
        assert!(edge < self.num_edges(), "edge {edge} out of range");
        let start = self.edge_offsets[edge];
        start..start + self.workers_per_edge[edge]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_round_trips() {
        let h = Hierarchy::new(vec![3, 1, 2]);
        for flat in 0..h.num_workers() {
            let id = h.worker_at(flat);
            assert_eq!(h.flat_index(id), flat);
        }
    }

    #[test]
    fn workers_iterates_in_flat_order() {
        let h = Hierarchy::new(vec![2, 2]);
        let ids: Vec<WorkerId> = h.workers().collect();
        assert_eq!(ids.len(), 4);
        for (flat, id) in ids.iter().enumerate() {
            assert_eq!(h.flat_index(*id), flat);
        }
    }

    #[test]
    fn edge_workers_ranges() {
        let h = Hierarchy::new(vec![2, 3]);
        assert_eq!(h.edge_workers(0), 0..2);
        assert_eq!(h.edge_workers(1), 2..5);
    }

    #[test]
    fn two_tier_is_single_edge() {
        let h = Hierarchy::two_tier(4);
        assert!(h.is_two_tier());
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.num_workers(), 4);
        assert!(!Hierarchy::balanced(2, 2).is_two_tier());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_edge_panics() {
        let _ = Hierarchy::new(vec![2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_flat_index_panics() {
        let h = Hierarchy::balanced(2, 2);
        let _ = h.worker_at(4);
    }
}
