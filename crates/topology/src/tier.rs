//! Arbitrary-depth tier trees: the N-tier generalization of the
//! three-tier cloud → edge → worker [`Hierarchy`].
//!
//! A [`TierTree`] lists one [`TierSpec`] per parent → child relation,
//! top-down: `levels[0]` describes the root's children, `levels.last()`
//! the workers under each leaf-parent ("edge") node. Each spec carries
//! the subtree *fanout*, the aggregation *interval* in units of the
//! children's own rounds (the paper's τ at the leaf level, π one level
//! up — generalized to τ₁…τ_d), and the [`LinkClass`] of the boundary.
//!
//! Depth-3 trees are in exact correspondence with the seed
//! `(Hierarchy::balanced, τ, π)` triple via [`TierTree::three_tier`] /
//! [`TierTree::edge_hierarchy`], which is what the depth-equivalence
//! suite (`tests/tier_equivalence.rs`) pins bitwise.
//!
//! # Interval semantics
//!
//! Workers step once per tick. The leaf-parent ("edge") tier aggregates
//! every `levels.last().interval = τ` ticks; a tier at depth `d`
//! aggregates every `levels[d].interval` rounds *of its children*, so in
//! edge rounds its boundary is the suffix product
//! [`TierTree::sync_rounds`]. The root fires every
//! [`TierTree::pi_total`] edge rounds.
//!
//! # Collapse rule
//!
//! A middle tier whose nodes merely forward their children — interval 1
//! and [`TierAggregation::Identity`] — is observationally removable:
//! [`TierTree::collapse`] deletes such levels, multiplying their fanout
//! into the parent relation. A depth-4 tree with a pass-through middle
//! tier trains bitwise identically to its collapsed depth-3 counterpart
//! (property-tested in `tests/tier_equivalence.rs`).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hierarchy::Hierarchy;

/// Link technology class of one tier boundary. Used by the co-simulation
/// layer to pick delay profiles; the training math never reads it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Local-area (worker ↔ leaf-parent in the paper's testbed).
    Lan,
    /// Metro-area (edge ↔ regional aggregator).
    #[default]
    Man,
    /// Wide-area (uplink to the cloud root).
    Wan,
}

/// How a tier's nodes combine their children's states.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierAggregation {
    /// Data-weighted averaging (the paper's rule at every level).
    #[default]
    Average,
    /// Pass-through: the node forwards its children untouched. Together
    /// with `interval == 1` this makes the tier removable — see
    /// [`TierTree::collapse`].
    Identity,
}

/// One parent → child relation of a [`TierTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Children per parent node at this level.
    pub fanout: usize,
    /// Aggregation interval, in units of the children's own rounds
    /// (ticks at the leaf level).
    pub interval: usize,
    /// Link class of this boundary.
    #[serde(default)]
    pub link_class: LinkClass,
    /// Aggregation rule applied by the parent nodes of this relation.
    #[serde(default)]
    pub aggregation: TierAggregation,
}

impl TierSpec {
    /// A spec with the default link class and averaging aggregation.
    pub fn new(fanout: usize, interval: usize) -> Self {
        TierSpec {
            fanout,
            interval,
            link_class: LinkClass::default(),
            aggregation: TierAggregation::default(),
        }
    }

    /// A pass-through spec (interval 1, identity aggregation): removable
    /// by [`TierTree::collapse`].
    pub fn pass_through(fanout: usize) -> Self {
        TierSpec {
            fanout,
            interval: 1,
            link_class: LinkClass::default(),
            aggregation: TierAggregation::Identity,
        }
    }

    /// `true` when this relation's parents merely forward their children
    /// every round.
    pub fn is_pass_through(&self) -> bool {
        self.interval == 1 && self.aggregation == TierAggregation::Identity
    }
}

/// A validated, arbitrary-depth, balanced tier tree.
///
/// Depth is `levels().len() + 1` (the root is implicit): a depth-3 tree
/// has two levels and is the seed worker → edge → cloud shape.
///
/// # Example
///
/// ```
/// use hieradmo_topology::{TierSpec, TierTree};
///
/// // 4-tier: cloud → 2 regions (every 2 group rounds) → 2 edges per
/// // region (every 2 edge rounds) → 2 workers per edge (τ = 5).
/// let tree = TierTree::new(vec![
///     TierSpec::new(2, 2),
///     TierSpec::new(2, 2),
///     TierSpec::new(2, 5),
/// ]).unwrap();
/// assert_eq!(tree.depth(), 4);
/// assert_eq!(tree.num_workers(), 8);
/// assert_eq!(tree.num_edges(), 4);
/// assert_eq!(tree.tau(), 5);
/// assert_eq!(tree.pi_total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierTree {
    levels: Vec<TierSpec>,
}

// The wire form is the bare level list; deserialization re-runs the
// validator so a hand-edited config cannot smuggle in a degenerate tree.
// (Hand-written because the vendored serde_derive lacks `try_from`.)
impl Serialize for TierTree {
    fn to_value(&self) -> serde::Value {
        self.levels.to_value()
    }
}

impl Deserialize for TierTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let levels = Vec::<TierSpec>::from_value(v)?;
        TierTree::new(levels).map_err(serde::DeError::msg)
    }
}

impl TierTree {
    /// Builds and validates a tree from top-down level specs.
    ///
    /// # Errors
    ///
    /// Returns a message when there are fewer than two levels (depth < 3),
    /// any fanout or interval is zero, or the actor counts overflow.
    pub fn new(levels: Vec<TierSpec>) -> Result<Self, String> {
        if levels.len() < 2 {
            return Err(format!(
                "a tier tree needs at least 2 levels (depth 3: worker → edge \
                 → cloud), got {}",
                levels.len()
            ));
        }
        let mut actors: usize = 1;
        for (d, spec) in levels.iter().enumerate() {
            if spec.fanout == 0 {
                return Err(format!("level {d} has zero fanout"));
            }
            if spec.interval == 0 {
                return Err(format!("level {d} has zero interval"));
            }
            actors = actors
                .checked_mul(spec.fanout)
                .ok_or_else(|| format!("actor count overflows at level {d}"))?;
        }
        Ok(TierTree { levels })
    }

    /// The seed three-tier shape: `edges` leaf-parent nodes of
    /// `workers_per_edge` workers each, aggregating every `tau` ticks,
    /// with a cloud round every `pi` edge rounds.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    pub fn three_tier(edges: usize, workers_per_edge: usize, tau: usize, pi: usize) -> Self {
        TierTree::new(vec![
            TierSpec {
                fanout: edges,
                interval: pi,
                link_class: LinkClass::Wan,
                aggregation: TierAggregation::Average,
            },
            TierSpec {
                fanout: workers_per_edge,
                interval: tau,
                link_class: LinkClass::Lan,
                aggregation: TierAggregation::Average,
            },
        ])
        .expect("three_tier arguments must be positive")
    }

    /// Top-down level specs.
    pub fn levels(&self) -> &[TierSpec] {
        &self.levels
    }

    /// Tree depth counting every tier: root + one per level. The seed
    /// shape is depth 3.
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Worker–edge aggregation period `τ` (the leaf level's interval, in
    /// ticks).
    pub fn tau(&self) -> usize {
        self.levels[self.levels.len() - 1].interval
    }

    /// Edge rounds per root round: the product of every non-leaf
    /// interval (`π` for depth 3, `π·ρ·…` for deeper trees).
    pub fn pi_total(&self) -> usize {
        self.levels[..self.levels.len() - 1]
            .iter()
            .map(|s| s.interval)
            .product()
    }

    /// Number of nodes at tier depth `d` (`0` = root, `levels().len()` =
    /// workers).
    ///
    /// # Panics
    ///
    /// Panics if `d > levels().len()`.
    pub fn nodes_at(&self, d: usize) -> usize {
        assert!(d <= self.levels.len(), "depth {d} out of range");
        self.levels[..d].iter().map(|s| s.fanout).product()
    }

    /// Total workers (leaves).
    pub fn num_workers(&self) -> usize {
        self.nodes_at(self.levels.len())
    }

    /// Number of leaf-parent ("edge") nodes.
    pub fn num_edges(&self) -> usize {
        self.nodes_at(self.levels.len() - 1)
    }

    /// Depths of the *middle* aggregator tiers — strictly between the
    /// root and the leaf-parent tier. Empty for depth-3 trees.
    pub fn middle_depths(&self) -> std::ops::Range<usize> {
        1..self.levels.len() - 1
    }

    /// Aggregation boundary of the depth-`d` tier, in edge rounds: the
    /// suffix product of intervals `levels[d] · … · levels[len-2]`.
    /// `sync_rounds(0) == pi_total()`; the lowest middle tier has the
    /// smallest boundary.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not an aggregator depth (`0..levels().len() - 1`).
    pub fn sync_rounds(&self, d: usize) -> usize {
        assert!(
            d < self.levels.len() - 1,
            "depth {d} is not an upper aggregator tier"
        );
        self.levels[d..self.levels.len() - 1]
            .iter()
            .map(|s| s.interval)
            .product()
    }

    /// Number of edges in the subtree of one depth-`d` node.
    ///
    /// # Panics
    ///
    /// Panics if `d >= levels().len()`.
    pub fn edges_per_node(&self, d: usize) -> usize {
        assert!(d < self.levels.len(), "depth {d} out of range");
        self.levels[d..self.levels.len() - 1]
            .iter()
            .map(|s| s.fanout)
            .product()
    }

    /// The root-to-edge path of edge `edge`: one local child index per
    /// aggregator level (`levels[0..len-1]`), most significant first, so
    /// that `edge` is the row-major mixed-radix number the path spells.
    /// The inverse of [`TierPath::node_index`] restricted to the edge
    /// tier; depth-3 trees yield the single-component path `[edge]`.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn edge_path(&self, edge: usize) -> Vec<usize> {
        assert!(edge < self.num_edges(), "edge {edge} out of range");
        let n = self.levels.len() - 1;
        let mut path = vec![0; n];
        let mut rem = edge;
        for d in (0..n).rev() {
            let f = self.levels[d].fanout;
            path[d] = rem % f;
            rem /= f;
        }
        path
    }

    /// The balanced three-tier [`Hierarchy`] spanned by the edge tier:
    /// `num_edges()` edges of `levels.last().fanout` workers each. This
    /// is the shape the execution engines lay worker state out in,
    /// whatever the tree's depth.
    pub fn edge_hierarchy(&self) -> Hierarchy {
        Hierarchy::balanced(self.num_edges(), self.levels[self.levels.len() - 1].fanout)
    }

    /// Removes every pass-through middle level (interval 1, identity
    /// aggregation), multiplying its fanout into the parent relation.
    /// Training on the collapsed tree is bitwise identical to the
    /// original (the depth-equivalence suite's headline property).
    pub fn collapse(&self) -> TierTree {
        let mut levels: Vec<TierSpec> = Vec::with_capacity(self.levels.len());
        for (d, spec) in self.levels.iter().enumerate() {
            let removable = d >= 1 && d <= self.levels.len().saturating_sub(2);
            if removable && spec.is_pass_through() {
                let parent = levels.last_mut().expect("d >= 1 implies a parent level");
                parent.fanout *= spec.fanout;
            } else {
                levels.push(*spec);
            }
        }
        TierTree::new(levels).expect("collapsing preserves validity")
    }
}

/// A path from the root of a [`TierTree`] to one of its nodes: element
/// `i` selects a child at depth `i + 1`. A full-length path addresses a
/// worker; shorter paths address aggregator nodes. This is the actor
/// addressing scheme fault and adversary plans use on N-tier runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TierPath(pub Vec<usize>);

impl fmt::Display for TierPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "root");
        }
        let parts: Vec<String> = self.0.iter().map(usize::to_string).collect();
        write!(f, "{}", parts.join("/"))
    }
}

impl TierPath {
    /// The node index among its tier's nodes (row-major over the
    /// balanced tree), after validating every component against the
    /// tree's fanouts.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending component when the path is
    /// longer than the tree is deep or a component exceeds its fanout.
    pub fn node_index(&self, tree: &TierTree) -> Result<usize, String> {
        if self.0.len() > tree.levels().len() {
            return Err(format!(
                "path {self} has {} components for a tree of depth {}",
                self.0.len(),
                tree.depth()
            ));
        }
        let mut idx = 0usize;
        for (d, &c) in self.0.iter().enumerate() {
            let fanout = tree.levels()[d].fanout;
            if c >= fanout {
                return Err(format!(
                    "path {self} component {d} is {c}, but level {d} has fanout \
                     {fanout}"
                ));
            }
            idx = idx * fanout + c;
        }
        Ok(idx)
    }

    /// The flat worker index this path addresses (paths must reach the
    /// leaf tier).
    ///
    /// # Errors
    ///
    /// Returns a message when the path does not have exactly one
    /// component per level or any component is out of range.
    pub fn flat_worker(&self, tree: &TierTree) -> Result<usize, String> {
        if self.0.len() != tree.levels().len() {
            return Err(format!(
                "worker path {self} must have {} components (one per level), \
                 got {}",
                tree.levels().len(),
                self.0.len()
            ));
        }
        self.node_index(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth4() -> TierTree {
        TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::new(3, 2),
            TierSpec::new(2, 5),
        ])
        .unwrap()
    }

    #[test]
    fn three_tier_matches_seed_quantities() {
        let t = TierTree::three_tier(2, 2, 10, 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.num_workers(), 4);
        assert_eq!(t.tau(), 10);
        assert_eq!(t.pi_total(), 2);
        assert!(t.middle_depths().is_empty());
        let h = t.edge_hierarchy();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_workers(), 4);
    }

    #[test]
    fn depth4_counts_and_boundaries() {
        let t = depth4();
        assert_eq!(t.depth(), 4);
        assert_eq!(t.nodes_at(0), 1);
        assert_eq!(t.nodes_at(1), 2);
        assert_eq!(t.nodes_at(2), 6);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.num_workers(), 12);
        assert_eq!(t.tau(), 5);
        // Root every 2·2 = 4 edge rounds; the single middle tier every 2.
        assert_eq!(t.pi_total(), 4);
        assert_eq!(t.middle_depths().collect::<Vec<_>>(), vec![1]);
        assert_eq!(t.sync_rounds(1), 2);
        assert_eq!(t.sync_rounds(0), 4);
        assert_eq!(t.edges_per_node(1), 3);
        assert_eq!(t.edges_per_node(0), 6);
    }

    #[test]
    fn rejects_degenerate_trees() {
        assert!(TierTree::new(vec![TierSpec::new(4, 10)]).is_err());
        assert!(TierTree::new(vec![TierSpec::new(0, 1), TierSpec::new(2, 5)]).is_err());
        assert!(TierTree::new(vec![TierSpec::new(2, 0), TierSpec::new(2, 5)]).is_err());
        assert!(TierTree::new(vec![TierSpec::new(usize::MAX, 1), TierSpec::new(2, 5)]).is_err());
    }

    #[test]
    fn serde_round_trips_and_validates() {
        let t = depth4();
        let json = serde_json::to_string(&t).unwrap();
        let back: TierTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // Specs omit default link/aggregation fields on the wire.
        let minimal: TierTree =
            serde_json::from_str(r#"[{"fanout":2,"interval":2},{"fanout":2,"interval":5}]"#)
                .unwrap();
        assert_eq!(minimal.levels()[0].link_class, LinkClass::Man);
        assert_eq!(minimal.levels()[0].aggregation, TierAggregation::Average);
        // Deserialization runs the validator.
        let bad = r#"[{"fanout":0,"interval":1},{"fanout":2,"interval":5}]"#;
        assert!(serde_json::from_str::<TierTree>(bad).is_err());
        let shallow = r#"[{"fanout":4,"interval":10}]"#;
        assert!(serde_json::from_str::<TierTree>(shallow).is_err());
    }

    #[test]
    fn collapse_removes_pass_through_middles_only() {
        let t = TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::pass_through(3),
            TierSpec::new(2, 5),
        ])
        .unwrap();
        let c = t.collapse();
        assert_eq!(c.depth(), 3);
        assert_eq!(c.levels()[0].fanout, 6);
        assert_eq!(c.levels()[0].interval, 2);
        assert_eq!(c.levels()[1], TierSpec::new(2, 5));
        assert_eq!(c.num_workers(), t.num_workers());
        assert_eq!(c.pi_total(), t.pi_total());
        assert_eq!(c.tau(), t.tau());

        // A middle tier with interval > 1 or averaging aggregation stays.
        assert_eq!(depth4().collapse(), depth4());
        // Root and leaf relations are never removed, even if they look
        // pass-through.
        let edgey = TierTree::new(vec![TierSpec::pass_through(2), TierSpec::new(2, 5)]).unwrap();
        assert_eq!(edgey.collapse(), edgey);
    }

    #[test]
    fn tier_paths_address_nodes_and_workers() {
        let t = depth4();
        // Worker 0/2/1 → edge (0·3 + 2) = 2, worker 2·2 + 1 = 5.
        let p = TierPath(vec![0, 2, 1]);
        assert_eq!(p.flat_worker(&t).unwrap(), 5);
        assert_eq!(p.to_string(), "0/2/1");
        assert_eq!(TierPath(vec![1, 0]).node_index(&t).unwrap(), 3);
        assert_eq!(TierPath(vec![]).to_string(), "root");
        assert_eq!(TierPath(vec![]).node_index(&t).unwrap(), 0);
        // Partial paths cannot address workers.
        assert!(TierPath(vec![0, 1]).flat_worker(&t).is_err());
        // Out-of-range components are named in the error.
        let err = TierPath(vec![0, 3, 0]).flat_worker(&t).unwrap_err();
        assert!(err.contains("fanout"), "{err}");
        assert!(TierPath(vec![0, 0, 0, 0]).node_index(&t).is_err());
    }

    #[test]
    fn last_worker_path_maps_to_last_flat_index() {
        let t = depth4();
        let p = TierPath(vec![1, 2, 1]);
        assert_eq!(p.flat_worker(&t).unwrap(), t.num_workers() - 1);
    }
}
