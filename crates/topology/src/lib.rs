//! Multi-tier network topology substrate for the HierAdMo reproduction.
//!
//! The paper's system model (Section III-A) is one cloud server, `L` edge
//! nodes and `N` workers, with edge node `ℓ` serving `C_ℓ` workers and every
//! quantity aggregated by data-size weights `D_{i,ℓ}/D_ℓ` and `D_ℓ/D`.
//! [`Hierarchy`] captures the tree, [`Weights`] the data-size weights, and
//! [`Schedule`] the aggregation timing `T = K·τ = P·τ·π`.
//!
//! Two-tier baselines (FedAvg, SlowMo, …) run on a *degenerate* hierarchy
//! with a single edge node ([`Hierarchy::two_tier`]) and `π = 1`, matching
//! the paper's fairness rule that two-tier `τ` equals three-tier `τ·π`.
//!
//! # Example
//!
//! ```
//! use hieradmo_topology::{Hierarchy, Schedule};
//!
//! // Table II setting: 2 edges × 2 workers, τ = 10, π = 2, T = 1000.
//! let h = Hierarchy::balanced(2, 2);
//! assert_eq!(h.num_workers(), 4);
//! let s = Schedule::three_tier(10, 2, 1000).unwrap();
//! assert_eq!(s.num_edge_aggregations(), 100);
//! assert_eq!(s.num_cloud_aggregations(), 50);
//! ```

#![deny(missing_docs)]

pub mod hierarchy;
pub mod schedule;
pub mod tier;

pub use hierarchy::{Hierarchy, WorkerId};
pub use schedule::{Schedule, ScheduleError, Tick};
pub use tier::{LinkClass, TierAggregation, TierPath, TierSpec, TierTree};
pub use weights::Weights;

pub mod weights {
    //! Data-size weights `D_{i,ℓ}/D_ℓ` and `D_ℓ/D` used by every
    //! aggregation in Algorithm 1.

    use serde::{Deserialize, Serialize};

    use crate::hierarchy::Hierarchy;

    /// Data-size weights derived from per-worker sample counts.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Weights {
        worker_samples: Vec<u64>,
        edge_samples: Vec<u64>,
        total: u64,
        edge_of_worker: Vec<usize>,
    }

    impl Weights {
        /// Builds weights from per-worker sample counts, in flat worker
        /// order (see [`Hierarchy::flat_index`]).
        ///
        /// # Panics
        ///
        /// Panics if `samples.len() != hierarchy.num_workers()`, or if any
        /// edge ends up with zero total samples.
        pub fn from_samples(hierarchy: &Hierarchy, samples: &[u64]) -> Self {
            assert_eq!(
                samples.len(),
                hierarchy.num_workers(),
                "need one sample count per worker"
            );
            let mut edge_samples = vec![0u64; hierarchy.num_edges()];
            let mut edge_of_worker = vec![0usize; hierarchy.num_workers()];
            for w in hierarchy.workers() {
                let flat = hierarchy.flat_index(w);
                edge_samples[w.edge] += samples[flat];
                edge_of_worker[flat] = w.edge;
            }
            for (e, &n) in edge_samples.iter().enumerate() {
                assert!(n > 0, "edge {e} has zero data samples");
            }
            let total = edge_samples.iter().sum();
            Weights {
                worker_samples: samples.to_vec(),
                edge_samples,
                total,
                edge_of_worker,
            }
        }

        /// Uniform weights: every worker holds one "unit" of data.
        pub fn uniform(hierarchy: &Hierarchy) -> Self {
            Self::from_samples(hierarchy, &vec![1; hierarchy.num_workers()])
        }

        /// `D_{i,ℓ}/D_ℓ`: the worker's share within its edge.
        pub fn worker_in_edge(&self, flat_worker: usize) -> f64 {
            let edge = self.edge_of_worker[flat_worker];
            self.worker_samples[flat_worker] as f64 / self.edge_samples[edge] as f64
        }

        /// `D_ℓ/D`: the edge's share of all data.
        pub fn edge_in_total(&self, edge: usize) -> f64 {
            self.edge_samples[edge] as f64 / self.total as f64
        }

        /// `D_{i,ℓ}/D`: the worker's share of all data.
        pub fn worker_in_total(&self, flat_worker: usize) -> f64 {
            self.worker_samples[flat_worker] as f64 / self.total as f64
        }

        /// Raw sample count of a worker.
        pub fn worker_samples(&self, flat_worker: usize) -> u64 {
            self.worker_samples[flat_worker]
        }

        /// Total samples across the system (`D`).
        pub fn total_samples(&self) -> u64 {
            self.total
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn weights_sum_to_one_per_edge_and_total() {
            let h = Hierarchy::new(vec![2, 3]);
            let w = Weights::from_samples(&h, &[10, 30, 5, 5, 10]);
            // Edge 0: workers 0,1 → 40 samples.
            assert!((w.worker_in_edge(0) - 0.25).abs() < 1e-12);
            assert!((w.worker_in_edge(1) - 0.75).abs() < 1e-12);
            // Edge shares: 40/60 and 20/60.
            assert!((w.edge_in_total(0) - 2.0 / 3.0).abs() < 1e-12);
            assert!((w.edge_in_total(1) - 1.0 / 3.0).abs() < 1e-12);
            // Global shares sum to 1.
            let total: f64 = (0..5).map(|i| w.worker_in_total(i)).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert_eq!(w.total_samples(), 60);
            assert_eq!(w.worker_samples(1), 30);
        }

        #[test]
        #[should_panic(expected = "zero data samples")]
        fn zero_edge_panics() {
            let h = Hierarchy::new(vec![1, 1]);
            let _ = Weights::from_samples(&h, &[5, 0]);
        }

        #[test]
        fn uniform_weights() {
            let h = Hierarchy::balanced(2, 2);
            let w = Weights::uniform(&h);
            assert_eq!(w.worker_in_edge(0), 0.5);
            assert_eq!(w.edge_in_total(1), 0.5);
        }
    }
}
