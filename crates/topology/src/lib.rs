//! Multi-tier network topology substrate for the HierAdMo reproduction.
//!
//! The paper's system model (Section III-A) is one cloud server, `L` edge
//! nodes and `N` workers, with edge node `ℓ` serving `C_ℓ` workers and every
//! quantity aggregated by data-size weights `D_{i,ℓ}/D_ℓ` and `D_ℓ/D`.
//! [`Hierarchy`] captures the tree, [`Weights`] the data-size weights, and
//! [`Schedule`] the aggregation timing `T = K·τ = P·τ·π`.
//!
//! Two-tier baselines (FedAvg, SlowMo, …) run on a *degenerate* hierarchy
//! with a single edge node ([`Hierarchy::two_tier`]) and `π = 1`, matching
//! the paper's fairness rule that two-tier `τ` equals three-tier `τ·π`.
//!
//! # Example
//!
//! ```
//! use hieradmo_topology::{Hierarchy, Schedule};
//!
//! // Table II setting: 2 edges × 2 workers, τ = 10, π = 2, T = 1000.
//! let h = Hierarchy::balanced(2, 2);
//! assert_eq!(h.num_workers(), 4);
//! let s = Schedule::three_tier(10, 2, 1000).unwrap();
//! assert_eq!(s.num_edge_aggregations(), 100);
//! assert_eq!(s.num_cloud_aggregations(), 50);
//! ```

#![deny(missing_docs)]

pub mod elastic;
pub mod hierarchy;
pub mod schedule;
pub mod tier;

pub use elastic::{
    churn_stream_seed, ChurnPlan, ElasticSnapshot, Placement, ScheduledEvent, TopologyEvent,
    TopologyVersion, CHURN_SEED_SALT,
};
pub use hierarchy::{Hierarchy, WorkerId};
pub use schedule::{Schedule, ScheduleError, Tick};
pub use tier::{LinkClass, TierAggregation, TierPath, TierSpec, TierTree};
pub use weights::Weights;

pub mod weights {
    //! Data-size weights `D_{i,ℓ}/D_ℓ` and `D_ℓ/D` used by every
    //! aggregation in Algorithm 1.

    use serde::{Deserialize, Serialize};

    use crate::hierarchy::Hierarchy;

    /// Data-size weights derived from per-worker sample counts.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    pub struct Weights {
        worker_samples: Vec<u64>,
        edge_samples: Vec<u64>,
        total: u64,
        edge_of_worker: Vec<usize>,
        /// Full-population edge data totals, when the flat workers are a
        /// sampled *cohort* of a larger virtual population (see
        /// `core::population`). `None` (the default, and the only value
        /// older serialized forms can carry) means the workers *are* the
        /// population and cross-edge shares come from `edge_samples`.
        #[serde(default)]
        population: Option<PopulationShares>,
    }

    /// Cross-edge data shares of the full registered population, carried
    /// alongside cohort weights so `D_ℓ/D` reflects *all* of edge ℓ's
    /// data while `D_{i,ℓ}/D_ℓ` renormalizes within the sampled cohort —
    /// the partition-of-unity split client sampling needs.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct PopulationShares {
        edge_samples: Vec<u64>,
        total: u64,
    }

    impl Weights {
        /// Builds weights from per-worker sample counts, in flat worker
        /// order (see [`Hierarchy::flat_index`]).
        ///
        /// # Panics
        ///
        /// Panics if `samples.len() != hierarchy.num_workers()`, or if any
        /// edge ends up with zero total samples.
        pub fn from_samples(hierarchy: &Hierarchy, samples: &[u64]) -> Self {
            assert_eq!(
                samples.len(),
                hierarchy.num_workers(),
                "need one sample count per worker"
            );
            let mut edge_samples = vec![0u64; hierarchy.num_edges()];
            let mut edge_of_worker = vec![0usize; hierarchy.num_workers()];
            for w in hierarchy.workers() {
                let flat = hierarchy.flat_index(w);
                edge_samples[w.edge] += samples[flat];
                edge_of_worker[flat] = w.edge;
            }
            for (e, &n) in edge_samples.iter().enumerate() {
                assert!(n > 0, "edge {e} has zero data samples");
            }
            let total = edge_samples.iter().sum();
            Weights {
                worker_samples: samples.to_vec(),
                edge_samples,
                total,
                edge_of_worker,
                population: None,
            }
        }

        /// Uniform weights: every worker holds one "unit" of data.
        pub fn uniform(hierarchy: &Hierarchy) -> Self {
            Self::from_samples(hierarchy, &vec![1; hierarchy.num_workers()])
        }

        /// Builds *cohort* weights: the flat workers are a per-round sample
        /// of a larger registered population whose per-edge data totals are
        /// `population_edge_samples`. Within an edge, shares renormalize
        /// over the cohort ([`Weights::worker_in_edge`] sums to 1 over the
        /// sampled workers); across edges, shares keep the full-population
        /// proportions ([`Weights::edge_in_total`] is `Dℓ/D` of *all*
        /// registered data, not just the sampled slice).
        ///
        /// # Panics
        ///
        /// Panics on the [`Weights::from_samples`] conditions, on a length
        /// mismatch between `population_edge_samples` and the hierarchy's
        /// edges, or on a zero-data population edge.
        pub fn from_cohort(
            hierarchy: &Hierarchy,
            cohort_samples: &[u64],
            population_edge_samples: Vec<u64>,
        ) -> Self {
            assert_eq!(
                population_edge_samples.len(),
                hierarchy.num_edges(),
                "need one population data total per edge"
            );
            for (e, &n) in population_edge_samples.iter().enumerate() {
                assert!(n > 0, "population edge {e} has zero data samples");
            }
            let mut w = Self::from_samples(hierarchy, cohort_samples);
            let total = population_edge_samples.iter().sum();
            w.population = Some(PopulationShares {
                edge_samples: population_edge_samples,
                total,
            });
            w
        }

        /// Replaces one edge's cohort sample counts in place (the per-round
        /// re-materialization path: a fresh cohort arrives, the edge's
        /// in-cohort denominators move with it, the population cross-edge
        /// shares stay put). The slice must match the edge's worker count.
        ///
        /// # Panics
        ///
        /// Panics if `edge` is out of range, the length differs from the
        /// edge's worker count, or the new cohort has zero total samples.
        pub fn set_edge_cohort(&mut self, edge: usize, samples: &[u64]) {
            let start = self.edge_of_worker.partition_point(|&e| e < edge);
            let end = self.edge_of_worker.partition_point(|&e| e <= edge);
            assert!(start < end, "edge {edge} out of range or empty");
            assert_eq!(
                samples.len(),
                end - start,
                "edge {edge} holds {} workers",
                end - start
            );
            let new_edge_total: u64 = samples.iter().sum();
            assert!(new_edge_total > 0, "edge {edge} cohort has zero samples");
            self.worker_samples[start..end].copy_from_slice(samples);
            self.total = self.total - self.edge_samples[edge] + new_edge_total;
            self.edge_samples[edge] = new_edge_total;
        }

        /// `D_{i,ℓ}/D_ℓ`: the worker's share within its edge.
        pub fn worker_in_edge(&self, flat_worker: usize) -> f64 {
            let edge = self.edge_of_worker[flat_worker];
            self.worker_samples[flat_worker] as f64 / self.edge_samples[edge] as f64
        }

        /// `D_ℓ/D`: the edge's share of all data — of the full registered
        /// population when these are cohort weights ([`Weights::from_cohort`]).
        pub fn edge_in_total(&self, edge: usize) -> f64 {
            match &self.population {
                Some(p) => p.edge_samples[edge] as f64 / p.total as f64,
                None => self.edge_samples[edge] as f64 / self.total as f64,
            }
        }

        /// `D_{i,ℓ}/D`: the worker's share of all data. Under cohort
        /// weights this composes the in-cohort edge share with the
        /// population cross-edge share, so shares still sum to 1.
        pub fn worker_in_total(&self, flat_worker: usize) -> f64 {
            match &self.population {
                Some(_) => {
                    let edge = self.edge_of_worker[flat_worker];
                    self.worker_in_edge(flat_worker) * self.edge_in_total(edge)
                }
                None => self.worker_samples[flat_worker] as f64 / self.total as f64,
            }
        }

        /// Raw sample count of a worker.
        pub fn worker_samples(&self, flat_worker: usize) -> u64 {
            self.worker_samples[flat_worker]
        }

        /// Total samples across the system (`D`).
        pub fn total_samples(&self) -> u64 {
            self.total
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn weights_sum_to_one_per_edge_and_total() {
            let h = Hierarchy::new(vec![2, 3]);
            let w = Weights::from_samples(&h, &[10, 30, 5, 5, 10]);
            // Edge 0: workers 0,1 → 40 samples.
            assert!((w.worker_in_edge(0) - 0.25).abs() < 1e-12);
            assert!((w.worker_in_edge(1) - 0.75).abs() < 1e-12);
            // Edge shares: 40/60 and 20/60.
            assert!((w.edge_in_total(0) - 2.0 / 3.0).abs() < 1e-12);
            assert!((w.edge_in_total(1) - 1.0 / 3.0).abs() < 1e-12);
            // Global shares sum to 1.
            let total: f64 = (0..5).map(|i| w.worker_in_total(i)).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert_eq!(w.total_samples(), 60);
            assert_eq!(w.worker_samples(1), 30);
        }

        #[test]
        #[should_panic(expected = "zero data samples")]
        fn zero_edge_panics() {
            let h = Hierarchy::new(vec![1, 1]);
            let _ = Weights::from_samples(&h, &[5, 0]);
        }

        #[test]
        fn uniform_weights() {
            let h = Hierarchy::balanced(2, 2);
            let w = Weights::uniform(&h);
            assert_eq!(w.worker_in_edge(0), 0.5);
            assert_eq!(w.edge_in_total(1), 0.5);
        }

        #[test]
        fn cohort_weights_mix_cohort_and_population_shares() {
            // 2-worker cohorts per edge, drawn from a population where
            // edge 0 owns 3/4 of the data.
            let h = Hierarchy::balanced(2, 2);
            let w = Weights::from_cohort(&h, &[10, 30, 5, 15], vec![300, 100]);
            // In-edge shares renormalize over the cohort…
            assert!((w.worker_in_edge(0) - 0.25).abs() < 1e-12);
            assert!((w.worker_in_edge(1) - 0.75).abs() < 1e-12);
            // …cross-edge shares are population shares, not 40/60 vs 20/60.
            assert!((w.edge_in_total(0) - 0.75).abs() < 1e-12);
            assert!((w.edge_in_total(1) - 0.25).abs() < 1e-12);
            // worker_in_total composes the two and still partitions unity.
            let total: f64 = (0..4).map(|i| w.worker_in_total(i)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }

        #[test]
        fn set_edge_cohort_replaces_one_edge_in_place() {
            let h = Hierarchy::new(vec![2, 3]);
            let mut w = Weights::from_cohort(&h, &[10, 30, 5, 5, 10], vec![100, 100]);
            w.set_edge_cohort(0, &[7, 1]);
            assert!((w.worker_in_edge(0) - 7.0 / 8.0).abs() < 1e-12);
            assert!((w.worker_in_edge(1) - 1.0 / 8.0).abs() < 1e-12);
            // Edge 1 untouched; population shares untouched.
            assert!((w.worker_in_edge(2) - 0.25).abs() < 1e-12);
            assert!((w.edge_in_total(0) - 0.5).abs() < 1e-12);
        }

        #[test]
        #[should_panic(expected = "zero samples")]
        fn set_edge_cohort_rejects_zero_total() {
            let h = Hierarchy::balanced(2, 1);
            let mut w = Weights::uniform(&h);
            w.set_edge_cohort(0, &[0]);
        }

        #[test]
        #[should_panic(expected = "zero data samples")]
        fn cohort_rejects_zero_population_edge() {
            let h = Hierarchy::balanced(2, 1);
            let _ = Weights::from_cohort(&h, &[1, 1], vec![5, 0]);
        }

        #[test]
        fn plain_weights_serde_is_unchanged_and_population_round_trips() {
            let h = Hierarchy::balanced(2, 2);
            let plain = Weights::uniform(&h);
            let json = serde_json::to_string(&plain).unwrap();
            let back: Weights = serde_json::from_str(&json).unwrap();
            assert_eq!(back, plain);
            // Serialized forms that predate the population field (no
            // `population` key at all) still deserialize, to `None`.
            let legacy = json.replace(",\"population\":null", "");
            assert_ne!(legacy, json, "expected the population key in the wire form");
            let back: Weights = serde_json::from_str(&legacy).unwrap();
            assert_eq!(back, plain);

            let cohort = Weights::from_cohort(&h, &[1, 1, 1, 1], vec![9, 3]);
            let back: Weights =
                serde_json::from_str(&serde_json::to_string(&cohort).unwrap()).unwrap();
            assert_eq!(back, cohort);
            assert!((back.edge_in_total(0) - 0.75).abs() < 1e-12);
        }
    }
}
