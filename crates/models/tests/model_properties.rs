//! Property-based tests over randomized model architectures: the
//! flat-parameter contract every federated algorithm depends on.

use proptest::prelude::*;

use hieradmo_data::synthetic::{generate, SyntheticSpec};
use hieradmo_data::{Dataset, FeatureShape};
use hieradmo_models::{zoo, Model, Sequential};
use hieradmo_tensor::Vector;

fn dataset(classes: usize, dim: usize, seed: u64) -> Dataset {
    let spec = SyntheticSpec {
        num_classes: classes,
        shape: FeatureShape::Flat(dim),
        noise: 0.5,
        prototype_scale: 1.0,
        max_shift: 0,
        class_group: 1,
    };
    generate(&spec, 4, 1, seed).train
}

/// Builds one of the flat-input model families, chosen by `arch`.
fn build(arch: u8, data: &Dataset, seed: u64) -> Sequential {
    match arch % 3 {
        0 => zoo::linear_regression(data, seed),
        1 => zoo::logistic_regression(data, seed),
        _ => zoo::mlp(data, 8, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// params → set_params is the identity for every architecture, and
    /// set_params(params + δ) round-trips exactly.
    #[test]
    fn params_roundtrip(
        arch in 0u8..3,
        classes in 2usize..6,
        dim in 2usize..12,
        seed in 0u64..100,
        delta in -2.0f32..2.0,
    ) {
        let data = dataset(classes, dim, seed);
        let mut model = build(arch, &data, seed);
        let p = model.params();
        prop_assert_eq!(p.len(), model.dim());
        let shifted = &p + &Vector::filled(p.len(), delta);
        model.set_params(&shifted);
        prop_assert_eq!(model.params(), shifted);
    }

    /// The gradient of a batch is the mean of per-sample gradients.
    #[test]
    fn batch_gradient_is_mean_of_samples(
        arch in 0u8..3,
        seed in 0u64..100,
    ) {
        let data = dataset(3, 6, seed);
        let model = build(arch, &data, seed);
        let idx: Vec<usize> = (0..data.len()).collect();
        let (_, batch_grad) = model.loss_and_grad(&data, &idx);
        let mut mean = Vector::zeros(model.dim());
        for &i in &idx {
            let (_, g) = model.loss_and_grad(&data, &[i]);
            mean.axpy(1.0 / idx.len() as f32, &g);
        }
        let gap = batch_grad.distance(&mean);
        prop_assert!(gap < 1e-3 * (1.0 + batch_grad.norm()),
            "batch grad differs from per-sample mean by {gap}");
    }

    /// Model output is deterministic in the parameters.
    #[test]
    fn output_is_deterministic(
        arch in 0u8..3,
        seed in 0u64..100,
    ) {
        let data = dataset(3, 5, seed);
        let model = build(arch, &data, seed);
        let x = &data.sample(0).features;
        prop_assert_eq!(model.output(x), model.output(x));
    }

    /// A gradient step along −g decreases the batch loss for a small
    /// enough step (descent direction property).
    #[test]
    fn negative_gradient_is_a_descent_direction(
        arch in 0u8..3,
        seed in 0u64..100,
    ) {
        let data = dataset(3, 6, seed);
        let mut model = build(arch, &data, seed);
        let idx: Vec<usize> = (0..data.len()).collect();
        let (loss0, g) = model.loss_and_grad(&data, &idx);
        prop_assume!(g.norm() > 1e-4); // skip (near-)stationary draws
        let mut p = model.params();
        p.axpy(-1e-3 / g.norm(), &g);
        model.set_params(&p);
        let loss1 = model.loss(&data, &idx);
        prop_assert!(loss1 <= loss0 + 1e-5,
            "loss rose along −∇F: {loss0} -> {loss1}");
    }

    /// Evaluation accuracy is always a valid frequency.
    #[test]
    fn accuracy_is_a_frequency(
        arch in 0u8..3,
        seed in 0u64..100,
    ) {
        let data = dataset(4, 5, seed);
        let model = build(arch, &data, seed);
        let eval = model.evaluate(&data);
        prop_assert!((0.0..=1.0).contains(&eval.accuracy));
        prop_assert!(eval.loss.is_finite());
        // Accuracy is a multiple of 1/n.
        let n = data.len() as f64;
        let scaled = eval.accuracy * n;
        prop_assert!((scaled - scaled.round()).abs() < 1e-9);
    }
}
