//! The layer framework: typed signals, per-sample forward caches, and exact
//! backward passes that accumulate parameter gradients.
//!
//! Layers process one sample at a time (mini-batch gradients are averaged by
//! [`crate::Sequential`]); a forward pass returns both the output signal and
//! a [`Cache`] holding exactly what the backward pass needs.

use std::cell::RefCell;
use std::fmt;

use hieradmo_tensor::{conv, kernels, ops, Matrix, Tensor4, Vector};

/// A value flowing between layers: either a flat vector or a single-sample
/// NCHW image tensor (`n = 1`).
#[derive(Debug, Clone)]
pub enum Signal {
    /// Flat activation vector.
    Flat(Vector),
    /// Image activations, batch dimension always 1.
    Image(Tensor4),
}

impl Signal {
    /// Unwraps a flat signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal is an image.
    pub fn expect_flat(&self) -> &Vector {
        match self {
            Signal::Flat(v) => v,
            Signal::Image(t) => panic!("expected flat signal, got image {:?}", t.shape()),
        }
    }

    /// Unwraps an image signal.
    ///
    /// # Panics
    ///
    /// Panics if the signal is flat.
    pub fn expect_image(&self) -> &Tensor4 {
        match self {
            Signal::Image(t) => t,
            Signal::Flat(v) => panic!("expected image signal, got flat of len {}", v.len()),
        }
    }

    /// Shape descriptor of this signal.
    pub fn shape(&self) -> SignalShape {
        match self {
            Signal::Flat(v) => SignalShape::Flat(v.len()),
            Signal::Image(t) => {
                let (_, c, h, w) = t.shape();
                SignalShape::Image {
                    channels: c,
                    height: h,
                    width: w,
                }
            }
        }
    }
}

/// Static shape of a [`Signal`], used to validate layer stacks at
/// construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalShape {
    /// Flat vector of the given length.
    Flat(usize),
    /// Single-sample image.
    Image {
        /// Channels.
        channels: usize,
        /// Height.
        height: usize,
        /// Width.
        width: usize,
    },
}

impl SignalShape {
    /// Total number of scalars.
    pub fn len(&self) -> usize {
        match *self {
            SignalShape::Flat(d) => d,
            SignalShape::Image {
                channels,
                height,
                width,
            } => channels * height * width,
        }
    }

    /// Returns `true` for a zero-length shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Forward-pass cache consumed by the matching backward pass.
#[derive(Debug, Clone)]
pub enum Cache {
    /// Dense layer: the input vector.
    Dense(Vector),
    /// ReLU: the pre-activation input.
    Relu(Signal),
    /// Convolution: the input tensor.
    Conv(Tensor4),
    /// Max pooling: input shape and winner indices.
    MaxPool {
        /// Input tensor shape.
        shape: (usize, usize, usize, usize),
        /// Flat index of each pooled maximum.
        argmax: Vec<usize>,
    },
    /// Global average pooling: the input shape.
    GlobalAvgPool((usize, usize, usize, usize)),
    /// Flatten: the input shape.
    Flatten((usize, usize, usize, usize)),
    /// Residual block: caches of the body, optional projection cache, and
    /// the pre-activation sum.
    Residual {
        /// Caches of body layers, in forward order.
        body: Vec<Cache>,
        /// Cache of the 1×1 projection conv, when present.
        projection: Option<Box<Cache>>,
        /// `body(x) + skip(x)` before the final ReLU.
        sum: Tensor4,
    },
}

/// A neural-network layer with exact analytic gradients.
///
/// Parameter I/O uses a deterministic flat layout so that
/// [`crate::Sequential`] can expose the whole network as one flat vector:
/// `write_params` appends this layer's parameters and `read_params` consumes
/// the same number of leading values from `src`.
///
/// `backward` **accumulates** (`+=`) into `grad_params` — callers zero the
/// buffer once per mini-batch and divide by the batch size afterwards.
pub trait Layer: fmt::Debug + Send {
    /// Number of trainable parameters in this layer.
    fn param_len(&self) -> usize;

    /// Appends this layer's parameters to `out` in layout order.
    fn write_params(&self, out: &mut Vec<f32>);

    /// Loads parameters from the front of `src`; returns how many values
    /// were consumed (always equal to [`Layer::param_len`]).
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than `param_len()`.
    fn read_params(&mut self, src: &[f32]) -> usize;

    /// Forward pass for one sample.
    ///
    /// # Panics
    ///
    /// Panics if the input signal kind/shape is incompatible.
    fn forward(&self, input: &Signal) -> (Signal, Cache);

    /// Backward pass: given the forward cache and the upstream gradient,
    /// accumulates parameter gradients into `grad_params` (this layer's
    /// segment, length `param_len()`) and returns the gradient w.r.t. the
    /// layer input.
    ///
    /// # Panics
    ///
    /// Panics if the cache variant does not belong to this layer or
    /// `grad_params.len() != param_len()`.
    fn backward(&self, cache: &Cache, grad_out: &Signal, grad_params: &mut [f32]) -> Signal;

    /// Output shape for a given input shape (construction-time validation).
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    fn output_shape(&self, input: SignalShape) -> SignalShape;

    /// Whether this layer participates in [`crate::Sequential`]'s batched
    /// flat fast path, which stacks a mini-batch's activations into one
    /// row-major matrix and runs each dense product as a single
    /// [`kernels::matmul_bt`] call instead of per-sample `matvec`s.
    ///
    /// A layer may opt in only if (a) it maps flat signals to flat signals
    /// and (b) every row of [`Layer::forward_flat_batch`]'s output is
    /// bitwise identical to the flat [`Layer::forward`] of that row (for
    /// non-NaN activations) — the determinism suites pin full-run bit
    /// equality on top of this contract.
    fn supports_flat_batch(&self) -> bool {
        false
    }

    /// Batched flat forward: `inputs` holds one sample per row; writes one
    /// output row per sample into `out` (pre-sized by the caller). Only
    /// called when [`Layer::supports_flat_batch`] is `true`.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no batched form or the shapes mismatch.
    fn forward_flat_batch(&self, _inputs: &Matrix, _out: &mut Matrix) {
        panic!("layer has no batched flat forward");
    }

    /// Rebuilds the per-sample forward cache from the layer's flat input
    /// row — exactly what [`Layer::forward`] would have cached for that
    /// sample — so the batched forward composes with the unchanged
    /// per-sample backward. Only called when
    /// [`Layer::supports_flat_batch`] is `true`.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no batched form.
    fn flat_cache(&self, _input: &[f32]) -> Cache {
        panic!("layer has no batched flat cache");
    }

    /// Clones the layer into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully-connected layer `y = W·x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Vector,
}

impl Dense {
    /// Creates a dense layer from a weight matrix and bias.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.rows()`.
    pub fn new(w: Matrix, b: Vector) -> Self {
        assert_eq!(b.len(), w.rows(), "dense bias/row mismatch");
        Dense { w, b }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.cols()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.rows()
    }
}

impl Layer for Dense {
    fn param_len(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(self.b.as_slice());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let (wn, bn) = (self.w.len(), self.b.len());
        assert!(src.len() >= wn + bn, "dense read_params underflow");
        self.w.as_mut_slice().copy_from_slice(&src[..wn]);
        self.b.as_mut_slice().copy_from_slice(&src[wn..wn + bn]);
        wn + bn
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let x = input.expect_flat();
        let mut y = self.w.matvec(x);
        y += &self.b;
        (Signal::Flat(y), Cache::Dense(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, grad_params: &mut [f32]) -> Signal {
        let x = match cache {
            Cache::Dense(x) => x,
            other => panic!("dense backward got wrong cache: {other:?}"),
        };
        let g = grad_out.expect_flat();
        assert_eq!(grad_params.len(), self.param_len(), "dense grad segment");
        let wn = self.w.len();
        // grad_w += g xᵀ (accumulate straight into the flat segment).
        let cols = self.w.cols();
        for (r, &gr) in g.iter().enumerate() {
            if gr == 0.0 {
                continue;
            }
            let row = &mut grad_params[r * cols..(r + 1) * cols];
            kernels::axpy(row, gr, x.as_slice());
        }
        // grad_b += g
        for (dst, &gv) in grad_params[wn..].iter_mut().zip(g.iter()) {
            *dst += gv;
        }
        Signal::Flat(self.w.matvec_transposed(g))
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        assert_eq!(
            input,
            SignalShape::Flat(self.w.cols()),
            "dense layer expects flat input of {}",
            self.w.cols()
        );
        SignalShape::Flat(self.w.rows())
    }

    fn supports_flat_batch(&self) -> bool {
        true
    }

    fn forward_flat_batch(&self, inputs: &Matrix, out: &mut Matrix) {
        let (n, k, m) = (inputs.rows(), inputs.cols(), self.w.rows());
        assert_eq!(k, self.w.cols(), "dense batch input width mismatch");
        assert_eq!((out.rows(), out.cols()), (n, m), "dense batch out shape");
        // One GEMM for the whole mini-batch: `W` is already row-major
        // `m × k`, i.e. the transposed right-hand side `matmul_bt` wants.
        // Each output element is `dot(sample_row, w_row)` — bitwise equal
        // to `matvec`'s `dot(w_row, sample_row)` since the lane-level
        // multiply commutes — and the bias add is the same `axpy(1.0, b)`
        // call `forward` issues per sample.
        kernels::matmul_bt(
            inputs.as_slice(),
            self.w.as_slice(),
            out.as_mut_slice(),
            n,
            m,
            k,
        );
        for s in 0..n {
            kernels::axpy(
                &mut out.as_mut_slice()[s * m..(s + 1) * m],
                1.0,
                self.b.as_slice(),
            );
        }
    }

    fn flat_cache(&self, input: &[f32]) -> Cache {
        Cache::Dense(Vector::from(input.to_vec()))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Element-wise ReLU over either signal kind.
#[derive(Debug, Clone, Default)]
pub struct Relu;

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu
    }
}

impl Layer for Relu {
    fn param_len(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let out = match input {
            Signal::Flat(v) => Signal::Flat(ops::relu(v)),
            Signal::Image(t) => {
                let mut o = t.clone();
                ops::relu_in_place(o.as_mut_slice());
                Signal::Image(o)
            }
        };
        (out, Cache::Relu(input.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, _grad_params: &mut [f32]) -> Signal {
        let input = match cache {
            Cache::Relu(s) => s,
            other => panic!("relu backward got wrong cache: {other:?}"),
        };
        match (input, grad_out) {
            (Signal::Flat(x), Signal::Flat(g)) => Signal::Flat(ops::relu_backward(x, g)),
            (Signal::Image(x), Signal::Image(g)) => {
                let mut out = g.clone();
                for (o, &xv) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    if xv <= 0.0 {
                        *o = 0.0;
                    }
                }
                Signal::Image(out)
            }
            _ => panic!("relu backward signal kind mismatch"),
        }
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        input
    }

    fn supports_flat_batch(&self) -> bool {
        true
    }

    fn forward_flat_batch(&self, inputs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            (out.rows(), out.cols()),
            (inputs.rows(), inputs.cols()),
            "relu batch shape"
        );
        // Same `max(0.0)` expression as `ops::relu`, element for element.
        for (o, &x) in out.as_mut_slice().iter_mut().zip(inputs.as_slice()) {
            *o = x.max(0.0);
        }
    }

    fn flat_cache(&self, input: &[f32]) -> Cache {
        Cache::Relu(Signal::Flat(Vector::from(input.to_vec())))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Conv
// ---------------------------------------------------------------------------

/// 2-D convolution, stride 1, symmetric zero padding.
///
/// Each layer instance carries its own [`conv::Im2colScratch`] so the
/// im2col patch/product buffers are recycled across forward passes —
/// model replicas are per-thread (`Layer` is `Send`, not `Sync`), so the
/// `RefCell` is never contended.
#[derive(Debug)]
pub struct Conv {
    w: Tensor4,
    b: Vec<f32>,
    pad: usize,
    scratch: RefCell<conv::Im2colScratch>,
}

impl Clone for Conv {
    fn clone(&self) -> Self {
        // Fresh (empty) scratch: each replica grows its own buffers.
        Conv {
            w: self.w.clone(),
            b: self.b.clone(),
            pad: self.pad,
            scratch: RefCell::new(conv::Im2colScratch::new()),
        }
    }
}

impl Conv {
    /// Creates a convolution from a `(c_out, c_in, kh, kw)` kernel, per-
    /// output-channel bias, and padding.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != c_out`.
    pub fn new(w: Tensor4, b: Vec<f32>, pad: usize) -> Self {
        assert_eq!(b.len(), w.n(), "conv bias length mismatch");
        Conv {
            w,
            b,
            pad,
            scratch: RefCell::new(conv::Im2colScratch::new()),
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.w.n()
    }
}

impl Layer for Conv {
    fn param_len(&self) -> usize {
        self.w.len() + self.b.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let (wn, bn) = (self.w.len(), self.b.len());
        assert!(src.len() >= wn + bn, "conv read_params underflow");
        self.w.as_mut_slice().copy_from_slice(&src[..wn]);
        self.b.copy_from_slice(&src[wn..wn + bn]);
        wn + bn
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let x = input.expect_image();
        let mut y = Tensor4::zeros(0, 0, 0, 0);
        conv::conv2d_forward_into(
            x,
            &self.w,
            &self.b,
            self.pad,
            &mut self.scratch.borrow_mut(),
            &mut y,
        );
        (Signal::Image(y), Cache::Conv(x.clone()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, grad_params: &mut [f32]) -> Signal {
        let x = match cache {
            Cache::Conv(x) => x,
            other => panic!("conv backward got wrong cache: {other:?}"),
        };
        let g = grad_out.expect_image();
        assert_eq!(grad_params.len(), self.param_len(), "conv grad segment");
        let (gi, gw, gb) = conv::conv2d_backward(x, &self.w, self.pad, g);
        let wn = self.w.len();
        for (dst, &v) in grad_params[..wn].iter_mut().zip(gw.as_slice()) {
            *dst += v;
        }
        for (dst, &v) in grad_params[wn..].iter_mut().zip(gb.iter()) {
            *dst += v;
        }
        Signal::Image(gi)
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        let (channels, height, width) = match input {
            SignalShape::Image {
                channels,
                height,
                width,
            } => (channels, height, width),
            other => panic!("conv expects image input, got {other:?}"),
        };
        let (c_out, c_in, kh, kw) = self.w.shape();
        assert_eq!(channels, c_in, "conv input channel mismatch");
        SignalShape::Image {
            channels: c_out,
            height: height + 2 * self.pad - kh + 1,
            width: width + 2 * self.pad - kw + 1,
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// MaxPool2
// ---------------------------------------------------------------------------

/// 2×2 max pooling, stride 2.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2;

impl MaxPool2 {
    /// Creates a 2×2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2
    }
}

impl Layer for MaxPool2 {
    fn param_len(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let x = input.expect_image();
        let res = conv::max_pool2x2_forward(x);
        (
            Signal::Image(res.output),
            Cache::MaxPool {
                shape: x.shape(),
                argmax: res.argmax,
            },
        )
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, _grad_params: &mut [f32]) -> Signal {
        let (shape, argmax) = match cache {
            Cache::MaxPool { shape, argmax } => (*shape, argmax),
            other => panic!("maxpool backward got wrong cache: {other:?}"),
        };
        Signal::Image(conv::max_pool2x2_backward(
            shape,
            argmax,
            grad_out.expect_image(),
        ))
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        match input {
            SignalShape::Image {
                channels,
                height,
                width,
            } => {
                assert!(height >= 2 && width >= 2, "maxpool needs ≥2x2 input");
                SignalShape::Image {
                    channels,
                    height: height / 2,
                    width: width / 2,
                }
            }
            other => panic!("maxpool expects image input, got {other:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

/// Global average pooling producing a flat per-channel vector (ResNet head).
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool;

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool
    }
}

impl Layer for GlobalAvgPool {
    fn param_len(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let x = input.expect_image();
        let pooled = conv::global_avg_pool_forward(x);
        let flat = pooled.flatten_sample(0);
        (Signal::Flat(flat), Cache::GlobalAvgPool(x.shape()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, _grad_params: &mut [f32]) -> Signal {
        let shape = match cache {
            Cache::GlobalAvgPool(s) => *s,
            other => panic!("gap backward got wrong cache: {other:?}"),
        };
        let g = grad_out.expect_flat();
        let (_, c, _, _) = shape;
        assert_eq!(g.len(), c, "gap upstream gradient length");
        let gt = Tensor4::from_data(1, c, 1, 1, g.as_slice().to_vec());
        Signal::Image(conv::global_avg_pool_backward(shape, &gt))
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        match input {
            SignalShape::Image { channels, .. } => SignalShape::Flat(channels),
            other => panic!("gap expects image input, got {other:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens an image signal to a vector (CNN conv→fc boundary).
#[derive(Debug, Clone, Default)]
pub struct Flatten;

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten
    }
}

impl Layer for Flatten {
    fn param_len(&self) -> usize {
        0
    }
    fn write_params(&self, _out: &mut Vec<f32>) {}
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let x = input.expect_image();
        (Signal::Flat(x.flatten_sample(0)), Cache::Flatten(x.shape()))
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, _grad_params: &mut [f32]) -> Signal {
        let (_, c, h, w) = match cache {
            Cache::Flatten(s) => *s,
            other => panic!("flatten backward got wrong cache: {other:?}"),
        };
        Signal::Image(Tensor4::from_flat_sample(grad_out.expect_flat(), c, h, w))
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        match input {
            SignalShape::Image { .. } => SignalShape::Flat(input.len()),
            other => panic!("flatten expects image input, got {other:?}"),
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------------

/// A ResNet basic block: `out = relu(body(x) + skip(x))` where `body` is
/// `conv3x3 → relu → conv3x3` and `skip` is identity or a 1×1 projection
/// conv when the channel count changes.
#[derive(Debug, Clone)]
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    projection: Option<Conv>,
}

impl Residual {
    /// Creates a residual block from body layers and an optional projection.
    ///
    /// The body must map an image to an image of the same spatial size as
    /// the skip path's output (validated at stack-construction time through
    /// [`Layer::output_shape`]).
    pub fn new(body: Vec<Box<dyn Layer>>, projection: Option<Conv>) -> Self {
        assert!(!body.is_empty(), "residual body cannot be empty");
        Residual { body, projection }
    }
}

impl Layer for Residual {
    fn param_len(&self) -> usize {
        self.body.iter().map(|l| l.param_len()).sum::<usize>()
            + self.projection.as_ref().map_or(0, Layer::param_len)
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        for l in &self.body {
            l.write_params(out);
        }
        if let Some(p) = &self.projection {
            p.write_params(out);
        }
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let mut off = 0;
        for l in &mut self.body {
            off += l.read_params(&src[off..]);
        }
        if let Some(p) = &mut self.projection {
            off += p.read_params(&src[off..]);
        }
        off
    }

    fn forward(&self, input: &Signal) -> (Signal, Cache) {
        let mut caches = Vec::with_capacity(self.body.len());
        let mut sig = input.clone();
        for l in &self.body {
            let (next, cache) = l.forward(&sig);
            sig = next;
            caches.push(cache);
        }
        let body_out = sig.expect_image().clone();
        let (skip, proj_cache) = match &self.projection {
            Some(p) => {
                let (s, c) = p.forward(input);
                (s.expect_image().clone(), Some(Box::new(c)))
            }
            None => (input.expect_image().clone(), None),
        };
        assert_eq!(
            body_out.shape(),
            skip.shape(),
            "residual body/skip shape mismatch"
        );
        let mut sum = body_out;
        for (s, &k) in sum.as_mut_slice().iter_mut().zip(skip.as_slice()) {
            *s += k;
        }
        let mut out = sum.clone();
        ops::relu_in_place(out.as_mut_slice());
        (
            Signal::Image(out),
            Cache::Residual {
                body: caches,
                projection: proj_cache,
                sum,
            },
        )
    }

    fn backward(&self, cache: &Cache, grad_out: &Signal, grad_params: &mut [f32]) -> Signal {
        let (body_caches, proj_cache, sum) = match cache {
            Cache::Residual {
                body,
                projection,
                sum,
            } => (body, projection, sum),
            other => panic!("residual backward got wrong cache: {other:?}"),
        };
        let g_out = grad_out.expect_image();
        // Through the final ReLU (mask by pre-activation sum).
        let mut g_sum = g_out.clone();
        for (g, &s) in g_sum.as_mut_slice().iter_mut().zip(sum.as_slice()) {
            if s <= 0.0 {
                *g = 0.0;
            }
        }
        let g_sum = Signal::Image(g_sum);

        // Body chain, in reverse, slicing the shared grad segment.
        let body_lens: Vec<usize> = self.body.iter().map(|l| l.param_len()).collect();
        let body_total: usize = body_lens.iter().sum();
        let mut offsets = Vec::with_capacity(self.body.len());
        let mut acc = 0;
        for &len in &body_lens {
            offsets.push(acc);
            acc += len;
        }
        let mut g = g_sum.clone();
        for i in (0..self.body.len()).rev() {
            let seg = &mut grad_params[offsets[i]..offsets[i] + body_lens[i]];
            g = self.body[i].backward(&body_caches[i], &g, seg);
        }
        let g_body_input = g.expect_image().clone();

        // Skip path.
        let g_skip_input = match (&self.projection, proj_cache) {
            (Some(p), Some(c)) => {
                let seg = &mut grad_params[body_total..];
                p.backward(c, &g_sum, seg).expect_image().clone()
            }
            (None, None) => g_sum.expect_image().clone(),
            _ => panic!("residual projection/cache mismatch"),
        };

        let mut g_in = g_body_input;
        for (a, &b) in g_in.as_mut_slice().iter_mut().zip(g_skip_input.as_slice()) {
            *a += b;
        }
        Signal::Image(g_in)
    }

    fn output_shape(&self, input: SignalShape) -> SignalShape {
        let mut shape = input;
        for l in &self.body {
            shape = l.output_shape(shape);
        }
        if let Some(p) = &self.projection {
            let skip = p.output_shape(input);
            assert_eq!(shape, skip, "residual body/projection shape mismatch");
        } else {
            assert_eq!(shape, input, "identity residual must preserve shape");
        }
        shape
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn dense_forward_backward_shapes() {
        let mut r = rng();
        let d = Dense::new(
            hieradmo_tensor::init::xavier_matrix(&mut r, 3, 4),
            Vector::zeros(3),
        );
        assert_eq!(d.param_len(), 15);
        let x = Signal::Flat(Vector::from(vec![1.0, 2.0, 3.0, 4.0]));
        let (y, cache) = d.forward(&x);
        assert_eq!(y.expect_flat().len(), 3);
        let mut gp = vec![0.0; 15];
        let gi = d.backward(
            &cache,
            &Signal::Flat(Vector::from(vec![1.0, 0.0, 0.0])),
            &mut gp,
        );
        assert_eq!(gi.expect_flat().len(), 4);
        // grad_b for the first output must be 1.
        assert_eq!(gp[12], 1.0);
        // grad_w row 0 is the input.
        assert_eq!(&gp[0..4], &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn param_roundtrip_dense_conv_residual() {
        let mut r = rng();
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(
                hieradmo_tensor::init::xavier_matrix(&mut r, 2, 3),
                Vector::from(vec![0.5, -0.5]),
            )),
            Box::new(Conv::new(
                hieradmo_tensor::init::he_conv(&mut r, 2, 1, 3, 3),
                vec![0.1, 0.2],
                1,
            )),
        ];
        for mut l in layers {
            let mut out = Vec::new();
            l.write_params(&mut out);
            assert_eq!(out.len(), l.param_len());
            let mutated: Vec<f32> = out.iter().map(|v| v + 1.0).collect();
            let consumed = l.read_params(&mutated);
            assert_eq!(consumed, l.param_len());
            let mut back = Vec::new();
            l.write_params(&mut back);
            assert_eq!(back, mutated);
        }
    }

    #[test]
    fn relu_layer_both_kinds() {
        let r = Relu::new();
        let (y, c) = r.forward(&Signal::Flat(Vector::from(vec![-1.0, 2.0])));
        assert_eq!(y.expect_flat().as_slice(), &[0.0, 2.0]);
        let g = r.backward(&c, &Signal::Flat(Vector::from(vec![3.0, 3.0])), &mut []);
        assert_eq!(g.expect_flat().as_slice(), &[0.0, 3.0]);

        let img = Tensor4::from_data(1, 1, 1, 2, vec![-1.0, 2.0]);
        let (y, c) = r.forward(&Signal::Image(img));
        assert_eq!(y.expect_image().as_slice(), &[0.0, 2.0]);
        let gimg = Tensor4::from_data(1, 1, 1, 2, vec![5.0, 5.0]);
        let g = r.backward(&c, &Signal::Image(gimg), &mut []);
        assert_eq!(g.expect_image().as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let f = Flatten::new();
        let img = Tensor4::from_data(1, 2, 1, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (y, c) = f.forward(&Signal::Image(img));
        assert_eq!(y.expect_flat().len(), 4);
        let g = f.backward(&c, &y, &mut []);
        assert_eq!(g.expect_image().shape(), (1, 2, 1, 2));
    }

    #[test]
    fn residual_identity_block_gradcheck_shape() {
        let mut r = rng();
        let body: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv::new(
                hieradmo_tensor::init::he_conv(&mut r, 2, 2, 3, 3),
                vec![0.0; 2],
                1,
            )),
            Box::new(Relu::new()),
            Box::new(Conv::new(
                hieradmo_tensor::init::he_conv(&mut r, 2, 2, 3, 3),
                vec![0.0; 2],
                1,
            )),
        ];
        let block = Residual::new(body, None);
        let shape = SignalShape::Image {
            channels: 2,
            height: 4,
            width: 4,
        };
        assert_eq!(block.output_shape(shape), shape);

        let x = Tensor4::from_data(
            1,
            2,
            4,
            4,
            (0..32).map(|i| (i as f32 * 0.1).sin()).collect(),
        );
        let (y, cache) = block.forward(&Signal::Image(x));
        assert_eq!(y.expect_image().shape(), (1, 2, 4, 4));
        let go = Tensor4::from_data(1, 2, 4, 4, vec![1.0; 32]);
        let mut gp = vec![0.0; block.param_len()];
        let gi = block.backward(&cache, &Signal::Image(go), &mut gp);
        assert_eq!(gi.expect_image().shape(), (1, 2, 4, 4));
        assert!(gp.iter().any(|&v| v != 0.0), "gradients must flow");
    }

    #[test]
    fn residual_projection_changes_channels() {
        let mut r = rng();
        let body: Vec<Box<dyn Layer>> = vec![Box::new(Conv::new(
            hieradmo_tensor::init::he_conv(&mut r, 4, 2, 3, 3),
            vec![0.0; 4],
            1,
        ))];
        let proj = Conv::new(
            hieradmo_tensor::init::he_conv(&mut r, 4, 2, 1, 1),
            vec![0.0; 4],
            0,
        );
        let block = Residual::new(body, Some(proj));
        let shape = SignalShape::Image {
            channels: 2,
            height: 4,
            width: 4,
        };
        let out = block.output_shape(shape);
        assert_eq!(
            out,
            SignalShape::Image {
                channels: 4,
                height: 4,
                width: 4
            }
        );
    }

    #[test]
    #[should_panic(expected = "expected flat signal")]
    fn dense_rejects_image_input() {
        let mut r = rng();
        let d = Dense::new(
            hieradmo_tensor::init::xavier_matrix(&mut r, 2, 2),
            Vector::zeros(2),
        );
        let img = Tensor4::zeros(1, 1, 2, 1);
        let _ = d.forward(&Signal::Image(img));
    }
}
