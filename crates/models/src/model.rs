//! The [`Model`] trait: the flat-parameter interface every federated
//! algorithm is written against.

use std::ops::Range;

use hieradmo_data::{Dataset, Target};
use hieradmo_tensor::{ops, Vector};

/// Loss and accuracy of a model over a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Mean loss over the dataset.
    pub loss: f64,
    /// Classification accuracy in `[0, 1]`; for pure-regression datasets
    /// this is the fraction of samples with prediction error below 0.5 per
    /// output (a serviceable "accuracy" analogue used only for reporting).
    pub accuracy: f64,
}

/// Unreduced evaluation sums over a slice of a dataset.
///
/// Partial sums from disjoint ranges can be [merged](EvalSums::merge) and
/// [finished](EvalSums::finish) into an [`Evaluation`]; the execution
/// engine evaluates fixed-size chunks in parallel and reduces them in a
/// fixed order so results are independent of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalSums {
    /// Sum of per-sample losses.
    pub loss_sum: f64,
    /// Number of correctly classified (or within-tolerance) samples.
    pub correct: usize,
    /// Number of samples covered.
    pub count: usize,
}

impl EvalSums {
    /// Folds another partial sum into this one. Reduction order matters for
    /// the `f64` loss sum; callers wanting determinism must merge in a
    /// fixed (e.g. chunk-index) order.
    pub fn merge(&mut self, other: &EvalSums) {
        self.loss_sum += other.loss_sum;
        self.correct += other.correct;
        self.count += other.count;
    }

    /// Reduces the sums to mean loss and accuracy (empty sums give zeros).
    pub fn finish(&self) -> Evaluation {
        let n = self.count.max(1) as f64;
        Evaluation {
            loss: self.loss_sum / n,
            accuracy: self.correct as f64 / n,
        }
    }
}

/// A trainable model seen through a flat parameter vector.
///
/// The federated algorithms in `hieradmo-core` call nothing but these
/// methods, so adding a model family automatically makes it available to
/// all eleven algorithms.
pub trait Model: Send {
    /// Number of scalar parameters.
    fn dim(&self) -> usize;

    /// Snapshots the parameters as a flat vector of length [`Model::dim`].
    fn params(&self) -> Vector;

    /// Overwrites the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dim()`.
    fn set_params(&mut self, params: &Vector);

    /// Mean loss and mean gradient over the given mini-batch of `data`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    fn loss_and_grad(&self, data: &Dataset, indices: &[usize]) -> (f32, Vector);

    /// Like [`Model::loss_and_grad`], but writes the gradient into `grad`
    /// instead of allocating a fresh vector.
    ///
    /// The default implementation delegates to [`Model::loss_and_grad`] and
    /// copies, so existing models keep working unchanged; allocation-aware
    /// models (e.g. `Sequential`) override it to accumulate directly into
    /// the buffer, making the training loop's gradient path allocation-free
    /// in steady state. The numeric result must be identical to
    /// [`Model::loss_and_grad`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    fn loss_and_grad_into(&self, data: &Dataset, indices: &[usize], grad: &mut Vector) -> f32 {
        let (loss, g) = self.loss_and_grad(data, indices);
        grad.copy_from(&g);
        loss
    }

    /// Raw model output for one feature vector (logits for classification
    /// heads, predictions for regression heads).
    fn output(&self, features: &Vector) -> Vector;

    /// Mean loss over a mini-batch (no gradient).
    fn loss(&self, data: &Dataset, indices: &[usize]) -> f32 {
        self.loss_and_grad(data, indices).0
    }

    /// Evaluates mean loss and accuracy over an entire dataset.
    fn evaluate(&self, data: &Dataset) -> Evaluation {
        self.evaluate_range(data, 0..data.len()).finish()
    }

    /// Unreduced loss/accuracy sums over `range` of `data` — the partial
    /// evaluation primitive behind deterministic parallel eval.
    ///
    /// Summing [`EvalSums`] from a fixed chunking of `0..data.len()` in
    /// chunk order reproduces [`Model::evaluate`]'s `f64` accumulation
    /// exactly for that chunking, regardless of which thread computed which
    /// chunk.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past the end of `data`.
    fn evaluate_range(&self, data: &Dataset, range: Range<usize>) -> EvalSums {
        evaluate_range_serial(self, data, range)
    }
}

/// The per-sample loop backing the [`Model::evaluate_range`] default —
/// exposed so implementations with a batched fast path (see
/// [`crate::Sequential`]) can fall back to the identical serial scoring
/// for architectures the fast path does not cover.
pub fn evaluate_range_serial<M: Model + ?Sized>(
    model: &M,
    data: &Dataset,
    range: Range<usize>,
) -> EvalSums {
    let mut sums = EvalSums::default();
    for i in range {
        let sample = data.sample(i);
        let out = model.output(&sample.features);
        score_sample(&mut sums, &out, &sample.target);
    }
    sums
}

/// Scores one model output against its target into `sums` — the shared
/// per-sample accumulation step of serial and batched evaluation (the
/// accumulation order over samples is what makes chunked parallel eval
/// bitwise reproducible, so every eval path must run exactly this).
pub fn score_sample(sums: &mut EvalSums, out: &Vector, target: &Target) {
    match target {
        Target::Class(c) => {
            sums.loss_sum += f64::from(ops::cross_entropy_loss(out, *c));
            if ops::argmax(out) == *c {
                sums.correct += 1;
            }
        }
        Target::Regression(y) => {
            sums.loss_sum += f64::from(ops::mse_loss(out, y));
            let close = out.iter().zip(y.iter()).all(|(p, t)| (p - t).abs() < 0.5);
            if close {
                sums.correct += 1;
            }
        }
    }
    sums.count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_data::{FeatureShape, Sample};

    /// A minimal hand-rolled model for exercising trait defaults: a single
    /// scalar weight, output = [w * x0, -w * x0].
    #[derive(Debug, Clone)]
    struct Toy {
        w: f32,
    }

    impl Model for Toy {
        fn dim(&self) -> usize {
            1
        }
        fn params(&self) -> Vector {
            Vector::from(vec![self.w])
        }
        fn set_params(&mut self, p: &Vector) {
            assert_eq!(p.len(), 1);
            self.w = p[0];
        }
        fn loss_and_grad(&self, data: &Dataset, indices: &[usize]) -> (f32, Vector) {
            assert!(!indices.is_empty());
            let mut loss = 0.0;
            let mut g = 0.0;
            for &i in indices {
                let s = data.sample(i);
                let out = self.output(&s.features);
                let c = s.target.class().expect("toy is classification-only");
                loss += ops::cross_entropy_loss(&out, c);
                let gl = ops::cross_entropy_grad(&out, c);
                // d out0/dw = x0, d out1/dw = -x0
                g += (gl[0] - gl[1]) * s.features[0];
            }
            let n = indices.len() as f32;
            (loss / n, Vector::from(vec![g / n]))
        }
        fn output(&self, features: &Vector) -> Vector {
            Vector::from(vec![self.w * features[0], -self.w * features[0]])
        }
    }

    fn toy_data() -> Dataset {
        Dataset::new(
            vec![
                Sample {
                    features: Vector::from(vec![1.0]),
                    target: Target::Class(0),
                },
                Sample {
                    features: Vector::from(vec![-1.0]),
                    target: Target::Class(1),
                },
            ],
            FeatureShape::Flat(1),
            2,
        )
    }

    #[test]
    fn evaluate_reports_perfect_accuracy_for_separating_weight() {
        let m = Toy { w: 5.0 };
        let eval = m.evaluate(&toy_data());
        assert_eq!(eval.accuracy, 1.0);
        assert!(eval.loss < 0.01);
    }

    #[test]
    fn evaluate_range_chunks_reassemble_full_evaluation() {
        let m = Toy { w: 0.7 };
        let data = toy_data();
        let full = m.evaluate(&data);
        let mut sums = m.evaluate_range(&data, 0..1);
        sums.merge(&m.evaluate_range(&data, 1..2));
        let merged = sums.finish();
        assert_eq!(merged.accuracy, full.accuracy);
        assert!((merged.loss - full.loss).abs() < 1e-12);
    }

    #[test]
    fn empty_eval_sums_finish_to_zeros() {
        let e = EvalSums::default().finish();
        assert_eq!(e.loss, 0.0);
        assert_eq!(e.accuracy, 0.0);
    }

    #[test]
    fn default_loss_and_grad_into_matches_allocating_form() {
        let m = Toy { w: 0.3 };
        let data = toy_data();
        let (loss, grad) = m.loss_and_grad(&data, &[0, 1]);
        let mut buf = Vector::zeros(1);
        let loss_into = m.loss_and_grad_into(&data, &[0, 1], &mut buf);
        assert_eq!(loss, loss_into);
        assert_eq!(grad.as_slice(), buf.as_slice());
    }

    #[test]
    fn default_loss_matches_loss_and_grad() {
        let m = Toy { w: 0.3 };
        let data = toy_data();
        assert_eq!(m.loss(&data, &[0, 1]), m.loss_and_grad(&data, &[0, 1]).0);
    }

    #[test]
    fn gradient_descends_loss() {
        let mut m = Toy { w: 0.0 };
        let data = toy_data();
        for _ in 0..50 {
            let (_, g) = m.loss_and_grad(&data, &[0, 1]);
            let mut p = m.params();
            p.axpy(-0.5, &g);
            m.set_params(&p);
        }
        assert!(m.evaluate(&data).accuracy == 1.0);
        assert!(m.w > 1.0, "weight should have grown positive: {}", m.w);
    }
}
