//! Model zoo for the HierAdMo reproduction.
//!
//! The paper evaluates five model families — linear regression, logistic
//! regression, a classic CNN, VGG16 and ResNet18. This crate implements all
//! five (the deep nets as faithfully-patterned, scaled-down variants; see
//! `DESIGN.md` §4) on top of a small layer framework with **exact analytic
//! backpropagation** — no autodiff, no external ML dependency.
//!
//! The crate's central abstraction is the [`Model`] trait: federated
//! algorithms interact with a model *only* through a flat parameter vector
//! ([`Model::params`] / [`Model::set_params`]) and mini-batch loss/gradient
//! evaluation ([`Model::loss_and_grad`]). This mirrors how the paper's
//! Algorithm 1 manipulates `x` and `∇F_{i,ℓ}(x)` as opaque vectors.
//!
//! # Example
//!
//! ```
//! use hieradmo_data::synthetic::SyntheticDataset;
//! use hieradmo_models::{zoo, Model};
//!
//! let tt = SyntheticDataset::mnist_like(20, 5, 1);
//! let mut model = zoo::logistic_regression(&tt.train, 7);
//! let (loss, grad) = model.loss_and_grad(&tt.train, &[0, 1, 2, 3]);
//! assert!(loss > 0.0);
//! assert_eq!(grad.len(), model.dim());
//! // One SGD step.
//! let mut p = model.params();
//! p.axpy(-0.1, &grad);
//! model.set_params(&p);
//! ```

#![deny(missing_docs)]

pub mod layer;
pub mod model;
pub mod optim;
pub mod sequential;
pub mod spec;
pub mod zoo;

pub use model::{EvalSums, Evaluation, Model};
pub use sequential::{LossHead, Sequential};
