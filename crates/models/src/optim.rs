//! Centralized optimizers — the paper's Section II reference points.
//!
//! Implements the three update rules the paper builds on, verbatim:
//!
//! - plain [`Sgd`];
//! - [`Polyak`] momentum (Eqs. 1–2: `m_t = γ·m_{t−1} − η∇F(w_{t−1})`,
//!   `w_t = w_{t−1} + m_t`);
//! - [`Nesterov`] accelerated gradient (the lookahead form the workers of
//!   Algorithm 1 run locally).
//!
//! These exist so the momentum algebra used everywhere else has a minimal,
//! independently-tested centralized reference — and so the paper's claim
//! that "momentum leads to faster convergence and reduces oscillation" can
//! be checked in isolation (see the unit tests).

use hieradmo_data::Dataset;
use hieradmo_tensor::Vector;

use crate::model::Model;

/// A centralized optimizer stepping a model on mini-batches.
pub trait Optimizer {
    /// Display name.
    fn name(&self) -> &'static str;

    /// One optimization step on the given mini-batch; returns the batch
    /// loss *before* the step.
    fn step<M: Model>(&mut self, model: &mut M, data: &Dataset, batch: &[usize]) -> f32;
}

/// Plain stochastic gradient descent: `w ← w − η∇F(w)`.
#[derive(Debug, Clone)]
pub struct Sgd {
    eta: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `eta`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0`.
    pub fn new(eta: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        Sgd { eta }
    }
}

impl Optimizer for Sgd {
    fn name(&self) -> &'static str {
        "SGD"
    }

    fn step<M: Model>(&mut self, model: &mut M, data: &Dataset, batch: &[usize]) -> f32 {
        let (loss, g) = model.loss_and_grad(data, batch);
        let mut w = model.params();
        w.axpy(-self.eta, &g);
        model.set_params(&w);
        loss
    }
}

/// Polyak's heavy-ball momentum, exactly the paper's Eqs. (1)–(2).
#[derive(Debug, Clone)]
pub struct Polyak {
    eta: f32,
    gamma: f32,
    m: Option<Vector>,
}

impl Polyak {
    /// Creates Polyak momentum with learning rate `eta` and factor
    /// `gamma ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn new(eta: f32, gamma: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        Polyak {
            eta,
            gamma,
            m: None,
        }
    }

    /// Current momentum vector (zero before the first step).
    pub fn momentum(&self) -> Option<&Vector> {
        self.m.as_ref()
    }
}

impl Optimizer for Polyak {
    fn name(&self) -> &'static str {
        "Polyak"
    }

    fn step<M: Model>(&mut self, model: &mut M, data: &Dataset, batch: &[usize]) -> f32 {
        let (loss, g) = model.loss_and_grad(data, batch);
        let mut w = model.params();
        let m = self.m.get_or_insert_with(|| Vector::zeros(w.len()));
        // Eq. (1): m_t = γ m_{t−1} − η ∇F(w_{t−1}).
        m.scale_in_place(self.gamma);
        m.axpy(-self.eta, &g);
        // Eq. (2): w_t = w_{t−1} + m_t.
        w += m;
        model.set_params(&w);
        loss
    }
}

/// Nesterov accelerated gradient in its lookahead (`y`) form — the same
/// recursion the federated workers run (Algorithm 1 lines 5–6).
#[derive(Debug, Clone)]
pub struct Nesterov {
    eta: f32,
    gamma: f32,
    y: Option<Vector>,
}

impl Nesterov {
    /// Creates NAG with learning rate `eta` and momentum `gamma ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `eta <= 0` or `gamma ∉ [0, 1)`.
    pub fn new(eta: f32, gamma: f32) -> Self {
        assert!(eta > 0.0, "eta must be positive, got {eta}");
        assert!(
            (0.0..1.0).contains(&gamma),
            "gamma must be in [0,1), got {gamma}"
        );
        Nesterov {
            eta,
            gamma,
            y: None,
        }
    }
}

impl Optimizer for Nesterov {
    fn name(&self) -> &'static str {
        "NAG"
    }

    fn step<M: Model>(&mut self, model: &mut M, data: &Dataset, batch: &[usize]) -> f32 {
        let (loss, g) = model.loss_and_grad(data, batch);
        let x = model.params();
        let y_prev = self.y.get_or_insert_with(|| x.clone()).clone();
        // y_t = x_{t−1} − η∇F(x_{t−1});  x_t = y_t + γ(y_t − y_{t−1}).
        let mut y_new = x.clone();
        y_new.axpy(-self.eta, &g);
        let mut x_new = y_new.clone();
        x_new.axpy(self.gamma, &(&y_new - &y_prev));
        self.y = Some(y_new);
        model.set_params(&x_new);
        loss
    }
}

/// Trains a model for `steps` full-batch iterations; returns the loss
/// trajectory (before each step).
pub fn train_full_batch<M: Model, O: Optimizer>(
    model: &mut M,
    optimizer: &mut O,
    data: &Dataset,
    steps: usize,
) -> Vec<f32> {
    let all: Vec<usize> = (0..data.len()).collect();
    (0..steps)
        .map(|_| optimizer.step(model, data, &all))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use hieradmo_data::synthetic::linear_regression;

    fn quadratic_problem() -> (hieradmo_data::Dataset, crate::Sequential) {
        let tt = linear_regression(6, 2, 80, 10, 0.01, 3);
        let model = zoo::linear_regression(&tt.train, 5);
        (tt.train, model)
    }

    #[test]
    fn all_three_optimizers_descend() {
        let (data, model) = quadratic_problem();
        for losses in [
            train_full_batch(&mut model.clone(), &mut Sgd::new(0.05), &data, 60),
            train_full_batch(&mut model.clone(), &mut Polyak::new(0.05, 0.5), &data, 60),
            train_full_batch(&mut model.clone(), &mut Nesterov::new(0.05, 0.5), &data, 60),
        ] {
            assert!(
                losses.last().unwrap() < &(losses[0] * 0.2),
                "optimizer failed to descend: {} -> {}",
                losses[0],
                losses.last().unwrap()
            );
        }
    }

    #[test]
    fn momentum_accelerates_on_the_quadratic() {
        // The paper's Section II claim: momentum converges faster than
        // plain gradient descent at the same learning rate.
        let (data, model) = quadratic_problem();
        let steps = 40;
        let sgd = train_full_batch(&mut model.clone(), &mut Sgd::new(0.03), &data, steps);
        let polyak = train_full_batch(
            &mut model.clone(),
            &mut Polyak::new(0.03, 0.7),
            &data,
            steps,
        );
        let nag = train_full_batch(
            &mut model.clone(),
            &mut Nesterov::new(0.03, 0.7),
            &data,
            steps,
        );
        assert!(
            polyak.last().unwrap() < sgd.last().unwrap(),
            "Polyak {} should beat SGD {}",
            polyak.last().unwrap(),
            sgd.last().unwrap()
        );
        assert!(
            nag.last().unwrap() < sgd.last().unwrap(),
            "NAG {} should beat SGD {}",
            nag.last().unwrap(),
            sgd.last().unwrap()
        );
    }

    #[test]
    fn polyak_momentum_state_follows_eq_1() {
        // One manual step on a known gradient verifies Eq. (1) literally.
        let (data, mut model) = quadratic_problem();
        let all: Vec<usize> = (0..data.len()).collect();
        let (_, g) = model.loss_and_grad(&data, &all);
        let mut opt = Polyak::new(0.1, 0.9);
        opt.step(&mut model, &data, &all);
        let m = opt.momentum().unwrap();
        // m_1 = γ·0 − η g = −0.1 g.
        let expected = g.scaled(-0.1);
        assert!(m.distance(&expected) < 1e-5);
    }

    #[test]
    fn nag_with_zero_gamma_equals_sgd() {
        let (data, model) = quadratic_problem();
        let a = train_full_batch(&mut model.clone(), &mut Sgd::new(0.05), &data, 20);
        let b = train_full_batch(&mut model.clone(), &mut Nesterov::new(0.05, 0.0), &data, 20);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "γ=0 NAG must equal SGD: {x} vs {y}");
        }
    }
}
