//! Constructors for the paper's five model families, sized automatically to
//! a dataset's feature shape and class count.
//!
//! | Paper model        | Constructor            | Notes |
//! |--------------------|------------------------|-------|
//! | Linear regression  | [`linear_regression`]  | Dense + MSE-vs-one-hot (or true regression) |
//! | Logistic regression| [`logistic_regression`]| Dense + softmax cross-entropy |
//! | CNN (\[29\])         | [`cnn`]                | LeNet-style: 2× (conv5×5 → relu → pool) + fc |
//! | VGG16 (\[30\])       | [`vgg_like`]           | VGG-patterned 3×3 double-conv blocks, scaled down |
//! | ResNet18 (\[27\])    | [`resnet_like`]        | Residual basic blocks + global-avg-pool head, scaled down |
//!
//! The deep models are *faithfully patterned but scaled-down* variants
//! (DESIGN.md §4): federated algorithms only see flat parameter vectors, so
//! the relevant property — depth and non-convexity increasing from linear to
//! ResNet — is preserved at laptop scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use hieradmo_data::{Dataset, FeatureShape, Target};
use hieradmo_tensor::{init, Vector};

use crate::layer::{Conv, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2, Relu, Residual};
use crate::sequential::{LossHead, Sequential};

/// Infers the output dimension for a dataset: class count for
/// classification, regression-target length otherwise.
///
/// # Panics
///
/// Panics if the dataset is empty and has no classes.
fn output_dim(data: &Dataset) -> usize {
    if data.num_classes() > 0 {
        data.num_classes()
    } else {
        match &data
            .samples()
            .first()
            .expect("cannot size a model for an empty regression dataset")
            .target
        {
            Target::Regression(y) => y.len(),
            Target::Class(_) => unreachable!("num_classes() == 0 implies regression"),
        }
    }
}

/// Layers that adapt any feature shape to a flat signal: a [`Flatten`] for
/// image datasets, nothing for already-flat ones.
fn flat_prelude(data: &Dataset) -> Vec<Box<dyn Layer>> {
    match data.shape() {
        FeatureShape::Flat(_) => Vec::new(),
        FeatureShape::Image { .. } => vec![Box::new(Flatten::new()) as Box<dyn Layer>],
    }
}

fn image_dims(data: &Dataset) -> (usize, usize, usize) {
    match data.shape() {
        FeatureShape::Image {
            channels,
            height,
            width,
        } => (channels, height, width),
        FeatureShape::Flat(d) => {
            panic!("this model needs image-shaped data, got flat features of {d}")
        }
    }
}

/// Linear regression: a single dense layer trained with mean-squared error.
///
/// On classification datasets this is the paper's "linear regression on
/// MNIST": MSE against one-hot labels, accuracy by argmax. On regression
/// datasets it is ordinary least squares.
pub fn linear_regression(data: &Dataset, seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let in_dim = data.shape().len();
    let out = output_dim(data);
    let mut layers = flat_prelude(data);
    layers.push(Box::new(Dense::new(
        init::xavier_matrix(&mut rng, out, in_dim),
        Vector::zeros(out),
    )));
    let head = if data.num_classes() > 0 {
        LossHead::MseOneHot
    } else {
        LossHead::Mse
    };
    Sequential::new(layers, data.shape(), head)
}

/// Multinomial logistic regression: a single dense layer with softmax
/// cross-entropy.
///
/// # Panics
///
/// Panics if the dataset is not a classification dataset.
pub fn logistic_regression(data: &Dataset, seed: u64) -> Sequential {
    assert!(
        data.num_classes() > 0,
        "logistic regression needs a classification dataset"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let in_dim = data.shape().len();
    let out = data.num_classes();
    let mut layers = flat_prelude(data);
    layers.push(Box::new(Dense::new(
        init::xavier_matrix(&mut rng, out, in_dim),
        Vector::zeros(out),
    )));
    Sequential::new(layers, data.shape(), LossHead::SoftmaxCrossEntropy)
}

/// A two-layer MLP (dense → relu → dense) — not in the paper's table but a
/// useful fast non-convex model for tests and ablations.
///
/// # Panics
///
/// Panics if the dataset is not a classification dataset.
pub fn mlp(data: &Dataset, hidden: usize, seed: u64) -> Sequential {
    assert!(data.num_classes() > 0, "mlp needs a classification dataset");
    let mut rng = StdRng::seed_from_u64(seed);
    let in_dim = data.shape().len();
    let out = data.num_classes();
    let mut layers = flat_prelude(data);
    layers.push(Box::new(Dense::new(
        init::he_matrix(&mut rng, hidden, in_dim),
        Vector::zeros(hidden),
    )));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Dense::new(
        init::xavier_matrix(&mut rng, out, hidden),
        Vector::zeros(out),
    )));
    Sequential::new(layers, data.shape(), LossHead::SoftmaxCrossEntropy)
}

/// The paper's "classic CNN" \[29\]: two conv5×5 → relu → maxpool stages
/// followed by a hidden dense layer — LeNet-style.
///
/// # Panics
///
/// Panics if the dataset does not have image-shaped features or is not a
/// classification dataset.
pub fn cnn(data: &Dataset, seed: u64) -> Sequential {
    assert!(data.num_classes() > 0, "cnn needs a classification dataset");
    let (c, _, _) = image_dims(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv::new(
            init::he_conv(&mut rng, 8, c, 5, 5),
            vec![0.0; 8],
            2,
        )),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new()),
        Box::new(Conv::new(
            init::he_conv(&mut rng, 16, 8, 5, 5),
            vec![0.0; 16],
            2,
        )),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new()),
        Box::new(Flatten::new()),
    ];
    finish_with_dense_head(layers, data, 64, &mut rng)
}

/// A VGG16-patterned network, scaled down: double-3×3-conv blocks with
/// channel doubling and max-pool down-sampling, then a dense classifier.
///
/// # Panics
///
/// Panics if the dataset does not have image-shaped features or is not a
/// classification dataset.
pub fn vgg_like(data: &Dataset, seed: u64) -> Sequential {
    assert!(data.num_classes() > 0, "vgg needs a classification dataset");
    let (c, _, _) = image_dims(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut in_c = c;
    for &out_c in &[12usize, 24] {
        layers.push(Box::new(Conv::new(
            init::he_conv(&mut rng, out_c, in_c, 3, 3),
            vec![0.0; out_c],
            1,
        )));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Conv::new(
            init::he_conv(&mut rng, out_c, out_c, 3, 3),
            vec![0.0; out_c],
            1,
        )));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(MaxPool2::new()));
        in_c = out_c;
    }
    layers.push(Box::new(Flatten::new()));
    finish_with_dense_head(layers, data, 96, &mut rng)
}

/// A ResNet18-patterned network, scaled down: conv stem, two residual basic
/// blocks (the second with a 1×1 projection and channel doubling), global
/// average pooling, dense classifier.
///
/// # Panics
///
/// Panics if the dataset does not have image-shaped features or is not a
/// classification dataset.
pub fn resnet_like(data: &Dataset, seed: u64) -> Sequential {
    assert!(
        data.num_classes() > 0,
        "resnet needs a classification dataset"
    );
    let (c, _, _) = image_dims(data);
    let mut rng = StdRng::seed_from_u64(seed);
    let stem_c = 12usize;
    let deep_c = 24usize;
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv::new(
            init::he_conv(&mut rng, stem_c, c, 3, 3),
            vec![0.0; stem_c],
            1,
        )),
        Box::new(Relu::new()),
        Box::new(MaxPool2::new()),
    ];
    // Identity residual block at stem width.
    layers.push(Box::new(Residual::new(
        vec![
            Box::new(Conv::new(
                init::he_conv(&mut rng, stem_c, stem_c, 3, 3),
                vec![0.0; stem_c],
                1,
            )),
            Box::new(Relu::new()),
            Box::new(Conv::new(
                init::he_conv(&mut rng, stem_c, stem_c, 3, 3),
                vec![0.0; stem_c],
                1,
            )),
        ],
        None,
    )));
    layers.push(Box::new(MaxPool2::new()));
    // Projection residual block doubling the channels.
    layers.push(Box::new(Residual::new(
        vec![
            Box::new(Conv::new(
                init::he_conv(&mut rng, deep_c, stem_c, 3, 3),
                vec![0.0; deep_c],
                1,
            )),
            Box::new(Relu::new()),
            Box::new(Conv::new(
                init::he_conv(&mut rng, deep_c, deep_c, 3, 3),
                vec![0.0; deep_c],
                1,
            )),
        ],
        Some(Conv::new(
            init::he_conv(&mut rng, deep_c, stem_c, 1, 1),
            vec![0.0; deep_c],
            0,
        )),
    )));
    layers.push(Box::new(GlobalAvgPool::new()));
    let out = data.num_classes();
    layers.push(Box::new(Dense::new(
        init::xavier_matrix(&mut rng, out, deep_c),
        Vector::zeros(out),
    )));
    Sequential::new(layers, data.shape(), LossHead::SoftmaxCrossEntropy)
}

/// Appends `dense(hidden) → relu → dense(classes)` sized by probing the
/// current stack's output dimension, then builds the model.
fn finish_with_dense_head(
    mut layers: Vec<Box<dyn Layer>>,
    data: &Dataset,
    hidden: usize,
    rng: &mut StdRng,
) -> Sequential {
    // Probe the flat dimension produced so far.
    let mut shape = match data.shape() {
        FeatureShape::Flat(d) => crate::layer::SignalShape::Flat(d),
        FeatureShape::Image {
            channels,
            height,
            width,
        } => crate::layer::SignalShape::Image {
            channels,
            height,
            width,
        },
    };
    for layer in &layers {
        shape = layer.output_shape(shape);
    }
    let flat = shape.len();
    let out = data.num_classes();
    layers.push(Box::new(Dense::new(
        init::he_matrix(rng, hidden, flat),
        Vector::zeros(hidden),
    )));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Dense::new(
        init::xavier_matrix(rng, out, hidden),
        Vector::zeros(out),
    )));
    Sequential::new(layers, data.shape(), LossHead::SoftmaxCrossEntropy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use hieradmo_data::synthetic::{linear_regression as linreg_data, SyntheticDataset};

    #[test]
    fn all_models_build_for_mnist_like() {
        let ds = SyntheticDataset::mnist_like(2, 1, 1).train;
        let models: Vec<(&str, Sequential)> = vec![
            ("linear", linear_regression(&ds, 1)),
            ("logistic", logistic_regression(&ds, 1)),
            ("mlp", mlp(&ds, 32, 1)),
            ("cnn", cnn(&ds, 1)),
            ("vgg", vgg_like(&ds, 1)),
            ("resnet", resnet_like(&ds, 1)),
        ];
        for (name, m) in &models {
            assert!(m.dim() > 0, "{name} has no parameters");
            let out = m.output(&ds.sample(0).features);
            assert_eq!(out.len(), 10, "{name} output dim");
            assert!(out.is_finite(), "{name} produced non-finite output");
        }
        // Depth ordering: deep nets have more layers than shallow ones.
        assert!(models[3].1.num_layers() > models[1].1.num_layers());
        assert!(models[4].1.num_layers() > models[3].1.num_layers());
    }

    #[test]
    fn models_build_for_cifar_and_imagenet_and_har() {
        let cifar = SyntheticDataset::cifar10_like(1, 1, 2).train;
        assert!(cnn(&cifar, 0).dim() > 0);
        assert!(vgg_like(&cifar, 0).dim() > 0);
        let inet = SyntheticDataset::imagenet_like(1, 1, 2).train;
        let rn = resnet_like(&inet, 0);
        assert_eq!(rn.output_dim(), 20);
        let har = SyntheticDataset::har_like(1, 1, 2).train;
        assert!(logistic_regression(&har, 0).dim() > 0);
        // CNN on HAR must panic (flat features): covered below.
    }

    #[test]
    #[should_panic(expected = "image-shaped data")]
    fn cnn_rejects_flat_features() {
        let har = SyntheticDataset::har_like(1, 1, 2).train;
        let _ = cnn(&har, 0);
    }

    #[test]
    fn linear_regression_on_true_regression_data() {
        let tt = linreg_data(5, 2, 50, 10, 0.01, 3);
        let mut m = linear_regression(&tt.train, 1);
        assert_eq!(m.head(), LossHead::Mse);
        let idx: Vec<usize> = (0..tt.train.len()).collect();
        let before = m.loss(&tt.train, &idx);
        for _ in 0..100 {
            let (_, g) = m.loss_and_grad(&tt.train, &idx);
            let mut p = m.params();
            p.axpy(-0.1, &g);
            m.set_params(&p);
        }
        let after = m.loss(&tt.train, &idx);
        assert!(after < before * 0.1, "OLS should fit: {before} -> {after}");
    }

    #[test]
    fn cnn_gradient_check_on_tiny_images() {
        // Small bespoke image dataset for an affordable finite-difference test.
        use hieradmo_data::{Dataset, FeatureShape, Sample, Target};
        let shape = FeatureShape::Image {
            channels: 1,
            height: 8,
            width: 8,
        };
        let mk = |v: f32, c: usize| Sample {
            features: Vector::filled(64, v),
            target: Target::Class(c),
        };
        let ds = Dataset::new(vec![mk(0.5, 0), mk(-0.5, 1)], shape, 2);
        let m = cnn(&ds, 7);
        let (_, g) = m.loss_and_grad(&ds, &[0, 1]);
        let p = m.params();
        let eps = 1e-2f32;
        let step = (m.dim() / 7).max(1);
        for k in (0..m.dim()).step_by(step) {
            let mut mm = m.clone();
            let mut pp = p.clone();
            pp[k] += eps;
            mm.set_params(&pp);
            let lp = mm.loss(&ds, &[0, 1]);
            let mut pm = p.clone();
            pm[k] -= eps;
            mm.set_params(&pm);
            let lm = mm.loss(&ds, &[0, 1]);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (g[k] - fd).abs() < 3e-2,
                "cnn coordinate {k}: analytic {} vs fd {fd}",
                g[k]
            );
        }
    }

    #[test]
    fn resnet_gradient_flows_through_all_segments() {
        use hieradmo_data::{Dataset, FeatureShape, Sample, Target};
        let shape = FeatureShape::Image {
            channels: 1,
            height: 8,
            width: 8,
        };
        let ds = Dataset::new(
            vec![Sample {
                features: (0..64).map(|i| (i as f32 * 0.3).sin()).collect(),
                target: Target::Class(0),
            }],
            shape,
            2,
        );
        let m = resnet_like(&ds, 9);
        let (_, g) = m.loss_and_grad(&ds, &[0]);
        // Gradient must not be identically zero in any broad region
        // (checks the residual/projection segment plumbing).
        let third = g.len() / 3;
        for (lo, hi) in [(0, third), (third, 2 * third), (2 * third, g.len())] {
            let region_nonzero = g.as_slice()[lo..hi].iter().any(|&v| v != 0.0);
            assert!(region_nonzero, "gradient region {lo}..{hi} is all zeros");
        }
    }
}
