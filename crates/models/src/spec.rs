//! Serializable model specifications: a declarative, `serde`-friendly way
//! to name an architecture so experiment configs and checkpoints can
//! reconstruct the exact model (`ModelSpec` + dataset + seed ⇒ identical
//! parameters).

use serde::{Deserialize, Serialize};

use hieradmo_data::Dataset;

use crate::sequential::Sequential;
use crate::zoo;

/// A declarative model architecture, buildable against any compatible
/// dataset.
///
/// # Example
///
/// ```
/// use hieradmo_data::synthetic::SyntheticDataset;
/// use hieradmo_models::spec::ModelSpec;
/// use hieradmo_models::Model;
///
/// let ds = SyntheticDataset::mnist_like(2, 1, 0).train;
/// let spec = ModelSpec::Cnn;
/// let a = spec.build(&ds, 7);
/// let b = spec.build(&ds, 7);
/// assert_eq!(a.params(), b.params(), "same spec + seed = same model");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Linear regression (MSE head).
    Linear,
    /// Multinomial logistic regression.
    Logistic,
    /// Two-layer MLP with the given hidden width.
    Mlp {
        /// Hidden layer width.
        hidden: usize,
    },
    /// LeNet-style CNN (paper's "classic CNN").
    Cnn,
    /// VGG-patterned network (scaled down).
    Vgg,
    /// ResNet-patterned network (scaled down).
    Resnet,
}

impl ModelSpec {
    /// All specs corresponding to the paper's five model families.
    pub fn paper_lineup() -> [ModelSpec; 5] {
        [
            ModelSpec::Linear,
            ModelSpec::Logistic,
            ModelSpec::Cnn,
            ModelSpec::Vgg,
            ModelSpec::Resnet,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::Linear => "linear",
            ModelSpec::Logistic => "logistic",
            ModelSpec::Mlp { .. } => "mlp",
            ModelSpec::Cnn => "cnn",
            ModelSpec::Vgg => "vgg",
            ModelSpec::Resnet => "resnet",
        }
    }

    /// Whether this family needs image-shaped features.
    pub fn needs_images(&self) -> bool {
        matches!(self, ModelSpec::Cnn | ModelSpec::Vgg | ModelSpec::Resnet)
    }

    /// Builds the model for `data` with a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the corresponding
    /// [`crate::zoo`] constructor (e.g. an image model on flat data).
    pub fn build(&self, data: &Dataset, seed: u64) -> Sequential {
        match *self {
            ModelSpec::Linear => zoo::linear_regression(data, seed),
            ModelSpec::Logistic => zoo::logistic_regression(data, seed),
            ModelSpec::Mlp { hidden } => zoo::mlp(data, hidden, seed),
            ModelSpec::Cnn => zoo::cnn(data, seed),
            ModelSpec::Vgg => zoo::vgg_like(data, seed),
            ModelSpec::Resnet => zoo::resnet_like(data, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use hieradmo_data::synthetic::SyntheticDataset;

    #[test]
    fn builds_are_deterministic_per_seed() {
        let ds = SyntheticDataset::mnist_like(2, 1, 3).train;
        for spec in ModelSpec::paper_lineup() {
            let a = spec.build(&ds, 11);
            let b = spec.build(&ds, 11);
            let c = spec.build(&ds, 12);
            assert_eq!(a.params(), b.params(), "{}", spec.name());
            assert_ne!(a.params(), c.params(), "{}", spec.name());
        }
    }

    #[test]
    fn serde_round_trip() {
        for spec in [
            ModelSpec::Linear,
            ModelSpec::Mlp { hidden: 32 },
            ModelSpec::Resnet,
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn image_requirements_flagged() {
        assert!(ModelSpec::Cnn.needs_images());
        assert!(!ModelSpec::Logistic.needs_images());
        assert!(!ModelSpec::Mlp { hidden: 8 }.needs_images());
    }

    #[test]
    #[should_panic(expected = "image-shaped data")]
    fn image_spec_on_flat_data_panics() {
        let ds = SyntheticDataset::har_like(1, 1, 0).train;
        let _ = ModelSpec::Vgg.build(&ds, 0);
    }
}
