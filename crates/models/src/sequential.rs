//! [`Sequential`]: a validated stack of layers plus a loss head, exposing
//! the flat-parameter [`Model`] interface.

use std::ops::Range;

use hieradmo_data::{Dataset, FeatureShape, Target};
use hieradmo_tensor::{ops, Matrix, Tensor4, Vector};

use crate::layer::{Cache, Layer, Signal, SignalShape};
use crate::model::{evaluate_range_serial, score_sample, EvalSums, Model};

/// Row-tile size for batched evaluation: bounds the stacked activation
/// matrices while matching the execution engine's eval chunk size, so a
/// pool chunk runs as a single GEMM per dense layer.
const EVAL_GEMM_TILE: usize = 256;

/// The loss applied on top of the final layer's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossHead {
    /// Softmax + cross-entropy against a class label (logistic regression,
    /// CNN, VGG, ResNet heads).
    SoftmaxCrossEntropy,
    /// Mean-squared error against the one-hot encoding of a class label —
    /// the paper's "linear regression on MNIST" setting.
    MseOneHot,
    /// Mean-squared error against a regression target vector.
    Mse,
}

/// A feed-forward stack of [`Layer`]s with a [`LossHead`].
///
/// Construction validates the full shape pipeline once, so any conv/dense
/// size mismatch fails fast rather than mid-training.
///
/// # Example
///
/// ```
/// use hieradmo_models::{Sequential, LossHead, Model};
/// use hieradmo_models::layer::{Dense, Relu, Layer};
/// use hieradmo_data::FeatureShape;
/// use hieradmo_tensor::{init, Vector};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let layers: Vec<Box<dyn Layer>> = vec![
///     Box::new(Dense::new(init::xavier_matrix(&mut rng, 8, 4), Vector::zeros(8))),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(init::xavier_matrix(&mut rng, 3, 8), Vector::zeros(3))),
/// ];
/// let model = Sequential::new(layers, FeatureShape::Flat(4), LossHead::SoftmaxCrossEntropy);
/// assert_eq!(model.dim(), 8*4 + 8 + 3*8 + 3);
/// assert_eq!(model.output_dim(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    input_shape: FeatureShape,
    head: LossHead,
    output_dim: usize,
    param_offsets: Vec<usize>,
    dim: usize,
}

impl Sequential {
    /// Builds and validates a sequential model.
    ///
    /// # Panics
    ///
    /// Panics if the layer stack is empty, if consecutive layer shapes are
    /// incompatible, or if the final output is not flat.
    pub fn new(layers: Vec<Box<dyn Layer>>, input_shape: FeatureShape, head: LossHead) -> Self {
        assert!(
            !layers.is_empty(),
            "sequential model needs at least one layer"
        );
        let mut shape = match input_shape {
            FeatureShape::Flat(d) => SignalShape::Flat(d),
            FeatureShape::Image {
                channels,
                height,
                width,
            } => SignalShape::Image {
                channels,
                height,
                width,
            },
        };
        for layer in &layers {
            shape = layer.output_shape(shape);
        }
        let output_dim = match shape {
            SignalShape::Flat(d) => d,
            other => panic!("final layer must produce a flat output, got {other:?}"),
        };
        let mut param_offsets = Vec::with_capacity(layers.len());
        let mut dim = 0;
        for layer in &layers {
            param_offsets.push(dim);
            dim += layer.param_len();
        }
        Sequential {
            layers,
            input_shape,
            head,
            output_dim,
            param_offsets,
            dim,
        }
    }

    /// Dimension of the model output (e.g. number of classes).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The configured loss head.
    pub fn head(&self) -> LossHead {
        self.head
    }

    /// Number of layers in the stack.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn to_signal(&self, features: &Vector) -> Signal {
        match self.input_shape {
            FeatureShape::Flat(d) => {
                assert_eq!(features.len(), d, "feature length mismatch");
                Signal::Flat(features.clone())
            }
            FeatureShape::Image {
                channels,
                height,
                width,
            } => Signal::Image(Tensor4::from_flat_sample(features, channels, height, width)),
        }
    }

    fn forward_with_caches(&self, features: &Vector) -> (Vector, Vec<Cache>) {
        let mut sig = self.to_signal(features);
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, cache) = layer.forward(&sig);
            sig = next;
            caches.push(cache);
        }
        (sig.expect_flat().clone(), caches)
    }

    /// Head loss and gradient w.r.t. the model output.
    fn head_loss_grad(&self, output: &Vector, target: &Target) -> (f32, Vector) {
        match (self.head, target) {
            (LossHead::SoftmaxCrossEntropy, Target::Class(c)) => (
                ops::cross_entropy_loss(output, *c),
                ops::cross_entropy_grad(output, *c),
            ),
            (LossHead::MseOneHot, Target::Class(c)) => {
                assert!(*c < output.len(), "one-hot class out of range");
                let mut one_hot = Vector::zeros(output.len());
                one_hot[*c] = 1.0;
                (
                    ops::mse_loss(output, &one_hot),
                    ops::mse_grad(output, &one_hot),
                )
            }
            (LossHead::Mse, Target::Regression(y)) => {
                (ops::mse_loss(output, y), ops::mse_grad(output, y))
            }
            (head, target) => {
                panic!("loss head {head:?} is incompatible with target {target:?}")
            }
        }
    }

    /// Whether the batched flat fast path covers this architecture: flat
    /// input features and every layer opted into
    /// [`Layer::supports_flat_batch`].
    fn flat_batch_supported(&self) -> bool {
        matches!(self.input_shape, FeatureShape::Flat(_))
            && self.layers.iter().all(|l| l.supports_flat_batch())
    }

    /// Flat widths through the stack: `dims[0]` is the input width and
    /// `dims[li + 1]` the output width of layer `li`.
    fn flat_dims(&self) -> Vec<usize> {
        let d0 = match self.input_shape {
            FeatureShape::Flat(d) => d,
            other => panic!("flat batch path needs flat input, got {other:?}"),
        };
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(d0);
        let mut shape = SignalShape::Flat(d0);
        for layer in &self.layers {
            shape = layer.output_shape(shape);
            dims.push(shape.len());
        }
        dims
    }

    /// Stacks `n` samples (in iteration order) into one row-major feature
    /// matrix, one sample per row.
    fn stack_features<I>(&self, data: &Dataset, n: usize, indices: I) -> Matrix
    where
        I: Iterator<Item = usize>,
    {
        let d = match self.input_shape {
            FeatureShape::Flat(d) => d,
            other => panic!("flat batch path needs flat input, got {other:?}"),
        };
        let mut x = Matrix::zeros(n, d);
        let xs = x.as_mut_slice();
        for (s, i) in indices.enumerate() {
            let f = data.sample(i).features.as_slice();
            assert_eq!(f.len(), d, "feature length mismatch");
            xs[s * d..(s + 1) * d].copy_from_slice(f);
        }
        x
    }

    /// Batched forward through the whole stack: `acts[0]` is the stacked
    /// input and `acts[li + 1]` the output of layer `li`, one row per
    /// sample. Each row is bitwise identical to the per-sample flat forward
    /// (the [`Layer::forward_flat_batch`] contract).
    fn forward_flat_batch(&self, x: Matrix) -> Vec<Matrix> {
        let dims = self.flat_dims();
        let n = x.rows();
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x);
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = Matrix::zeros(n, dims[li + 1]);
            layer.forward_flat_batch(acts.last().expect("stack is non-empty"), &mut out);
            acts.push(out);
        }
        acts
    }
}

impl Model for Sequential {
    fn dim(&self) -> usize {
        self.dim
    }

    fn params(&self) -> Vector {
        let mut out = Vec::with_capacity(self.dim);
        for layer in &self.layers {
            layer.write_params(&mut out);
        }
        Vector::from(out)
    }

    fn set_params(&mut self, params: &Vector) {
        assert_eq!(params.len(), self.dim, "set_params length mismatch");
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.read_params(&params.as_slice()[off..]);
        }
        debug_assert_eq!(off, self.dim);
    }

    fn loss_and_grad(&self, data: &Dataset, indices: &[usize]) -> (f32, Vector) {
        let mut grad = Vector::zeros(self.dim);
        let loss = self.loss_and_grad_into(data, indices, &mut grad);
        (loss, grad)
    }

    fn loss_and_grad_into(&self, data: &Dataset, indices: &[usize], grad: &mut Vector) -> f32 {
        assert!(!indices.is_empty(), "loss_and_grad needs a non-empty batch");
        if grad.len() != self.dim {
            *grad = Vector::zeros(self.dim);
        } else {
            grad.fill(0.0);
        }
        let gslice = grad.as_mut_slice();
        let mut loss_sum = 0.0f32;
        if self.flat_batch_supported() {
            // Batched fast path: one GEMM per dense layer over the stacked
            // mini-batch, then the per-sample head/backward loop in the
            // same ascending order as the serial path. Each activation row
            // is bitwise identical to the per-sample forward, and backward
            // caches are rebuilt from those rows, so gradient accumulation
            // is unchanged bit for bit.
            let x = self.stack_features(data, indices.len(), indices.iter().copied());
            let acts = self.forward_flat_batch(x);
            let out_mat = acts.last().expect("stack is non-empty");
            let od = self.output_dim;
            for (s, &i) in indices.iter().enumerate() {
                let sample = data.sample(i);
                let output = Vector::from(out_mat.as_slice()[s * od..(s + 1) * od].to_vec());
                let (loss, g_out) = self.head_loss_grad(&output, &sample.target);
                loss_sum += loss;
                let mut g = Signal::Flat(g_out);
                for (li, layer) in self.layers.iter().enumerate().rev() {
                    let start = self.param_offsets[li];
                    let end = start + layer.param_len();
                    let w = acts[li].cols();
                    let cache = layer.flat_cache(&acts[li].as_slice()[s * w..(s + 1) * w]);
                    g = layer.backward(&cache, &g, &mut gslice[start..end]);
                }
            }
        } else {
            for &i in indices {
                let sample = data.sample(i);
                let (output, caches) = self.forward_with_caches(&sample.features);
                let (loss, g_out) = self.head_loss_grad(&output, &sample.target);
                loss_sum += loss;
                let mut g = Signal::Flat(g_out);
                for (li, layer) in self.layers.iter().enumerate().rev() {
                    let start = self.param_offsets[li];
                    let end = start + layer.param_len();
                    g = layer.backward(&caches[li], &g, &mut gslice[start..end]);
                }
            }
        }
        let inv = 1.0 / indices.len() as f32;
        grad.scale_in_place(inv);
        loss_sum * inv
    }

    fn output(&self, features: &Vector) -> Vector {
        let mut sig = self.to_signal(features);
        for layer in &self.layers {
            let (next, _) = layer.forward(&sig);
            sig = next;
        }
        sig.expect_flat().clone()
    }

    fn evaluate_range(&self, data: &Dataset, range: Range<usize>) -> EvalSums {
        if !self.flat_batch_supported() {
            return evaluate_range_serial(self, data, range);
        }
        // Batched eval: forward whole row-tiles through one GEMM per dense
        // layer, then score rows in ascending sample order — the exact
        // accumulation sequence of the serial path, so chunked parallel
        // eval stays bitwise reproducible.
        let mut sums = EvalSums::default();
        let od = self.output_dim;
        let mut start = range.start;
        while start < range.end {
            let end = (start + EVAL_GEMM_TILE).min(range.end);
            let x = self.stack_features(data, end - start, start..end);
            let acts = self.forward_flat_batch(x);
            let out_mat = acts.last().expect("stack is non-empty");
            for (s, i) in (start..end).enumerate() {
                let out = Vector::from(out_mat.as_slice()[s * od..(s + 1) * od].to_vec());
                score_sample(&mut sums, &out, &data.sample(i).target);
            }
            start = end;
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use hieradmo_data::Sample;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Sequential {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(
                hieradmo_tensor::init::xavier_matrix(&mut rng, 6, 3),
                Vector::zeros(6),
            )),
            Box::new(Relu::new()),
            Box::new(Dense::new(
                hieradmo_tensor::init::xavier_matrix(&mut rng, 2, 6),
                Vector::zeros(2),
            )),
        ];
        Sequential::new(layers, FeatureShape::Flat(3), LossHead::SoftmaxCrossEntropy)
    }

    fn xor_ish_data() -> Dataset {
        Dataset::new(
            vec![
                Sample {
                    features: Vector::from(vec![1.0, 0.0, 0.5]),
                    target: Target::Class(0),
                },
                Sample {
                    features: Vector::from(vec![0.0, 1.0, -0.5]),
                    target: Target::Class(1),
                },
                Sample {
                    features: Vector::from(vec![0.9, 0.1, 0.4]),
                    target: Target::Class(0),
                },
                Sample {
                    features: Vector::from(vec![0.1, 0.9, -0.4]),
                    target: Target::Class(1),
                },
            ],
            FeatureShape::Flat(3),
            2,
        )
    }

    #[test]
    fn params_roundtrip() {
        let mut m = mlp(1);
        let p = m.params();
        assert_eq!(p.len(), m.dim());
        let shifted = &p + &Vector::filled(p.len(), 0.5);
        m.set_params(&shifted);
        assert_eq!(m.params(), shifted);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let m = mlp(2);
        let data = xor_ish_data();
        let idx = [0usize, 1, 2, 3];
        let (_, g) = m.loss_and_grad(&data, &idx);
        let p = m.params();
        let eps = 1e-2f32;
        // Spot-check a handful of coordinates.
        for &k in &[0usize, 5, 11, g.len() - 1] {
            let mut mp = m.clone();
            let mut pp = p.clone();
            pp[k] += eps;
            mp.set_params(&pp);
            let lp = mp.loss(&data, &idx);
            let mut pm = p.clone();
            pm[k] -= eps;
            mp.set_params(&pm);
            let lm = mp.loss(&data, &idx);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (g[k] - fd).abs() < 2e-2,
                "coordinate {k}: analytic {} vs fd {fd}",
                g[k]
            );
        }
    }

    #[test]
    fn loss_and_grad_into_reuses_buffer_bitwise() {
        let m = mlp(7);
        let data = xor_ish_data();
        let (loss, grad) = m.loss_and_grad(&data, &[0, 1, 2]);
        // Seed the buffer with garbage of the right length: the override
        // must zero it, not accumulate on top.
        let mut buf = Vector::filled(m.dim(), 123.0);
        let loss_into = m.loss_and_grad_into(&data, &[0, 1, 2], &mut buf);
        assert_eq!(loss, loss_into);
        assert_eq!(grad.as_slice(), buf.as_slice());
        // Wrong-length buffers are resized rather than trusted.
        let mut short = Vector::zeros(1);
        let loss_short = m.loss_and_grad_into(&data, &[0, 1, 2], &mut short);
        assert_eq!(loss, loss_short);
        assert_eq!(grad.as_slice(), short.as_slice());
    }

    #[test]
    fn sgd_learns_separable_problem() {
        let mut m = mlp(3);
        let data = xor_ish_data();
        let idx: Vec<usize> = (0..data.len()).collect();
        let initial = m.loss(&data, &idx);
        for _ in 0..200 {
            let (_, g) = m.loss_and_grad(&data, &idx);
            let mut p = m.params();
            p.axpy(-0.5, &g);
            m.set_params(&p);
        }
        let final_loss = m.loss(&data, &idx);
        assert!(
            final_loss < initial * 0.2,
            "loss should drop: {initial} -> {final_loss}"
        );
        assert_eq!(m.evaluate(&data).accuracy, 1.0);
    }

    #[test]
    fn mse_one_hot_head_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let layers: Vec<Box<dyn Layer>> = vec![Box::new(Dense::new(
            hieradmo_tensor::init::xavier_matrix(&mut rng, 2, 3),
            Vector::zeros(2),
        ))];
        let m = Sequential::new(layers, FeatureShape::Flat(3), LossHead::MseOneHot);
        let data = xor_ish_data();
        let (loss, g) = m.loss_and_grad(&data, &[0]);
        assert!(loss >= 0.0);
        assert_eq!(g.len(), m.dim());
    }

    #[test]
    #[should_panic(expected = "incompatible with target")]
    fn head_target_mismatch_panics() {
        let m = mlp(5);
        let data = Dataset::new(
            vec![Sample {
                features: Vector::from(vec![0.0, 0.0, 0.0]),
                target: Target::Regression(Vector::from(vec![1.0])),
            }],
            FeatureShape::Flat(3),
            0,
        );
        let _ = m.loss_and_grad(&data, &[0]);
    }

    #[test]
    #[should_panic(expected = "needs a non-empty batch")]
    fn empty_batch_panics() {
        let m = mlp(6);
        let _ = m.loss_and_grad(&xor_ish_data(), &[]);
    }

    /// The batched flat path (stacked GEMM forward + rebuilt caches) must
    /// reproduce the historical per-sample loop bit for bit — losses,
    /// gradients, and evaluation sums.
    #[test]
    fn batched_flat_path_is_bitwise_equal_to_the_per_sample_loop() {
        let m = mlp(9);
        assert!(m.flat_batch_supported());
        let data = xor_ish_data();
        let idx = [0usize, 1, 2, 3, 1];

        // Reference: replay the per-sample loop exactly as the serial
        // branch runs it.
        let mut ref_grad = Vector::zeros(m.dim());
        let gs = ref_grad.as_mut_slice();
        let mut loss_sum = 0.0f32;
        for &i in &idx {
            let sample = data.sample(i);
            let (output, caches) = m.forward_with_caches(&sample.features);
            let (loss, g_out) = m.head_loss_grad(&output, &sample.target);
            loss_sum += loss;
            let mut g = Signal::Flat(g_out);
            for (li, layer) in m.layers.iter().enumerate().rev() {
                let start = m.param_offsets[li];
                let end = start + layer.param_len();
                g = layer.backward(&caches[li], &g, &mut gs[start..end]);
            }
        }
        let inv = 1.0 / idx.len() as f32;
        ref_grad.scale_in_place(inv);
        let ref_loss = loss_sum * inv;

        let (loss, grad) = m.loss_and_grad(&data, &idx);
        assert_eq!(loss.to_bits(), ref_loss.to_bits());
        assert_eq!(grad.len(), ref_grad.len());
        for (a, b) in grad.iter().zip(ref_grad.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let batched = m.evaluate_range(&data, 0..data.len());
        let serial = evaluate_range_serial(&m, &data, 0..data.len());
        assert_eq!(batched.loss_sum.to_bits(), serial.loss_sum.to_bits());
        assert_eq!(batched.correct, serial.correct);
        assert_eq!(batched.count, serial.count);
    }
}
