//! End-to-end runs of the relaxed synchronization policies on the paper's
//! three-tier schedule: the runs must terminate, produce a monotone
//! simulated-time axis, finite models, and sane utilization figures.

use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;
use hieradmo_data::synthetic::SyntheticDataset;
use hieradmo_models::zoo;
use hieradmo_netsim::{Architecture, NetworkEnv};
use hieradmo_simrt::{simulate, SimConfig, SimError, SimResult, SyncPolicy};
use hieradmo_topology::Hierarchy;

fn run_policy(policy: SyncPolicy) -> SimResult {
    let tt = SyntheticDataset::mnist_like(60, 30, 5);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 5);
    let model = zoo::logistic_regression(&tt.train, 1);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 40,
        eval_every: 10,
        batch_size: 8,
        seed: 3,
        threads: Some(1),
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let sim = SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        13,
        policy,
    );
    simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
        .expect("simulation should complete")
}

fn check_sane(res: &SimResult) {
    assert!(res.simulated_seconds > 0.0, "run must consume virtual time");
    assert!(res.events > 0);
    assert!(
        !res.timed_curve.is_empty(),
        "at least one evaluation must be recorded"
    );
    // TimedCurve::push enforces non-decreasing seconds and strictly
    // increasing iterations; check the envelope explicitly anyway.
    let pts = res.timed_curve.points();
    for w in pts.windows(2) {
        assert!(w[1].seconds >= w[0].seconds, "time axis must be monotone");
        assert!(w[1].iteration > w[0].iteration);
    }
    assert!(
        pts.last().unwrap().seconds <= res.simulated_seconds + 1e-9,
        "no evaluation can postdate the end of the run"
    );
    assert!(res.final_params.iter().all(|v| v.is_finite()));
    // 4 workers + 2 edges + cloud.
    assert_eq!(res.utilization.len(), 7);
    for u in &res.utilization {
        assert!(
            (0.0..=1.0).contains(&u.utilization),
            "{}: utilization {} out of range",
            u.actor,
            u.utilization
        );
        assert!(u.busy_seconds >= 0.0);
    }
}

#[test]
fn deadline_policy_runs_end_to_end() {
    // A tight timeout relative to the paper testbed's heterogeneous worker
    // speeds, so quorum firings (and carried-over stale uploads) actually
    // happen.
    let res = run_policy(SyncPolicy::Deadline {
        quorum: 0.5,
        timeout_ms: 50.0,
    });
    check_sane(&res);
    assert!(res.policy.starts_with("deadline"));
    assert!(!res.gamma_trace.is_empty());
}

#[test]
fn deadline_with_generous_timeout_behaves_like_full_sync_rounds() {
    // With an enormous timeout no round ever times out, so every round
    // collects everyone: the trajectory must equal full sync's.
    let relaxed = run_policy(SyncPolicy::Deadline {
        quorum: 0.5,
        timeout_ms: 1e12,
    });
    check_sane(&relaxed);
    let full = run_policy(SyncPolicy::FullSync);
    assert_eq!(
        relaxed.final_params, full.final_params,
        "no-timeout deadline must reduce to full-sync aggregation"
    );
}

#[test]
fn async_age_policy_runs_end_to_end() {
    let res = run_policy(SyncPolicy::AsyncAge { max_staleness: 2 });
    check_sane(&res);
    assert!(res.policy.starts_with("async"));
    // Per-arrival firing produces at least as many edge firings as the
    // synchronous schedule (K = 8 rounds × 2 edges).
    assert!(res.gamma_trace.len() >= 16);
}

#[test]
fn async_age_one_is_the_tightest_valid_bound() {
    let res = run_policy(SyncPolicy::AsyncAge { max_staleness: 1 });
    check_sane(&res);
}

#[test]
fn two_tier_architecture_runs_end_to_end() {
    let tt = SyntheticDataset::mnist_like(60, 30, 9);
    let hierarchy = Hierarchy::two_tier(4);
    let shards = x_class_partition(&tt.train, 4, 2, 9);
    let model = zoo::logistic_regression(&tt.train, 1);
    let cfg = RunConfig {
        tau: 10,
        pi: 1,
        total_iters: 40,
        eval_every: 10,
        batch_size: 8,
        seed: 3,
        threads: Some(1),
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    for policy in [
        SyncPolicy::FullSync,
        SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 50.0,
        },
    ] {
        let sim = SimConfig::new(
            NetworkEnv::paper_testbed(4),
            Architecture::TwoTier,
            50_000,
            13,
            policy,
        );
        let res = simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
            .expect("two-tier simulation should complete");
        assert!(res.simulated_seconds > 0.0);
        assert!(res.final_params.iter().all(|v| v.is_finite()));
        // 4 workers + 1 pass-through edge + cloud.
        assert_eq!(res.utilization.len(), 6);
    }
}

#[test]
fn mismatched_device_count_is_rejected() {
    let tt = SyntheticDataset::mnist_like(40, 20, 5);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 5);
    let model = zoo::logistic_regression(&tt.train, 1);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 10,
        batch_size: 8,
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let sim = SimConfig::new(
        NetworkEnv::paper_testbed(3), // three profiles for four workers
        Architecture::ThreeTier,
        50_000,
        1,
        SyncPolicy::FullSync,
    );
    let err = simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
        .expect_err("device/worker count mismatch must be rejected");
    assert!(matches!(err, SimError::Net(_)), "got {err:?}");
}

#[test]
fn invalid_policy_is_rejected() {
    let tt = SyntheticDataset::mnist_like(40, 20, 5);
    let hierarchy = Hierarchy::balanced(2, 2);
    let shards = x_class_partition(&tt.train, 4, 2, 5);
    let model = zoo::logistic_regression(&tt.train, 1);
    let cfg = RunConfig {
        tau: 5,
        pi: 2,
        total_iters: 20,
        eval_every: 10,
        batch_size: 8,
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    let sim = SimConfig::new(
        NetworkEnv::paper_testbed(4),
        Architecture::ThreeTier,
        50_000,
        1,
        SyncPolicy::AsyncAge { max_staleness: 0 },
    );
    let err = simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
        .expect_err("zero staleness bound must be rejected");
    assert!(matches!(err, SimError::Policy(_)), "got {err:?}");
}
