//! The co-simulation engine: the real training functions under a virtual
//! clock.
//!
//! # How the trajectory stays bitwise-faithful
//!
//! The engine keeps the canonical [`FlState`] as the *server-side mailbox*:
//! worker actors own private training state (a model replica, a private
//! batch stream seeded exactly like the core driver's, and their
//! [`WorkerState`]); an upload copies the actor's state into its `FlState`
//! slot; aggregation hooks run against `FlState` through the same
//! `EdgeView` the core driver uses; and a download ships the post-hook slot
//! back to the actor. Under [`SyncPolicy::FullSync`] the mailbox therefore
//! undergoes *exactly* the mutation sequence of [`hieradmo_core::run`] —
//! same gradient path (batch draw, clipping, `local_step`), same
//! aggregation order, same fixed-chunk ordered evaluation reduction — so
//! the final model, convergence curve and γℓ diagnostics are bitwise
//! identical; only the time axis is new.
//!
//! # Determinism
//!
//! Events are processed in `(time, actor, seq)` order from a single queue
//! ([`crate::EventQueue`]); every actor draws its delays from a private
//! decorrelated RNG stream ([`hieradmo_netsim::stream_seed`]), so an
//! actor's delay sequence depends only on its own draw count, never on
//! global interleaving. Threads are used only inside evaluation, which
//! reduces partial sums in a fixed order — results are identical for any
//! `RunConfig::threads`.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use hieradmo_core::byzantine::{corrupt_upload, replay_upload};
use hieradmo_core::driver::{build_train_probe, evaluate_on_replicas};
use hieradmo_core::{
    EdgeState, FlState, RunConfig, RunError, Strategy, TierScope, TrainingSnapshot, WorkerState,
};
use hieradmo_data::{Batcher, Dataset};
use hieradmo_metrics::{
    ActorAdversaries, ActorFaults, ActorUtilization, AdversaryCounters, ConvergenceCurve,
    EvalPoint, FaultCounters, TimedCurve, TimedPoint, TopologyCounters,
};
use hieradmo_models::{Evaluation, Model};
use hieradmo_netsim::{
    AdversarySampler, Architecture, AttackModel, DelaySampler, FaultSampler, LinkProfile,
};
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, Schedule, TierAggregation, Weights};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{ActorId, EventQueue};
use crate::policy::{SimConfig, SyncPolicy};

/// Errors a co-simulation can fail with before any events are processed.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The training inputs are inconsistent (same checks as the core
    /// driver).
    Run(RunError),
    /// The network environment does not match the topology.
    Net(String),
    /// The synchronization policy's parameters are invalid.
    Policy(String),
    /// The fault plan's parameters are invalid or reference unknown
    /// actors.
    Fault(String),
    /// The adversary plan references workers outside the topology (its
    /// parameter validity is checked by [`RunConfig::validate`]).
    Adversary(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Run(e) => write!(f, "{e}"),
            SimError::Net(m) => write!(f, "network mismatch: {m}"),
            SimError::Policy(m) => write!(f, "invalid sync policy: {m}"),
            SimError::Fault(m) => write!(f, "invalid fault plan: {m}"),
            SimError::Adversary(m) => write!(f, "invalid adversary plan: {m}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for SimError {
    fn from(e: RunError) -> Self {
        SimError::Run(e)
    }
}

/// The outcome of one co-simulated training run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Algorithm name (Table II row label).
    pub algorithm: String,
    /// Label of the [`SyncPolicy`] the run used.
    pub policy: String,
    /// Accuracy/loss trajectory, indexed by training progress. Under
    /// [`SyncPolicy::FullSync`] this is bitwise identical to
    /// [`hieradmo_core::RunResult::curve`]; under relaxed policies one
    /// point is recorded per cloud aggregation, indexed by committed local
    /// steps.
    pub curve: ConvergenceCurve,
    /// The same trajectory against *simulated seconds* — the honest
    /// time-to-accuracy axis of the paper's Fig. 2(h)/(l).
    pub timed_curve: TimedCurve,
    /// `(k, γℓ)` diagnostics. Under full sync: `(round, mean over edges)`,
    /// identical to the core driver's; under relaxed policies one entry per
    /// edge firing (in firing order).
    pub gamma_trace: Vec<(usize, f32)>,
    /// `(k, cos θ)` diagnostics, same convention as
    /// [`SimResult::gamma_trace`].
    pub cos_trace: Vec<(usize, f32)>,
    /// Per-middle-tier γ diagnostics on N-tier runs, one trace per middle
    /// depth in `TierTree::middle_depths` order — the event-driven
    /// counterpart of `hieradmo_core::RunResult::tier_gamma`. Empty on
    /// three-tier runs; an identity (pass-through) tier's trace stays
    /// empty, since that tier never aggregates.
    pub tier_gamma: Vec<Vec<(usize, f32)>>,
    /// Final global model parameters.
    pub final_params: Vector,
    /// Virtual duration of the whole run.
    pub simulated_seconds: f64,
    /// Per-actor busy time and utilization over the run.
    pub utilization: Vec<ActorUtilization>,
    /// Per-actor fault tallies, in the same actor order as
    /// [`SimResult::utilization`]. All-zero when the run's
    /// [`hieradmo_netsim::FaultPlan`] is empty.
    pub faults: Vec<ActorFaults>,
    /// Per-actor Byzantine-attack tallies, in the same actor order as
    /// [`SimResult::utilization`]. Only workers can be Byzantine, so edge
    /// and cloud entries are always zero; everything is zero when the
    /// run's [`hieradmo_netsim::AdversaryPlan`] is empty.
    pub adversaries: Vec<ActorAdversaries>,
    /// Number of discrete events processed.
    pub events: u64,
    /// Topology-churn tallies. All-zero on frozen-tree runs; populated by
    /// [`crate::simulate_elastic`] when a
    /// [`hieradmo_core::RunConfig::churn`] plan mutates the tree mid-run.
    pub topology: TopologyCounters,
}

/// One scheduled occurrence in the simulation.
enum Ev {
    /// A worker finished local step `tick + 1`.
    Step { worker: usize },
    /// A worker's end-of-interval upload reached its aggregator.
    Upload { worker: usize },
    /// A Deadline-policy edge round's timeout expired.
    EdgeTimeout { edge: usize, round: usize },
    /// A distributed model reached a worker (payload snapshotted at fire
    /// time, so later mailbox writes cannot race with it).
    Deliver {
        worker: usize,
        state: Box<WorkerState>,
    },
    /// An edge's submission reached the cloud.
    CloudSubmit { edge: usize, round: usize },
    /// A Deadline-policy cloud round's timeout expired.
    CloudTimeout { round: usize },
    /// The cloud's reply reached an edge.
    CloudReply { edge: usize },
    /// A transiently-crashed worker's downtime expired; it rejoins from
    /// its last server-delivered state.
    Recover { worker: usize },
    /// A worker's scheduled permanent death.
    Die { worker: usize },
    /// A duplicated message's trailing copy arrived at `to`; the
    /// protocol-level round-number dedup (see `hieradmo_netsim::proto`)
    /// suppresses it, so it costs bookkeeping, never state.
    DupArrival { to: ActorId },
}

/// A worker actor: private training state plus its virtual-clock bookkeeping.
struct WorkerSim<M> {
    state: WorkerState,
    model: M,
    batcher: Batcher,
    batch: Vec<usize>,
    /// Completed local steps.
    tick: usize,
    sampler: DelaySampler,
    busy_ms: f64,
    /// Final model received; the worker schedules nothing further.
    done: bool,
    /// Fault draws for this worker's crashes, spikes and link faults.
    fsampler: FaultSampler,
    /// Transiently crashed: down until its pending `Recover` fires.
    down: bool,
    /// Permanently crashed: never recovers, never uploads again.
    dead: bool,
    /// `(tick, state)` of the last server-delivered model — the rejoin
    /// point after a crash. Maintained only when faults are on.
    chain: Option<(usize, Box<WorkerState>)>,
    faults: FaultCounters,
    /// `Some` when this worker is Byzantine: every upload it lands is
    /// corrupted in the server-side mailbox before aggregation.
    attack: Option<AttackModel>,
    /// Noise draws for this worker's attacks (same stream the core driver
    /// uses, so trajectories are comparable run-for-run).
    asampler: AdversarySampler,
    advers: AdversaryCounters,
}

/// An edge actor: round-collection state for the current aggregation.
struct EdgeSim {
    /// Round currently being collected (1-based; sync policies only).
    round: usize,
    /// Completed firings.
    firings: usize,
    /// Which local workers have arrived for the current round.
    arrived: Vec<bool>,
    /// Last round each local worker's upload refreshed its slot
    /// (Deadline staleness bookkeeping).
    last_round: Vec<usize>,
    /// Firings since each local worker's slot was refreshed (AsyncAge).
    age: Vec<usize>,
    /// The current round's timeout has expired (Deadline).
    timed_out: bool,
    /// A cloud submission is outstanding; firing is paused.
    waiting_cloud: bool,
    /// Local workers to release when the cloud replies.
    pending_release: Vec<usize>,
    /// Post-hook worker slots of the last firing — what a late-rejoining
    /// worker is handed (relaxed policies; also maintained under full
    /// sync when faults are on).
    last_dist: Vec<WorkerState>,
    sampler: DelaySampler,
    busy_ms: f64,
    /// Fault draws for this edge's cloud-hop transfers (both directions:
    /// link-fault tallies live at the non-root endpoint of each hop).
    fsampler: FaultSampler,
    faults: FaultCounters,
}

/// The cloud actor: the edge-level analogue of [`EdgeSim`].
struct CloudSim {
    round: usize,
    firings: usize,
    arrived: Vec<bool>,
    last_round: Vec<usize>,
    age: Vec<usize>,
    timed_out: bool,
    /// Post-hook worker slots per edge from the last firing, handed to
    /// edges whose submissions arrive late (relaxed policies; also
    /// maintained under full sync when faults are on).
    last_dist: Vec<Option<Vec<WorkerState>>>,
    sampler: DelaySampler,
    busy_ms: f64,
    faults: FaultCounters,
}

/// Pending full-sync evaluation at one tick: per-worker model snapshots,
/// evaluated once all `N` have contributed.
struct EvalStage {
    xs: Vec<Option<Vector>>,
    count: usize,
    last_ms: f64,
}

/// One completed evaluation, ordered by `iter` when the curves are built.
struct EvalRec {
    iter: usize,
    at_ms: f64,
    test: Evaluation,
    train: Evaluation,
}

/// `ceil(quorum · n)`, clamped to `[1, n]`.
pub(crate) fn quorum_count(quorum: f64, n: usize) -> usize {
    ((quorum * n as f64).ceil() as usize).clamp(1, n)
}

/// One topology-epoch slice of a virtual-clock run (see
/// [`crate::simulate_elastic`]): the engine executes ticks
/// `(start, limit]` against a frozen tree, restoring the mailbox from
/// `resume` and fast-forwarding every training RNG stream over the prefix
/// exactly as the core driver's resume path does. A plain
/// [`crate::simulate`] is the full span.
pub(crate) struct Span<'a> {
    /// Ticks already trained when the span begins (a multiple of `τ·π`).
    pub start: usize,
    /// The tick the span runs to (a multiple of `τ·π`; the whole run on
    /// frozen-tree simulations).
    pub limit: usize,
    /// Mid-run federation state to restore the mailbox from.
    pub resume: Option<&'a TrainingSnapshot>,
    /// Last curve iteration issued by the previous span (relaxed-policy
    /// index continuity).
    pub iter_base: usize,
    /// Global edge-firing counter carried over from the previous span
    /// (relaxed-policy trace index continuity).
    pub firing_base: usize,
    /// This span runs to the end of the whole run: record the final
    /// relaxed-policy evaluation in `finish`.
    pub final_segment: bool,
}

impl Span<'_> {
    /// The whole run as one span.
    fn full(cfg: &RunConfig) -> Self {
        Span {
            start: 0,
            limit: cfg.total_iters,
            resume: None,
            iter_base: 0,
            firing_base: 0,
            final_segment: true,
        }
    }
}

/// Evaluates `params` on the test set and training probe with the core
/// engine's exact reduction: fixed [`EVAL_CHUNK`]-sample chunks, partial
/// sums merged in `(target, chunk index)` order. `models` provides one
/// replica per evaluation lane; with a single replica everything runs on
/// the calling thread through the identical code path.
fn evaluate_params<M>(
    models: &mut [M],
    test: &Dataset,
    probe: &Dataset,
    params: &Vector,
) -> (Evaluation, Evaluation)
where
    M: Model + Send,
{
    evaluate_on_replicas(models, test, probe, params)
}

struct Engine<'a, M, S: ?Sized> {
    strategy: &'a S,
    cfg: &'a RunConfig,
    sim: &'a SimConfig,
    hierarchy: &'a Hierarchy,
    worker_data: &'a [Dataset],
    test_data: &'a Dataset,
    train_probe: Dataset,
    eval_models: Vec<M>,
    /// Flat-worker → edge index.
    edge_of: Vec<usize>,
    /// Edge → flat index of its first worker.
    offsets: Vec<usize>,
    /// Pre-drawn dropout table, `(tick - 1) * N + worker`, in the core
    /// driver's exact draw order.
    active: Vec<bool>,
    fl: FlState,
    workers: Vec<WorkerSim<M>>,
    edges: Vec<EdgeSim>,
    cloud: CloudSim,
    queue: EventQueue<Ev>,
    now: f64,
    events: u64,
    evals: Vec<EvalRec>,
    pending_evals: BTreeMap<usize, EvalStage>,
    /// Full-sync eval ticks already evaluated — a crash-redo must not
    /// re-create a completed stage (faults only; empty otherwise).
    completed_evals: BTreeSet<usize>,
    /// Per-round `(γℓ, cos θ)` per edge, emitted as means once every edge
    /// has fired the round (full sync only).
    gamma_stage: BTreeMap<usize, Vec<Option<(f32, f32)>>>,
    gamma_trace: Vec<(usize, f32)>,
    cos_trace: Vec<(usize, f32)>,
    /// Per-middle-depth `(round, mean γℓ)` traces (N-tier runs only).
    tier_gamma: Vec<Vec<(usize, f32)>>,
    /// Edge rounds between cloud submissions: the most frequent boundary
    /// at which any state-changing aggregation above the edges fires —
    /// `π` on three-tier runs (and whenever every middle tier is
    /// identity), else the deepest non-identity middle tier's
    /// `TierTree::sync_rounds`. Divides `π` by construction, so root
    /// boundaries are always submission boundaries.
    submit_period: usize,
    /// Global edge-firing counter (relaxed-policy trace index).
    firing_seq: usize,
    /// Last curve iteration issued (relaxed policies).
    last_iter: usize,
    /// The fault plan injects something; `false` guarantees zero fault
    /// draws and a run bitwise identical to one without fault injection.
    faults_on: bool,
    /// Tick this span runs to (`total_iters` on frozen-tree runs).
    limit: usize,
    /// Whether `finish` records the final relaxed-policy evaluation.
    final_segment: bool,
}

impl<'a, M, S> Engine<'a, M, S>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    #[allow(clippy::too_many_arguments)]
    fn new(
        strategy: &'a S,
        model: &M,
        hierarchy: &'a Hierarchy,
        worker_data: &'a [Dataset],
        test_data: &'a Dataset,
        cfg: &'a RunConfig,
        sim: &'a SimConfig,
        span: Span<'_>,
    ) -> Self {
        let n = hierarchy.num_workers();
        let l_count = hierarchy.num_edges();
        let samples: Vec<u64> = worker_data.iter().map(|d| d.len() as u64).collect();
        let weights = Weights::from_samples(hierarchy, &samples);
        let mut fl = FlState::new(hierarchy.clone(), weights, &model.params());
        fl.aggregator = cfg.aggregator;
        if let Some(tree) = &sim.tiers {
            fl.attach_tree(tree.clone());
        }
        strategy.init(&mut fl);
        if let Some(snap) = span.resume {
            // All algorithm state lives in the tier vectors (same rule the
            // core driver's resume path relies on).
            fl.workers = snap.workers.clone();
            fl.edges = snap.edges.clone();
            fl.cloud = snap.cloud.clone();
        }
        // Edges submit cloud-wards at every boundary where some tier above
        // them mutates state; identity middles are free, so a pure
        // pass-through tree keeps the three-tier submission cadence (and
        // every delay stream) untouched.
        let submit_period = match &sim.tiers {
            Some(tree) => tree
                .middle_depths()
                .filter(|&d| tree.levels()[d].aggregation != TierAggregation::Identity)
                .map(|d| tree.sync_rounds(d))
                .min()
                .unwrap_or(cfg.pi),
            None => cfg.pi,
        };

        let mut edge_of = vec![0usize; n];
        let mut offsets = vec![0usize; l_count];
        for (e, offset) in offsets.iter_mut().enumerate() {
            let range = hierarchy.edge_workers(e);
            *offset = range.start;
            for i in range {
                edge_of[i] = e;
            }
        }

        // Dropout table, pre-drawn in the core driver's (tick-major,
        // worker-minor) order; when dropout is zero the driver draws
        // nothing, and neither does the table.
        let total = cfg.total_iters;
        let active = if cfg.dropout == 0.0 {
            vec![true; total * n]
        } else {
            let mut fault_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5f_5f5f_5f5f_5f5f);
            (0..total * n)
                .map(|_| fault_rng.gen_range(0.0..1.0) >= cfg.dropout)
                .collect()
        };

        let faults_on = !sim.faults.is_empty();
        let dim = fl.dim();
        let start = span.start;
        let edge_rounds_done = start / cfg.tau;
        let cloud_rounds_done = start / (cfg.tau * submit_period);
        let workers: Vec<WorkerSim<M>> = (0..n)
            .map(|i| {
                // Fast-forward the training RNG streams over the span's
                // prefix exactly as the core driver's resume path does:
                // one mini-batch draw per *active* prefix tick (the
                // dropout table above already replayed those draws) and
                // one adversary draw per edge boundary.
                let mut batcher = Batcher::new(
                    worker_data[i].len(),
                    cfg.batch_size,
                    cfg.seed.wrapping_add(i as u64),
                );
                let mut batch = Vec::with_capacity(cfg.batch_size.min(worker_data[i].len()));
                for t in 1..=start {
                    if active[(t - 1) * n + i] {
                        batcher.next_batch_into(&mut batch);
                    }
                }
                let attack = cfg.adversary.attack_for(i);
                let mut asampler = AdversarySampler::from_stream(cfg.seed, i as u64);
                if let Some(a) = attack {
                    for _ in 0..edge_rounds_done {
                        replay_upload(dim, &a, &mut asampler);
                    }
                }
                WorkerSim {
                    state: fl.workers[i].clone(),
                    model: model.clone(),
                    batcher,
                    batch,
                    tick: start,
                    sampler: DelaySampler::from_stream(sim.net_seed, i as u64),
                    busy_ms: 0.0,
                    done: false,
                    fsampler: FaultSampler::from_stream(sim.net_seed, i as u64),
                    down: false,
                    dead: false,
                    chain: faults_on.then(|| (start, Box::new(fl.workers[i].clone()))),
                    faults: FaultCounters::default(),
                    attack,
                    asampler,
                    advers: AdversaryCounters::default(),
                }
            })
            .collect();
        let edges: Vec<EdgeSim> = (0..l_count)
            .map(|e| {
                let c = hierarchy.workers_in_edge(e);
                EdgeSim {
                    round: edge_rounds_done + 1,
                    firings: edge_rounds_done,
                    arrived: vec![false; c],
                    last_round: vec![edge_rounds_done; c],
                    age: vec![0; c],
                    timed_out: false,
                    waiting_cloud: false,
                    pending_release: Vec::new(),
                    last_dist: fl.workers[hierarchy.edge_workers(e)].to_vec(),
                    sampler: DelaySampler::from_stream(sim.net_seed, (n + e) as u64),
                    busy_ms: 0.0,
                    fsampler: FaultSampler::from_stream(sim.net_seed, (n + e) as u64),
                    faults: FaultCounters::default(),
                }
            })
            .collect();
        let cloud = CloudSim {
            round: cloud_rounds_done + 1,
            firings: cloud_rounds_done,
            arrived: vec![false; l_count],
            last_round: vec![cloud_rounds_done; l_count],
            age: vec![0; l_count],
            timed_out: false,
            last_dist: vec![None; l_count],
            sampler: DelaySampler::from_stream(sim.net_seed, (n + l_count) as u64),
            busy_ms: 0.0,
            faults: FaultCounters::default(),
        };
        let threads = cfg.resolved_threads();
        let tier_gamma = vec![Vec::new(); fl.middle.len()];

        Engine {
            strategy,
            cfg,
            sim,
            hierarchy,
            worker_data,
            test_data,
            train_probe: build_train_probe(worker_data, cfg.train_eval_cap),
            eval_models: (0..threads).map(|_| model.clone()).collect(),
            edge_of,
            offsets,
            active,
            fl,
            workers,
            edges,
            cloud,
            queue: EventQueue::new(),
            now: 0.0,
            events: 0,
            evals: Vec::new(),
            pending_evals: BTreeMap::new(),
            completed_evals: BTreeSet::new(),
            gamma_stage: BTreeMap::new(),
            gamma_trace: Vec::new(),
            cos_trace: Vec::new(),
            tier_gamma,
            submit_period,
            firing_seq: span.firing_base,
            last_iter: span.iter_base,
            faults_on,
            limit: span.limit,
            final_segment: span.final_segment,
        }
    }

    fn full_sync(&self) -> bool {
        matches!(self.sim.policy, SyncPolicy::FullSync)
    }

    fn is_eval_tick(&self, t: usize) -> bool {
        t.is_multiple_of(self.cfg.eval_every) || t == self.cfg.total_iters
    }

    /// The link and concurrent-flow count a worker's transfers use.
    fn worker_link(&self, edge: usize) -> (&'a LinkProfile, usize) {
        let sim = self.sim;
        let hierarchy = self.hierarchy;
        match sim.architecture {
            Architecture::ThreeTier => (&sim.env.worker_edge_link, hierarchy.workers_in_edge(edge)),
            Architecture::TwoTier => (&sim.env.worker_cloud_link, hierarchy.num_workers()),
        }
    }

    /// Draws a worker's up/down transfer delay (including retry/backoff
    /// penalties when link faults are on) and charges its busy time.
    /// Returns `(delay_ms, duplicate_lag_ms)`.
    fn worker_transfer(&mut self, i: usize, bytes: u64) -> (f64, Option<f64>) {
        let link_faults = self.sim.faults.link;
        let (link, flows) = self.worker_link(self.edge_of[i]);
        let w = &mut self.workers[i];
        let mut d = w.sampler.shared_transfer_ms(link, bytes, flows);
        let mut dup = None;
        if let Some(lf) = link_faults {
            let out = w.fsampler.transfer(&lf);
            w.faults.add_transfer(
                out.messages_lost,
                out.transfer_failures,
                out.retries,
                out.duplicate_lag_ms.is_some(),
            );
            d += out.penalty_ms;
            dup = out.duplicate_lag_ms;
        }
        w.busy_ms += d;
        (d, dup)
    }

    /// Crash draw at one of a worker's two draw points. On a crash the
    /// worker goes down, its in-progress work is lost, and a `Recover`
    /// fires after the drawn downtime. Returns `true` when it crashed.
    fn maybe_crash(&mut self, i: usize, now: f64, lost_upload: bool) -> bool {
        let Some(cp) = self.sim.faults.crash else {
            return false;
        };
        let w = &mut self.workers[i];
        let Some(dt) = w.fsampler.crash_downtime_ms(&cp) else {
            return false;
        };
        w.faults.crashes += 1;
        w.faults.recovery_ms += dt;
        if lost_upload {
            w.faults.lost_uploads += 1;
        }
        w.down = true;
        self.queue
            .push(now + dt, ActorId::Worker(i), Ev::Recover { worker: i });
        true
    }

    fn schedule_step(&mut self, i: usize, now: f64) {
        if self.maybe_crash(i, now, false) {
            return;
        }
        let sim = self.sim;
        let spikes = sim.faults.spikes;
        let w = &mut self.workers[i];
        let mut d = w.sampler.compute_ms(&sim.env.worker_devices[i]);
        if let Some(sp) = spikes {
            if let Some(factor) = w.fsampler.spike_factor(&sp) {
                d *= factor;
                w.faults.delay_spikes += 1;
            }
        }
        w.busy_ms += d;
        self.queue
            .push(now + d, ActorId::Worker(i), Ev::Step { worker: i });
    }

    /// Sends `state` down to worker `flat` (payload snapshotted now).
    /// Messages to permanently-dead workers are not sent at all.
    fn deliver(&mut self, flat: usize, state: Box<WorkerState>, now: f64) {
        if self.workers[flat].dead {
            return;
        }
        let (d, dup) = self.worker_transfer(flat, self.sim.download_bytes);
        self.queue.push(
            now + d,
            ActorId::Worker(flat),
            Ev::Deliver {
                worker: flat,
                state,
            },
        );
        if let Some(lag) = dup {
            let to = ActorId::Worker(flat);
            self.queue.push(now + d + lag, to, Ev::DupArrival { to });
        }
    }

    fn run_eval(&mut self, params: &Vector) -> (Evaluation, Evaluation) {
        let Engine {
            eval_models,
            test_data,
            train_probe,
            ..
        } = self;
        evaluate_params(eval_models, test_data, train_probe, params)
    }

    /// Full-sync evaluation staging: collects one model snapshot per worker
    /// for tick `t` and evaluates their data-weighted average once all `N`
    /// have contributed — reproducing the core driver's
    /// `global_params`-then-evaluate at that tick bit-for-bit.
    fn stage_eval(&mut self, t: usize, flat: usize, x: Vector, at_ms: f64) {
        if self.completed_evals.contains(&t) {
            // A crash-redo re-passed an already-evaluated tick.
            debug_assert!(self.faults_on);
            return;
        }
        let n = self.workers.len();
        let stage = self.pending_evals.entry(t).or_insert_with(|| EvalStage {
            xs: vec![None; n],
            count: 0,
            last_ms: 0.0,
        });
        if stage.xs[flat].is_some() {
            // A crash-redo re-contributed: keep the first pass's snapshot.
            debug_assert!(
                self.faults_on,
                "worker {flat} contributed twice to tick {t}"
            );
            return;
        }
        stage.xs[flat] = Some(x);
        stage.count += 1;
        stage.last_ms = stage.last_ms.max(at_ms);
        self.try_finish_eval(t, at_ms);
    }

    /// Fires a staged full-sync evaluation once every worker has either
    /// contributed or died permanently; dead workers' snapshots come from
    /// their server-side mailbox slots. With no faults this is exactly the
    /// "all `N` contributed" barrier.
    fn try_finish_eval(&mut self, t: usize, now: f64) {
        let complete = match self.pending_evals.get(&t) {
            Some(stage) => stage
                .xs
                .iter()
                .enumerate()
                .all(|(i, x)| x.is_some() || self.workers[i].dead),
            None => return,
        };
        if !complete {
            return;
        }
        let stage = self.pending_evals.remove(&t).expect("stage just checked");
        self.completed_evals.insert(t);
        let params = Vector::weighted_average(stage.xs.iter().enumerate().map(|(i, x)| {
            (
                self.fl.weights.worker_in_total(i),
                x.as_ref().unwrap_or(&self.fl.workers[i].x),
            )
        }));
        let (test, train) = self.run_eval(&params);
        self.evals.push(EvalRec {
            iter: t,
            at_ms: stage.last_ms.max(now),
            test,
            train,
        });
    }

    /// Full-sync trace staging: per-edge `(γℓ, cos θ)` of round `k`,
    /// reduced to the driver's edge-index-order `f32` means once every edge
    /// has fired the round.
    fn stage_gamma(&mut self, k: usize, e: usize, gamma: f32, cos: f32) {
        let l_count = self.edges.len();
        let slot = self
            .gamma_stage
            .entry(k)
            .or_insert_with(|| vec![None; l_count]);
        slot[e] = Some((gamma, cos));
        self.try_finish_gamma(k);
    }

    /// All of an edge's workers have died permanently: it will never fire
    /// a round again.
    fn edge_all_dead(&self, e: usize) -> bool {
        self.faults_on && self.hierarchy.edge_workers(e).all(|i| self.workers[i].dead)
    }

    /// Emits a staged full-sync `(γℓ, cos θ)` round once every edge has
    /// fired it or will never fire again; the mean is over the edges that
    /// did fire. With no faults this is exactly the "all edges fired"
    /// barrier with the driver's edge-index-order means.
    fn try_finish_gamma(&mut self, k: usize) {
        let complete = match self.gamma_stage.get(&k) {
            Some(slot) => slot
                .iter()
                .enumerate()
                .all(|(e, p)| p.is_some() || self.edge_all_dead(e)),
            None => return,
        };
        if !complete {
            return;
        }
        let slot = self.gamma_stage.remove(&k).expect("stage just checked");
        let fired: Vec<(f32, f32)> = slot.into_iter().flatten().collect();
        let n = fired.len() as f32;
        self.gamma_trace
            .push((k, fired.iter().map(|p| p.0).sum::<f32>() / n));
        self.cos_trace
            .push((k, fired.iter().map(|p| p.1).sum::<f32>() / n));
    }

    /// Relaxed-policy evaluation: the server's current global view, indexed
    /// by committed local steps (made strictly increasing).
    fn record_relaxed_eval(&mut self, at_ms: f64) {
        let committed: usize = self.workers.iter().map(|w| w.tick).sum();
        let iter = committed.max(self.last_iter + 1);
        self.last_iter = iter;
        let params = self.strategy.global_params(&self.fl);
        let (test, train) = self.run_eval(&params);
        self.evals.push(EvalRec {
            iter,
            at_ms,
            test,
            train,
        });
    }

    fn on_step_done(&mut self, i: usize, now: f64) {
        if self.workers[i].dead || self.workers[i].down {
            return; // step was in flight when the worker crashed
        }
        self.workers[i].tick += 1;
        let t = self.workers[i].tick;
        let n = self.workers.len();
        if self.active[(t - 1) * n + i] {
            self.do_local_step(i, t);
        }
        if t.is_multiple_of(self.cfg.tau) {
            // End of interval: upload (dropout skips the step, never the
            // aggregation — matching the core driver). A crash here loses
            // the upload outright.
            if self.maybe_crash(i, now, true) {
                return;
            }
            let (d, dup) = self.worker_transfer(i, self.sim.upload_bytes);
            self.queue
                .push(now + d, ActorId::Worker(i), Ev::Upload { worker: i });
            if let Some(lag) = dup {
                let to = match self.sim.architecture {
                    Architecture::ThreeTier => ActorId::Edge(self.edge_of[i]),
                    Architecture::TwoTier => ActorId::Cloud,
                };
                self.queue.push(now + d + lag, to, Ev::DupArrival { to });
            }
        } else {
            if self.full_sync() && self.is_eval_tick(t) {
                let x = self.workers[i].state.x.clone();
                self.stage_eval(t, i, x, now);
            }
            self.schedule_step(i, now);
        }
    }

    /// One local step, replicating the core pool's gradient path exactly:
    /// batch draw into the reusable buffer, clipped gradient hook against
    /// the worker's private model replica, then the strategy's step.
    fn do_local_step(&mut self, i: usize, t: usize) {
        let strategy = self.strategy;
        let cfg = self.cfg;
        let worker_data = self.worker_data;
        let data = &worker_data[i];
        let w = &mut self.workers[i];
        w.batcher.next_batch_into(&mut w.batch);
        let WorkerSim {
            model,
            batch,
            state,
            ..
        } = w;
        let clip = cfg.clip_norm;
        let mut grad_fn = |p: &Vector, out: &mut Vector| {
            model.set_params(p);
            model.loss_and_grad_into(data, batch, out);
            if let Some(max_norm) = clip {
                let norm = out.norm();
                if norm > max_norm {
                    out.scale_in_place(max_norm / norm);
                }
            }
        };
        strategy.local_step(t, state, &mut grad_fn);
    }

    fn on_upload(&mut self, i: usize, now: f64) {
        if self.workers[i].dead {
            // The sender died while its upload was in flight: lost.
            self.workers[i].faults.lost_uploads += 1;
            return;
        }
        let e = self.edge_of[i];
        let j = i - self.offsets[e];
        let k_up = self.workers[i].tick / self.cfg.tau;
        // Mailbox write: the server-side slot now holds the upload.
        self.fl.workers[i] = self.workers[i].state.clone();
        // A Byzantine worker poisons the upload in flight: the corruption
        // lands on the mailbox slot (what aggregation reads), never on the
        // actor's private state — under full sync this is exactly the core
        // driver's corrupt-before-aggregate, because the post-hook slot is
        // shipped back wholesale on the download. One draw per landed
        // upload keeps the per-worker stream aligned with the core driver's
        // per-boundary draws.
        if let Some(attack) = self.workers[i].attack {
            let w = &mut self.workers[i];
            corrupt_upload(
                &mut self.fl.workers[i],
                &attack,
                &mut w.asampler,
                &mut w.advers,
            );
        }
        match self.sim.policy {
            SyncPolicy::FullSync => {
                self.edges[e].arrived[j] = true;
                self.maybe_fire_edge_full(e, now);
            }
            SyncPolicy::Deadline { timeout_ms, .. } => {
                if k_up < self.edges[e].round {
                    // Late: the round fired without this worker. Its upload
                    // carries over in the mailbox; hand it the round's
                    // distribution so it rejoins immediately.
                    self.edges[e].last_round[j] = k_up;
                    if self.edges[e].waiting_cloud {
                        self.edges[e].pending_release.push(j);
                    } else {
                        let payload = Box::new(self.edges[e].last_dist[j].clone());
                        self.deliver(i, payload, now);
                    }
                } else {
                    let first = !self.edges[e].arrived.iter().any(|&a| a);
                    self.edges[e].arrived[j] = true;
                    self.edges[e].last_round[j] = k_up;
                    if first {
                        let round = self.edges[e].round;
                        self.queue.push(
                            now + timeout_ms,
                            ActorId::Edge(e),
                            Ev::EdgeTimeout { edge: e, round },
                        );
                    }
                    self.maybe_fire_edge_deadline(e, now);
                }
            }
            SyncPolicy::AsyncAge { .. } => {
                self.edges[e].arrived[j] = true;
                self.edges[e].age[j] = 0;
                self.maybe_fire_edge_async(e, now);
            }
        }
    }

    fn on_edge_timeout(&mut self, e: usize, round: usize, now: f64) {
        if self.edges[e].round != round {
            return; // stale timer for an already-fired round
        }
        self.edges[e].timed_out = true;
        self.maybe_fire_edge_deadline(e, now);
    }

    /// Full-sync edge barrier with a fault waiver: fires once every local
    /// worker has arrived or died permanently (at least one arrival). With
    /// no faults this is exactly the all-arrived barrier.
    fn maybe_fire_edge_full(&mut self, e: usize, now: f64) {
        let offset = self.offsets[e];
        let edge = &self.edges[e];
        if edge.waiting_cloud || !edge.arrived.iter().any(|&a| a) {
            return;
        }
        let all = edge
            .arrived
            .iter()
            .enumerate()
            .all(|(j, &a)| a || self.workers[offset + j].dead);
        if all {
            self.fire_edge(e, now);
        }
    }

    fn maybe_fire_edge_deadline(&mut self, e: usize, now: f64) {
        let SyncPolicy::Deadline { quorum, .. } = self.sim.policy else {
            return;
        };
        let offset = self.offsets[e];
        let edge = &self.edges[e];
        if edge.waiting_cloud {
            return;
        }
        let have = edge.arrived.iter().filter(|&&a| a).count();
        if have == 0 {
            return;
        }
        let total = edge.arrived.len();
        // Quorum re-derivation: permanently-dead absentees leave the
        // denominator, so a strict minority dying can never deadlock the
        // round. `live_total >= have >= 1` keeps the clamp well-defined.
        let absent_dead = edge
            .arrived
            .iter()
            .enumerate()
            .filter(|&(j, &a)| !a && self.workers[offset + j].dead)
            .count();
        let live_total = total - absent_dead;
        if have == live_total || (edge.timed_out && have >= quorum_count(quorum, live_total)) {
            self.fire_edge(e, now);
        }
    }

    fn maybe_fire_edge_async(&mut self, e: usize, now: f64) {
        let SyncPolicy::AsyncAge { max_staleness } = self.sim.policy else {
            return;
        };
        let edge = &self.edges[e];
        if edge.waiting_cloud || !edge.arrived.iter().any(|&a| a) {
            return;
        }
        // A too-stale absent worker blocks the firing — unless it is done
        // (or permanently dead) and will never upload again: the
        // staleness cap is waived for children that cannot catch up.
        let offset = self.offsets[e];
        let blocked = edge.arrived.iter().enumerate().any(|(j, &arr)| {
            let w = &self.workers[offset + j];
            !arr && edge.age[j] >= max_staleness && !w.done && !w.dead
        });
        if !blocked {
            self.fire_edge(e, now);
        }
    }

    /// Fires the edge's current round with whoever has arrived: runs the
    /// strategy's (staleness-aware) edge hook against the mailbox, then
    /// either submits to the cloud (boundary rounds) or distributes the
    /// post-hook slots back to the participants.
    fn fire_edge(&mut self, e: usize, now: f64) {
        let strategy = self.strategy;
        let sim = self.sim;
        let offset = self.offsets[e];
        let c = self.edges[e].arrived.len();
        let participants: Vec<usize> = (0..c).filter(|&j| self.edges[e].arrived[j]).collect();
        let (k, staleness): (usize, Vec<usize>) = match sim.policy {
            SyncPolicy::FullSync => (self.edges[e].round, vec![0; c]),
            SyncPolicy::Deadline { .. } => {
                let r = self.edges[e].round;
                let stale = (0..c)
                    .map(|j| r.saturating_sub(self.edges[e].last_round[j]))
                    .collect();
                (r, stale)
            }
            SyncPolicy::AsyncAge { .. } => (self.edges[e].firings + 1, self.edges[e].age.clone()),
        };
        // Aggregation compute (three-tier only: a two-tier "edge" is the
        // cloud's frontend and charges nothing of its own).
        let d = match sim.architecture {
            Architecture::ThreeTier => {
                let dd = self.edges[e].sampler.compute_ms(&sim.env.edge_device);
                self.edges[e].busy_ms += dd;
                dd
            }
            Architecture::TwoTier => 0.0,
        };
        {
            let mut view = self.fl.edge_view(e);
            strategy.edge_aggregate_stale(k, &mut view, &staleness);
        }
        let (gamma, cos) = (self.fl.edges[e].gamma_edge, self.fl.edges[e].cos_theta);
        if self.full_sync() {
            self.stage_gamma(k, e, gamma, cos);
        } else {
            self.firing_seq += 1;
            self.gamma_trace.push((self.firing_seq, gamma));
            self.cos_trace.push((self.firing_seq, cos));
        }
        if !self.full_sync() || self.faults_on {
            // Rejoin snapshot for late or recovering workers.
            self.edges[e].last_dist = self.fl.workers[offset..offset + c].to_vec();
        }
        let firings_after = self.edges[e].firings + 1;
        // `submit_period` equals `π` except on N-tier runs, where a
        // non-identity middle tier pulls the submission boundary in.
        let cloud_round = match sim.policy {
            SyncPolicy::FullSync | SyncPolicy::Deadline { .. } => {
                k.is_multiple_of(self.submit_period)
            }
            SyncPolicy::AsyncAge { .. } => firings_after.is_multiple_of(self.submit_period),
        };
        if self.full_sync() {
            let t = k * self.cfg.tau;
            if !cloud_round && self.is_eval_tick(t) {
                for j in 0..c {
                    let x = self.fl.workers[offset + j].x.clone();
                    self.stage_eval(t, offset + j, x, now + d);
                }
            }
        }
        if cloud_round {
            self.edges[e].waiting_cloud = true;
            self.edges[e].pending_release = participants.clone();
            let (du, dup) = match sim.architecture {
                Architecture::ThreeTier => {
                    let flows = self.edges.len();
                    let mut dd = self.edges[e].sampler.shared_transfer_ms(
                        &sim.env.edge_cloud_link,
                        sim.upload_bytes,
                        flows,
                    );
                    let mut dup = None;
                    if let Some(lf) = sim.faults.link {
                        let out = self.edges[e].fsampler.transfer(&lf);
                        self.edges[e].faults.add_transfer(
                            out.messages_lost,
                            out.transfer_failures,
                            out.retries,
                            out.duplicate_lag_ms.is_some(),
                        );
                        dd += out.penalty_ms;
                        dup = out.duplicate_lag_ms;
                    }
                    self.edges[e].busy_ms += dd;
                    (dd, dup)
                }
                Architecture::TwoTier => (0.0, None),
            };
            let p = match sim.policy {
                SyncPolicy::AsyncAge { .. } => firings_after / self.submit_period,
                _ => k / self.submit_period,
            };
            self.queue.push(
                now + d + du,
                ActorId::Edge(e),
                Ev::CloudSubmit { edge: e, round: p },
            );
            if let Some(lag) = dup {
                self.queue.push(
                    now + d + du + lag,
                    ActorId::Cloud,
                    Ev::DupArrival { to: ActorId::Cloud },
                );
            }
        } else {
            for &j in &participants {
                let flat = offset + j;
                let payload = Box::new(self.fl.workers[flat].clone());
                self.deliver(flat, payload, now + d);
            }
        }
        let edge = &mut self.edges[e];
        edge.firings = firings_after;
        edge.arrived.fill(false);
        edge.timed_out = false;
        match sim.policy {
            SyncPolicy::FullSync | SyncPolicy::Deadline { .. } => edge.round += 1,
            SyncPolicy::AsyncAge { .. } => {
                for (j, a) in edge.age.iter_mut().enumerate() {
                    if participants.contains(&j) {
                        *a = 0;
                    } else {
                        *a += 1;
                    }
                }
            }
        }
    }

    fn on_cloud_submit(&mut self, e: usize, p: usize, now: f64) {
        match self.sim.policy {
            SyncPolicy::FullSync => {
                if self.faults_on && p < self.cloud.round {
                    // A dead-waived round fired without this edge and its
                    // submission only arrived now; releasing from the last
                    // snapshot keeps the next round's collection clean.
                    self.cloud.last_round[e] = p;
                    self.release_edge_from_snapshot(e, now);
                } else {
                    self.cloud.arrived[e] = true;
                    self.cloud.last_round[e] = p;
                    self.maybe_fire_cloud_full(now);
                }
            }
            SyncPolicy::Deadline { timeout_ms, .. } => {
                if p < self.cloud.round {
                    // Late: the cloud round fired without this edge. Its
                    // submission carries over in the mailbox; release its
                    // waiting workers with the last distributed global.
                    self.cloud.last_round[e] = p;
                    self.release_edge_from_snapshot(e, now);
                } else {
                    let first = !self.cloud.arrived.iter().any(|&a| a);
                    self.cloud.arrived[e] = true;
                    self.cloud.last_round[e] = p;
                    if first {
                        let round = self.cloud.round;
                        self.queue.push(
                            now + timeout_ms,
                            ActorId::Cloud,
                            Ev::CloudTimeout { round },
                        );
                    }
                    self.maybe_fire_cloud_deadline(now);
                }
            }
            SyncPolicy::AsyncAge { .. } => {
                self.cloud.arrived[e] = true;
                self.cloud.age[e] = 0;
                self.cloud.last_round[e] = p;
                self.maybe_fire_cloud_async(now);
            }
        }
    }

    fn on_cloud_timeout(&mut self, round: usize, now: f64) {
        if self.cloud.round != round {
            return;
        }
        self.cloud.timed_out = true;
        self.maybe_fire_cloud_deadline(now);
    }

    /// An edge that will never submit again because every one of its
    /// workers died permanently (and nothing of its is in flight).
    fn edge_perma_dead(&self, l: usize) -> bool {
        !self.edges[l].waiting_cloud && self.edge_all_dead(l)
    }

    /// Full-sync cloud barrier with a fault waiver: fires once every edge
    /// has submitted or is permanently dead (at least one submission).
    fn maybe_fire_cloud_full(&mut self, now: f64) {
        if !self.cloud.arrived.iter().any(|&a| a) {
            return;
        }
        let all = self
            .cloud
            .arrived
            .iter()
            .enumerate()
            .all(|(l, &a)| a || self.edge_perma_dead(l));
        if all {
            self.fire_cloud(now);
        }
    }

    fn maybe_fire_cloud_deadline(&mut self, now: f64) {
        let SyncPolicy::Deadline { quorum, .. } = self.sim.policy else {
            return;
        };
        let have = self.cloud.arrived.iter().filter(|&&a| a).count();
        if have == 0 {
            return;
        }
        let total = self.cloud.arrived.len();
        // Same quorum re-derivation as the edge barrier: permanently-dead
        // edges leave the denominator.
        let absent_dead = (0..total)
            .filter(|&l| !self.cloud.arrived[l] && self.edge_perma_dead(l))
            .count();
        let live_total = total - absent_dead;
        if have == live_total || (self.cloud.timed_out && have >= quorum_count(quorum, live_total))
        {
            self.fire_cloud(now);
        }
    }

    /// An edge that can never submit again: all of its workers hold their
    /// final model (or died permanently) and nothing of its is in flight.
    fn edge_exhausted(&self, l: usize) -> bool {
        !self.edges[l].waiting_cloud
            && self
                .hierarchy
                .edge_workers(l)
                .all(|i| self.workers[i].done || self.workers[i].dead)
    }

    fn maybe_fire_cloud_async(&mut self, now: f64) {
        let SyncPolicy::AsyncAge { max_staleness } = self.sim.policy else {
            return;
        };
        if !self.cloud.arrived.iter().any(|&a| a) {
            return;
        }
        let blocked =
            self.cloud.arrived.iter().enumerate().any(|(l, &arr)| {
                !arr && self.cloud.age[l] >= max_staleness && !self.edge_exhausted(l)
            });
        if !blocked {
            self.fire_cloud(now);
        }
    }

    /// Fires the cloud round with whichever edges have submitted. For
    /// partial rounds the absent edges' mailbox state is snapshotted around
    /// the hook, so the global update reads their carried-over submissions
    /// but does not overwrite state they never received.
    fn fire_cloud(&mut self, now: f64) {
        let strategy = self.strategy;
        let sim = self.sim;
        let hierarchy = self.hierarchy;
        let l_count = self.cloud.arrived.len();
        let participants: Vec<usize> = (0..l_count).filter(|&l| self.cloud.arrived[l]).collect();
        let (p, staleness): (usize, Vec<usize>) = match sim.policy {
            SyncPolicy::FullSync => (self.cloud.round, vec![0; l_count]),
            SyncPolicy::Deadline { .. } => {
                let r = self.cloud.round;
                let stale = (0..l_count)
                    .map(|l| r.saturating_sub(self.cloud.last_round[l]))
                    .collect();
                (r, stale)
            }
            SyncPolicy::AsyncAge { .. } => (self.cloud.firings + 1, self.cloud.age.clone()),
        };
        let d = self.cloud.sampler.compute_ms(&sim.env.cloud_device);
        self.cloud.busy_ms += d;
        let saved: Vec<(usize, EdgeState, Vec<WorkerState>)> = (0..l_count)
            .filter(|l| !participants.contains(l))
            .map(|l| {
                (
                    l,
                    self.fl.edges[l].clone(),
                    self.fl.workers[hierarchy.edge_workers(l)].to_vec(),
                )
            })
            .collect();
        // The edge round this submission closes; `p` counts submission
        // boundaries, which fall every `submit_period` edge rounds.
        let k = p * self.submit_period;
        // Middle tiers (co-hosted here, at the cloud actor) fire bottom-up
        // at their own interval boundaries, exactly as the tick-driven
        // driver does between its edge and cloud phases. They draw no RNG
        // and identity tiers touch no state, so three-tier and
        // pass-through runs are unaffected draw for draw. Each node sees
        // the staleness of its own subtree's edges (its contiguous span of
        // the per-edge vector); all-zero — every FullSync round — is
        // bitwise the synchronous hook, otherwise stale subtree edges are
        // carried over at bounded age (`default_middle_aggregate_stale`).
        if let Some(tree) = &sim.tiers {
            for td in tree.middle_depths().rev() {
                // Identity tiers fire nothing and record nothing — a
                // pass-through tree must match its collapse bitwise,
                // γ traces included.
                if tree.levels()[td].aggregation == TierAggregation::Identity {
                    continue;
                }
                let period = tree.sync_rounds(td);
                if k.is_multiple_of(period) {
                    let round = k / period;
                    let span = tree.edges_per_node(td);
                    for node in 0..tree.nodes_at(td) {
                        strategy.tier_aggregate_stale(
                            TierScope::Middle {
                                depth: td,
                                node,
                                state: &mut self.fl,
                            },
                            round,
                            &staleness[node * span..(node + 1) * span],
                        );
                    }
                    let tier = &self.fl.middle[td - 1];
                    let mean = tier.iter().map(|s| s.gamma_edge).sum::<f32>() / tier.len() as f32;
                    self.tier_gamma[td - 1].push((round, mean));
                }
            }
        }
        // The root fires only on its own boundary — every submission on
        // three-tier runs, every `π / submit_period`-th on N-tier runs.
        let root_fires = k.is_multiple_of(self.cfg.pi);
        if root_fires {
            strategy.cloud_aggregate_stale(k / self.cfg.pi, &mut self.fl, &staleness);
        }
        if !self.full_sync() || self.faults_on {
            for l in 0..l_count {
                self.cloud.last_dist[l] = Some(self.fl.workers[hierarchy.edge_workers(l)].to_vec());
            }
        }
        for (l, es, ws) in saved {
            self.fl.edges[l] = es;
            self.fl.workers[hierarchy.edge_workers(l)].clone_from_slice(&ws);
        }
        if self.full_sync() {
            let t = k * self.cfg.tau;
            if self.is_eval_tick(t) {
                let params = strategy.global_params(&self.fl);
                let (test, train) = self.run_eval(&params);
                self.evals.push(EvalRec {
                    iter: t,
                    at_ms: now + d,
                    test,
                    train,
                });
            }
        } else {
            self.record_relaxed_eval(now + d);
        }
        for &l in &participants {
            let (dd, dup) = match sim.architecture {
                Architecture::ThreeTier => {
                    let mut delay = self.edges[l].sampler.shared_transfer_ms(
                        &sim.env.edge_cloud_link,
                        sim.download_bytes,
                        l_count,
                    );
                    let mut dup = None;
                    if let Some(lf) = sim.faults.link {
                        let out = self.edges[l].fsampler.transfer(&lf);
                        self.edges[l].faults.add_transfer(
                            out.messages_lost,
                            out.transfer_failures,
                            out.retries,
                            out.duplicate_lag_ms.is_some(),
                        );
                        delay += out.penalty_ms;
                        dup = out.duplicate_lag_ms;
                    }
                    self.edges[l].busy_ms += delay;
                    (delay, dup)
                }
                Architecture::TwoTier => (0.0, None),
            };
            self.queue
                .push(now + d + dd, ActorId::Edge(l), Ev::CloudReply { edge: l });
            if let Some(lag) = dup {
                let to = ActorId::Edge(l);
                self.queue
                    .push(now + d + dd + lag, to, Ev::DupArrival { to });
            }
        }
        self.cloud.firings += 1;
        self.cloud.arrived.fill(false);
        self.cloud.timed_out = false;
        match sim.policy {
            SyncPolicy::FullSync | SyncPolicy::Deadline { .. } => self.cloud.round += 1,
            SyncPolicy::AsyncAge { .. } => {
                for (l, a) in self.cloud.age.iter_mut().enumerate() {
                    if participants.contains(&l) {
                        *a = 0;
                    } else {
                        *a += 1;
                    }
                }
            }
        }
    }

    /// Releases an edge whose submission arrived after its cloud round
    /// fired: its waiting workers get the last distributed global model.
    fn release_edge_from_snapshot(&mut self, e: usize, now: f64) {
        let ws = self.cloud.last_dist[e]
            .clone()
            .expect("late cloud submission implies a prior cloud firing");
        self.edges[e].waiting_cloud = false;
        self.edges[e].last_dist = ws.clone();
        let offset = self.offsets[e];
        let pending: Vec<usize> = std::mem::take(&mut self.edges[e].pending_release);
        for j in pending {
            self.deliver(offset + j, Box::new(ws[j].clone()), now);
        }
    }

    fn on_cloud_reply(&mut self, e: usize, now: f64) {
        self.edges[e].waiting_cloud = false;
        let offset = self.offsets[e];
        let c = self.edges[e].arrived.len();
        if !self.full_sync() || self.faults_on {
            // Late joiners from here on get the post-cloud distribution.
            self.edges[e].last_dist = self.fl.workers[offset..offset + c].to_vec();
        }
        let pending: Vec<usize> = std::mem::take(&mut self.edges[e].pending_release);
        for j in pending {
            let flat = offset + j;
            let payload = Box::new(self.fl.workers[flat].clone());
            self.deliver(flat, payload, now);
        }
        match self.sim.policy {
            SyncPolicy::AsyncAge { .. } => {
                // Arrivals queued while the submission was outstanding.
                self.maybe_fire_edge_async(e, now);
            }
            SyncPolicy::FullSync if self.faults_on => {
                // A death while the submission was outstanding may have
                // satisfied the waived barrier.
                self.maybe_fire_edge_full(e, now);
                self.maybe_fire_cloud_full(now);
            }
            _ => {}
        }
    }

    fn on_deliver(&mut self, flat: usize, state: WorkerState, now: f64) {
        if self.workers[flat].dead {
            return; // delivery raced the worker's permanent death
        }
        self.workers[flat].state = state;
        if self.faults_on {
            let snap = (
                self.workers[flat].tick,
                Box::new(self.workers[flat].state.clone()),
            );
            self.workers[flat].chain = Some(snap);
        }
        if self.workers[flat].down {
            return; // its pending Recover rejoins from the fresh snapshot
        }
        if self.workers[flat].tick < self.limit {
            self.schedule_step(flat, now);
        } else {
            self.workers[flat].done = true;
        }
    }

    /// A transiently-crashed worker comes back: it lost whatever it was
    /// doing and rejoins from the last server-delivered model at that
    /// snapshot's tick, replaying the interval with fresh batch draws.
    fn on_recover(&mut self, i: usize, now: f64) {
        let w = &mut self.workers[i];
        if w.dead || !w.down {
            return;
        }
        w.down = false;
        let (tick, state) = w
            .chain
            .clone()
            .expect("fault injection keeps a rejoin snapshot");
        w.tick = tick;
        w.state = *state;
        if w.tick >= self.limit {
            w.done = true;
            return;
        }
        self.schedule_step(i, now);
    }

    /// A worker dies permanently: it never uploads again, and every
    /// barrier that could wait for it is re-derived so the run cannot
    /// deadlock on a dead child.
    fn on_die(&mut self, i: usize, now: f64) {
        {
            let w = &mut self.workers[i];
            if w.dead || w.done {
                return;
            }
            w.dead = true;
            w.down = false;
            w.faults.crashes += 1;
        }
        let e = self.edge_of[i];
        match self.sim.policy {
            SyncPolicy::FullSync => {
                // Stages first (they evaluate at `now`), then barriers
                // (their evaluations land after aggregation compute).
                let ts: Vec<usize> = self.pending_evals.keys().copied().collect();
                for t in ts {
                    self.try_finish_eval(t, now);
                }
                let ks: Vec<usize> = self.gamma_stage.keys().copied().collect();
                for k in ks {
                    self.try_finish_gamma(k);
                }
                self.maybe_fire_edge_full(e, now);
                self.maybe_fire_cloud_full(now);
            }
            SyncPolicy::Deadline { .. } => {
                self.maybe_fire_edge_deadline(e, now);
                self.maybe_fire_cloud_deadline(now);
            }
            SyncPolicy::AsyncAge { .. } => {
                self.maybe_fire_edge_async(e, now);
                self.maybe_fire_cloud_async(now);
            }
        }
    }

    fn dispatch(&mut self, ev: Ev, now: f64) {
        match ev {
            Ev::Step { worker } => self.on_step_done(worker, now),
            Ev::Upload { worker } => self.on_upload(worker, now),
            Ev::EdgeTimeout { edge, round } => self.on_edge_timeout(edge, round, now),
            Ev::Deliver { worker, state } => self.on_deliver(worker, *state, now),
            Ev::CloudSubmit { edge, round } => self.on_cloud_submit(edge, round, now),
            Ev::CloudTimeout { round } => self.on_cloud_timeout(round, now),
            Ev::CloudReply { edge } => self.on_cloud_reply(edge, now),
            Ev::Recover { worker } => self.on_recover(worker, now),
            Ev::Die { worker } => self.on_die(worker, now),
            Ev::DupArrival { to } => {
                let counters = match to {
                    ActorId::Worker(i) => &mut self.workers[i].faults,
                    ActorId::Edge(e) => &mut self.edges[e].faults,
                    ActorId::Cloud => &mut self.cloud.faults,
                };
                counters.duplicates_received += 1;
            }
        }
    }

    /// End-of-run safety net: if the queue is dry but a barrier is still
    /// collecting (an async age gate can be left waiting for a child that
    /// exhausted mid-round), force the pending rounds to fire so every
    /// worker is released and the run terminates.
    fn drain_stalled(&mut self) -> bool {
        for e in 0..self.edges.len() {
            if !self.edges[e].waiting_cloud && self.edges[e].arrived.iter().any(|&a| a) {
                self.fire_edge(e, self.now);
                return true;
            }
        }
        if self.cloud.arrived.iter().any(|&a| a) {
            self.fire_cloud(self.now);
            return true;
        }
        false
    }

    fn run(&mut self) {
        let sim = self.sim;
        for p in &sim.faults.permanent {
            self.queue.push(
                p.at_ms,
                ActorId::Worker(p.worker),
                Ev::Die { worker: p.worker },
            );
        }
        for i in 0..self.workers.len() {
            self.schedule_step(i, 0.0);
        }
        loop {
            match self.queue.pop() {
                Some((time, _actor, payload)) => {
                    // A stale timeout (its round already fired) is a no-op
                    // and must not advance the clock — otherwise a generous
                    // deadline inflates the run's end time long after the
                    // last real event.
                    let live = match &payload {
                        Ev::EdgeTimeout { edge, round } => self.edges[*edge].round == *round,
                        Ev::CloudTimeout { round } => self.cloud.round == *round,
                        _ => true,
                    };
                    if !live {
                        continue;
                    }
                    self.now = time;
                    self.events += 1;
                    self.dispatch(payload, time);
                }
                None => {
                    if !self.drain_stalled() {
                        break;
                    }
                }
            }
        }
    }

    /// The mailbox federation state at the span's end tick — what an
    /// elastic run's churn transform (and the next span's resume) reads.
    fn final_snapshot(&self) -> TrainingSnapshot {
        TrainingSnapshot {
            algorithm: self.strategy.name().to_string(),
            tick: self.limit,
            workers: self.fl.workers.clone(),
            edges: self.fl.edges.clone(),
            cloud: self.fl.cloud.clone(),
            middle: Vec::new(),
            topology: None,
        }
    }

    /// Builds the result; also returns `(last_iter, firing_seq)` so an
    /// elastic run's next span can continue the relaxed-policy indices.
    fn finish(mut self) -> (SimResult, usize, usize) {
        let strategy = self.strategy;
        if !self.full_sync() && self.final_segment {
            // Final state after all deliveries (late arrivals may have
            // landed after the last cloud firing).
            self.record_relaxed_eval(self.now);
        }
        self.evals.sort_by_key(|r| r.iter);
        let mut curve = ConvergenceCurve::new();
        let mut timed = TimedCurve::new();
        for r in &self.evals {
            curve.push(EvalPoint {
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
            timed.push(TimedPoint {
                seconds: r.at_ms / 1000.0,
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
        }
        let end_ms = self.now;
        let util = |busy_ms: f64| {
            if end_ms > 0.0 {
                (busy_ms / end_ms).min(1.0)
            } else {
                0.0
            }
        };
        let actors = self.workers.len() + self.edges.len() + 1;
        let mut utilization = Vec::with_capacity(actors);
        let mut faults = Vec::with_capacity(actors);
        let mut adversaries = Vec::with_capacity(actors);
        for (i, w) in self.workers.iter().enumerate() {
            utilization.push(ActorUtilization {
                actor: format!("worker-{i}"),
                busy_seconds: w.busy_ms / 1000.0,
                utilization: util(w.busy_ms),
            });
            faults.push(ActorFaults {
                actor: format!("worker-{i}"),
                counters: w.faults,
            });
            adversaries.push(ActorAdversaries {
                actor: format!("worker-{i}"),
                counters: w.advers,
            });
        }
        for (l, e) in self.edges.iter().enumerate() {
            utilization.push(ActorUtilization {
                actor: format!("edge-{l}"),
                busy_seconds: e.busy_ms / 1000.0,
                utilization: util(e.busy_ms),
            });
            faults.push(ActorFaults {
                actor: format!("edge-{l}"),
                counters: e.faults,
            });
            adversaries.push(ActorAdversaries {
                actor: format!("edge-{l}"),
                counters: AdversaryCounters::default(),
            });
        }
        utilization.push(ActorUtilization {
            actor: "cloud".to_string(),
            busy_seconds: self.cloud.busy_ms / 1000.0,
            utilization: util(self.cloud.busy_ms),
        });
        faults.push(ActorFaults {
            actor: "cloud".to_string(),
            counters: self.cloud.faults,
        });
        adversaries.push(ActorAdversaries {
            actor: "cloud".to_string(),
            counters: AdversaryCounters::default(),
        });
        let result = SimResult {
            algorithm: strategy.name().to_string(),
            policy: self.sim.policy.label(),
            curve,
            timed_curve: timed,
            gamma_trace: self.gamma_trace,
            cos_trace: self.cos_trace,
            tier_gamma: self.tier_gamma,
            final_params: strategy.global_params(&self.fl),
            simulated_seconds: end_ms / 1000.0,
            utilization,
            faults,
            adversaries,
            events: self.events,
            topology: TopologyCounters::default(),
        };
        (result, self.last_iter, self.firing_seq)
    }
}

/// Runs `strategy` under the co-simulation: same training semantics as
/// [`hieradmo_core::run`] (bitwise-identical under
/// [`SyncPolicy::FullSync`]), but every compute and transfer charges
/// virtual time drawn from `sim.env`, and aggregation fires per
/// `sim.policy` rather than at a global barrier.
///
/// # Errors
///
/// Returns [`SimError`] if the config, schedule, topology, data, network
/// environment or policy are inconsistent — the same pre-flight checks as
/// the core driver plus the network/policy ones.
pub fn simulate<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    sim: &SimConfig,
) -> Result<SimResult, SimError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    if !cfg.churn.is_empty() {
        return Err(SimError::Run(RunError::BadConfig(
            "the frozen-tree co-simulation cannot apply a non-empty ChurnPlan; \
             run it through crate::simulate_elastic"
                .into(),
        )));
    }
    validate_sim(strategy, hierarchy, worker_data, cfg, sim)?;
    let mut engine = Engine::new(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        sim,
        Span::full(cfg),
    );
    engine.run();
    Ok(engine.finish().0)
}

/// The pre-flight checks shared by [`simulate`] and the per-segment engine
/// launches of [`crate::simulate_elastic`].
pub(crate) fn validate_sim<S>(
    strategy: &S,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    cfg: &RunConfig,
    sim: &SimConfig,
) -> Result<(), SimError>
where
    S: Strategy + ?Sized,
{
    cfg.validate()
        .map_err(|m| SimError::Run(RunError::BadConfig(m)))?;
    strategy
        .check_topology(hierarchy)
        .map_err(|m| SimError::Run(RunError::Topology(m)))?;
    if worker_data.len() != hierarchy.num_workers() {
        return Err(SimError::Run(RunError::Data(format!(
            "{} worker datasets for {} workers",
            worker_data.len(),
            hierarchy.num_workers()
        ))));
    }
    if let Some(i) = worker_data.iter().position(Dataset::is_empty) {
        return Err(SimError::Run(RunError::Data(format!(
            "worker {i} has no data"
        ))));
    }
    Schedule::three_tier(cfg.tau, cfg.pi, cfg.total_iters)
        .map_err(|e| SimError::Run(RunError::Schedule(e)))?;
    sim.faults.validate().map_err(SimError::Fault)?;
    for p in &sim.faults.permanent {
        if p.worker >= hierarchy.num_workers() {
            return Err(SimError::Fault(format!(
                "permanent crash targets worker {} but the topology has {} workers",
                p.worker,
                hierarchy.num_workers()
            )));
        }
    }
    for b in &cfg.adversary.byzantine {
        if b.worker >= hierarchy.num_workers() {
            return Err(SimError::Adversary(format!(
                "attack targets worker {} but the topology has {} workers",
                b.worker,
                hierarchy.num_workers()
            )));
        }
    }
    sim.validate(None).map_err(SimError::Policy)?;
    if let Some(tree) = &sim.tiers {
        if tree.tau() != cfg.tau || tree.pi_total() != cfg.pi {
            return Err(SimError::Run(RunError::BadConfig(format!(
                "config (tau = {}, pi = {}) disagrees with the tier tree \
                 (tau = {}, pi_total = {})",
                cfg.tau,
                cfg.pi,
                tree.tau(),
                tree.pi_total()
            ))));
        }
        if tree.num_edges() != hierarchy.num_edges()
            || tree.num_workers() != hierarchy.num_workers()
        {
            return Err(SimError::Run(RunError::Topology(format!(
                "tier tree spans {} edges / {} workers but the hierarchy \
                 has {} / {}",
                tree.num_edges(),
                tree.num_workers(),
                hierarchy.num_edges(),
                hierarchy.num_workers()
            ))));
        }
    }
    for e in 0..hierarchy.num_edges() {
        sim.policy
            .validate_for_children(hierarchy.workers_in_edge(e))
            .map_err(SimError::Policy)?;
    }
    sim.policy
        .validate_for_children(hierarchy.num_edges())
        .map_err(SimError::Policy)?;
    if sim.env.worker_devices.len() != hierarchy.num_workers() {
        return Err(SimError::Net(format!(
            "{} device profiles for {} workers",
            sim.env.worker_devices.len(),
            hierarchy.num_workers()
        )));
    }
    Ok(())
}

/// Runs one topology-epoch segment of an elastic co-simulation: ticks
/// `(span.start, span.limit]` against `hierarchy` (the segment's frozen
/// tree), resuming the mailbox from `span.resume`. Returns the segment's
/// result, the end-of-segment snapshot (what the churn transform mutates),
/// and the relaxed-policy index carry-overs `(iter_base, firing_base)`.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub(crate) fn simulate_span<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    sim: &SimConfig,
    span: Span<'_>,
) -> Result<(SimResult, TrainingSnapshot, usize, usize), SimError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    validate_sim(strategy, hierarchy, worker_data, cfg, sim)?;
    let mut engine = Engine::new(
        strategy,
        model,
        hierarchy,
        worker_data,
        test_data,
        cfg,
        sim,
        span,
    );
    engine.run();
    let snapshot = engine.final_snapshot();
    let (result, iter_base, firing_base) = engine.finish();
    Ok((result, snapshot, iter_base, firing_base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_count_ceils_and_clamps() {
        assert_eq!(quorum_count(0.5, 4), 2);
        assert_eq!(quorum_count(0.5, 3), 2);
        assert_eq!(quorum_count(0.01, 4), 1);
        assert_eq!(quorum_count(1.0, 4), 4);
        assert_eq!(quorum_count(0.0, 4), 1, "clamped to at least one");
    }
}
