//! Synchronization policies and the co-simulation configuration.

use hieradmo_netsim::{Architecture, FaultPlan, NetworkEnv};
use hieradmo_topology::TierTree;

/// When an aggregation round is allowed to fire, given that uploads now
/// arrive at different virtual times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncPolicy {
    /// Every round waits for *all* of its children — the paper's barrier
    /// semantics. The model trajectory is bitwise identical to
    /// [`hieradmo_core::run`]; only the (now honest) time axis differs.
    FullSync,
    /// Semi-synchronous: a round fires as soon as either everyone has
    /// arrived, or at least `ceil(quorum · n)` children have arrived *and*
    /// `timeout_ms` of virtual time has passed since the round's first
    /// arrival. Stragglers' uploads carry over into the next round; the
    /// aggregation hook sees their staleness and may down-weight them
    /// (see `Strategy::edge_aggregate_stale`).
    Deadline {
        /// Fraction of children required before the timeout can fire the
        /// round, in `(0, 1]`.
        quorum: f64,
        /// Virtual milliseconds after the round's first arrival at which a
        /// quorum is allowed to proceed without the stragglers.
        timeout_ms: f64,
    },
    /// Asynchronous with an age bound: a round fires on every arrival,
    /// merging whatever has arrived since the previous firing — unless some
    /// absent child's server-side state is already `max_staleness` rounds
    /// old, in which case the round waits for that child (bounded-staleness
    /// async in the FedBuff/FedAsync tradition).
    AsyncAge {
        /// Maximum tolerated age, in rounds, of any merged child state.
        max_staleness: usize,
    },
}

impl SyncPolicy {
    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SyncPolicy::FullSync => Ok(()),
            SyncPolicy::Deadline { quorum, timeout_ms } => {
                if !(quorum > 0.0 && quorum <= 1.0) {
                    return Err(format!("deadline quorum must be in (0, 1], got {quorum}"));
                }
                if !(timeout_ms.is_finite() && timeout_ms > 0.0) {
                    return Err(format!(
                        "deadline timeout must be positive and finite, got {timeout_ms}"
                    ));
                }
                Ok(())
            }
            SyncPolicy::AsyncAge { max_staleness } => {
                if max_staleness == 0 {
                    return Err("async max_staleness must be at least 1".to_string());
                }
                Ok(())
            }
        }
    }

    /// Validates the policy against a concrete child count `n`: everything
    /// in [`SyncPolicy::validate`], plus the requirement that a
    /// `Deadline` quorum not round `ceil(quorum · n)` down to zero — a
    /// zero-child quorum would let rounds fire with no contributions at
    /// all (and panics the runtime's clamp for `n == 0`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate_for_children(&self, n: usize) -> Result<(), String> {
        self.validate()?;
        if let SyncPolicy::Deadline { quorum, .. } = *self {
            let count = (quorum * n as f64).ceil();
            if count < 1.0 {
                return Err(format!(
                    "deadline quorum {quorum} rounds ceil(quorum * n) to {count} \
                     for n = {n} children; the effective quorum must be at least \
                     1 child"
                ));
            }
        }
        Ok(())
    }

    /// A short human-readable label, used in exports and report tables.
    pub fn label(&self) -> String {
        match *self {
            SyncPolicy::FullSync => "full-sync".to_string(),
            SyncPolicy::Deadline { quorum, timeout_ms } => {
                format!("deadline(q={quorum},{timeout_ms}ms)")
            }
            SyncPolicy::AsyncAge { max_staleness } => format!("async(age<={max_staleness})"),
        }
    }
}

/// Everything [`crate::simulate`] needs beyond the training inputs: the
/// emulated testbed, the communication pattern, payload sizes, the network
/// RNG seed, and the synchronization policy.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Device compute profiles and link profiles.
    pub env: NetworkEnv,
    /// Which hops the traffic takes. [`Architecture::TwoTier`] charges
    /// worker ↔ cloud transfers (all workers sharing the link) and no edge
    /// compute; [`Architecture::ThreeTier`] charges worker ↔ edge and
    /// edge ↔ cloud hops plus edge aggregation compute.
    pub architecture: Architecture,
    /// Serialized model bytes per upload.
    pub upload_bytes: u64,
    /// Serialized model bytes per download.
    pub download_bytes: u64,
    /// Master seed for the per-actor delay streams. Independent of the
    /// training seed in `RunConfig`, so the same trajectory can be timed
    /// under many network draws.
    pub net_seed: u64,
    /// The synchronization policy.
    pub policy: SyncPolicy,
    /// What goes wrong during the run. The empty plan (the default)
    /// injects nothing and leaves the simulation bitwise identical to a
    /// fault-free run; see [`hieradmo_netsim::FaultPlan`].
    pub faults: FaultPlan,
    /// Optional N-tier topology. `None` (the default) is the classic
    /// three-tier worker/edge/cloud arrangement. When set, middle tiers
    /// are co-hosted at the cloud actor (no extra network hops, so delay
    /// streams match the three-tier run draw for draw) and fire bottom-up
    /// at their interval boundaries, through
    /// `Strategy::tier_aggregate_stale` with per-subtree staleness — so
    /// depth ≥ 4 runs under every [`SyncPolicy`], with stale subtree
    /// edges carried over at bounded age (DESIGN §14).
    pub tiers: Option<TierTree>,
}

impl SimConfig {
    /// A config with symmetric `payload_bytes` uploads and downloads and
    /// no fault injection.
    pub fn new(
        env: NetworkEnv,
        architecture: Architecture,
        payload_bytes: u64,
        net_seed: u64,
        policy: SyncPolicy,
    ) -> Self {
        SimConfig {
            env,
            architecture,
            upload_bytes: payload_bytes,
            download_bytes: payload_bytes,
            net_seed,
            policy,
            faults: FaultPlan::none(),
            tiers: None,
        }
    }

    /// Attaches a fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches an N-tier topology (builder style); see
    /// [`SimConfig::tiers`].
    pub fn with_tiers(mut self, tiers: TierTree) -> Self {
        self.tiers = Some(tiers);
        self
    }

    /// Validates the whole co-simulation configuration: payload sizes,
    /// the policy (against the per-edge child count `workers_per_edge`
    /// when known), and the fault plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self, workers_per_edge: Option<usize>) -> Result<(), String> {
        if self.upload_bytes == 0 {
            return Err("upload_bytes must be positive".to_string());
        }
        if self.download_bytes == 0 {
            return Err("download_bytes must be positive".to_string());
        }
        match workers_per_edge {
            Some(n) => self.policy.validate_for_children(n)?,
            None => self.policy.validate()?,
        }
        self.faults.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sync_always_validates() {
        assert!(SyncPolicy::FullSync.validate().is_ok());
        assert_eq!(SyncPolicy::FullSync.label(), "full-sync");
    }

    #[test]
    fn deadline_rejects_bad_quorum_and_timeout() {
        let ok = SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 100.0,
        };
        assert!(ok.validate().is_ok());
        assert!(ok.label().contains("deadline"));
        for (q, t) in [(0.0, 100.0), (1.5, 100.0), (0.5, 0.0), (0.5, f64::NAN)] {
            let bad = SyncPolicy::Deadline {
                quorum: q,
                timeout_ms: t,
            };
            assert!(bad.validate().is_err(), "q={q} t={t} should be rejected");
        }
    }

    #[test]
    fn async_rejects_zero_staleness() {
        assert!(SyncPolicy::AsyncAge { max_staleness: 0 }
            .validate()
            .is_err());
        let ok = SyncPolicy::AsyncAge { max_staleness: 3 };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.label(), "async(age<=3)");
    }

    #[test]
    fn deadline_quorum_rounding_to_zero_children_is_rejected() {
        let p = SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 100.0,
        };
        assert!(p.validate_for_children(4).is_ok());
        assert!(p.validate_for_children(1).is_ok(), "ceil(0.5) = 1");
        // Any positive quorum with zero children rounds to zero — the
        // degenerate case the plain validate() cannot see.
        let err = p.validate_for_children(0).unwrap_err();
        assert!(
            err.contains("at least") && err.contains("1 child"),
            "error must document the >= 1 child requirement: {err}"
        );
        assert!(SyncPolicy::FullSync.validate_for_children(0).is_ok());
    }

    #[test]
    fn sim_config_validate_checks_payloads_policy_and_faults() {
        let base = || {
            SimConfig::new(
                NetworkEnv::paper_testbed(2),
                Architecture::ThreeTier,
                50_000,
                7,
                SyncPolicy::FullSync,
            )
        };
        assert!(base().validate(Some(2)).is_ok());

        let mut cfg = base();
        cfg.upload_bytes = 0;
        assert!(cfg.validate(Some(2)).is_err());

        let mut cfg = base();
        cfg.download_bytes = 0;
        assert!(cfg.validate(None).is_err());

        let mut cfg = base();
        cfg.policy = SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 100.0,
        };
        assert!(cfg.validate(Some(2)).is_ok());
        assert!(cfg.validate(Some(0)).is_err(), "quorum rounds to zero");

        let mut cfg = base();
        cfg.faults = FaultPlan {
            crash: Some(hieradmo_netsim::CrashProfile {
                per_step: 1.0,
                min_downtime_ms: 1.0,
                max_downtime_ms: 2.0,
            }),
            ..FaultPlan::none()
        };
        assert!(cfg.validate(Some(2)).is_err(), "bad fault plan");
    }

    #[test]
    fn deep_tier_trees_validate_under_every_policy() {
        use hieradmo_topology::{TierSpec, TierTree};
        let deep = TierTree::new(vec![
            TierSpec::new(2, 2),
            TierSpec::new(2, 2),
            TierSpec::new(2, 5),
        ])
        .unwrap();
        let base = |policy| {
            SimConfig::new(
                NetworkEnv::paper_testbed(2),
                Architecture::ThreeTier,
                50_000,
                7,
                policy,
            )
        };
        // Middle tiers have staleness semantics (tier_aggregate_stale with
        // bounded-age carry-over), so depth ≥ 4 validates under every
        // policy — the former FullSync-only gate is gone.
        for policy in [
            SyncPolicy::FullSync,
            SyncPolicy::Deadline {
                quorum: 0.5,
                timeout_ms: 100.0,
            },
            SyncPolicy::AsyncAge { max_staleness: 3 },
        ] {
            let cfg = base(policy).with_tiers(deep.clone());
            assert!(
                cfg.validate(Some(2)).is_ok(),
                "depth-4 must validate under {}",
                cfg.policy.label()
            );
        }
        let cfg = base(SyncPolicy::AsyncAge { max_staleness: 3 })
            .with_tiers(TierTree::three_tier(2, 2, 5, 2));
        assert!(cfg.validate(Some(2)).is_ok());
    }

    #[test]
    fn sim_config_uses_symmetric_payloads() {
        let cfg = SimConfig::new(
            NetworkEnv::paper_testbed(2),
            Architecture::ThreeTier,
            50_000,
            7,
            SyncPolicy::FullSync,
        );
        assert_eq!(cfg.upload_bytes, 50_000);
        assert_eq!(cfg.download_bytes, 50_000);
        assert_eq!(cfg.net_seed, 7);
    }
}
