//! Event-driven co-simulation runtime for HierAdMo.
//!
//! `hieradmo-core`'s driver executes the training loop in *logical* time:
//! every tier advances in lockstep and network cost is invisible.
//! `hieradmo-netsim` knows what computation and transfers *cost*, but only
//! replays a finished schedule. This crate closes the loop: it runs the
//! **actual** training step functions — the same gradient path, batch
//! streams, aggregation hooks and evaluation reduction as
//! [`hieradmo_core::run`] — inside a discrete-event simulation where every
//! worker, edge and cloud actor advances on its own virtual clock, with
//! compute and transfer delays drawn on demand from the netsim profiles.
//!
//! Because delays now *gate* aggregation instead of merely annotating it,
//! synchronization becomes a real policy choice ([`SyncPolicy`]):
//!
//! - [`SyncPolicy::FullSync`] — every edge waits for all of its workers;
//!   the model trajectory is **bitwise identical** to [`hieradmo_core::run`]
//!   (asserted by `tests/simrt_equivalence.rs` at the workspace root), only
//!   the time axis changes.
//! - [`SyncPolicy::Deadline`] — semi-synchronous: a round fires once a
//!   quorum has arrived and a timeout has passed; late updates carry over
//!   into the next round with their staleness recorded.
//! - [`SyncPolicy::AsyncAge`] — asynchronous with an age bound: rounds fire
//!   per arrival unless some participant's state is older than
//!   `max_staleness` rounds, in which case the round waits for it.
//!
//! Events flow through a deterministic queue keyed by `(virtual time,
//! actor, sequence number)` ([`event::EventQueue`]), every actor draws its
//! delays from a private decorrelated RNG stream
//! ([`hieradmo_netsim::stream_seed`]), and evaluation reuses the core
//! engine's fixed-chunk ordered reduction — so a simulation is reproducible
//! bit-for-bit for any thread count.

#![deny(missing_docs)]

pub mod driver;
pub mod elastic;
pub mod event;
pub mod policy;
pub mod vpop;

pub use driver::{simulate, SimError, SimResult};
pub use elastic::simulate_elastic;
pub use event::{ActorId, EventQueue};
pub use policy::{SimConfig, SyncPolicy};
pub use vpop::simulate_virtual;
