//! Elastic topology over the event-driven runtime: the virtual-clock
//! counterpart of [`hieradmo_core::elastic::run_elastic`].
//!
//! [`simulate_elastic`] splits the run at every [`ChurnPlan`] boundary
//! into topology-epoch segments, runs each through the unchanged
//! co-simulation engine against that epoch's frozen tree (resuming the
//! mailbox from the previous segment's end state), and applies the
//! boundary's events between segments via the *same*
//! [`hieradmo_core::elastic::apply_churn_boundary`] transform the
//! tick-driven engine uses — so for a given `(plan, seed)` both engines
//! evolve the identical topology and, under [`crate::SyncPolicy::FullSync`]
//! without faults, the identical model trajectory bit for bit (gated by
//! `tests/elastic_topology.rs`).
//!
//! Epoch-boundary semantics under the virtual clock:
//!
//! * **Epoch barrier.** A churn boundary is a synchronization barrier:
//!   every worker drains to the boundary tick, the mailbox state is
//!   transformed, and the next segment starts with fresh in-flight state.
//!   Relaxed-policy bookkeeping (AsyncAge ages, Deadline round carry-over,
//!   pending releases) resets at the barrier — a re-formed tree has no
//!   meaningful staleness against edges that may no longer exist.
//! * **Actor streams re-key per epoch.** Delay, fault and adversary
//!   streams are addressed by flat position within the epoch's tree
//!   (workers `0..n`, edges `n..n+L`), exactly like the training RNG
//!   streams in the core elastic runtime — a deterministic function of
//!   `(plan, seed)`, identical across thread counts.
//! * **Device profiles act as a pool** (the same rule sampled
//!   virtual-population runs use): registered worker `g` computes on
//!   profile `g mod pool size`, so the initial tree's environment
//!   describes any epoch's membership.
//! * **Permanent crashes are keyed by uid** and re-applied per segment
//!   with their death time shifted into the segment's local clock; a
//!   worker whose death time has already passed dies again at the start
//!   of every later segment it appears in, so permanent death survives
//!   the epoch barrier.
//!
//! Per-actor tallies merge across segments by stable identity —
//! `worker-{uid}`, `edge-{stable id}`, `cloud` — and utilization is
//! recomputed against the whole run's virtual duration.

use std::collections::BTreeMap;

use hieradmo_core::elastic::{
    apply_churn_boundary, epoch_cuts, epoch_tree, initial_version, remap_adversaries,
};
use hieradmo_core::{RunConfig, RunError, TrainingSnapshot};
use hieradmo_data::Dataset;
use hieradmo_metrics::{
    ActorAdversaries, ActorFaults, ActorUtilization, AdversaryCounters, FaultCounters,
    TopologyCounters,
};
use hieradmo_models::Model;
use hieradmo_netsim::PermanentCrash;
use hieradmo_topology::{ChurnPlan, Hierarchy, TopologyVersion};

use hieradmo_core::Strategy;

use crate::driver::{simulate, simulate_span, SimError, SimResult, Span};
use crate::policy::SimConfig;

/// Stable actor identity for cross-segment merging: workers sort before
/// edges, edges before the cloud, each by stable id.
type ActorKey = (u8, usize);

fn add_faults(into: &mut FaultCounters, c: &FaultCounters) {
    into.crashes += c.crashes;
    into.recovery_ms += c.recovery_ms;
    into.messages_lost += c.messages_lost;
    into.messages_duplicated += c.messages_duplicated;
    into.duplicates_received += c.duplicates_received;
    into.transfer_failures += c.transfer_failures;
    into.retries += c.retries;
    into.lost_uploads += c.lost_uploads;
    into.delay_spikes += c.delay_spikes;
}

fn add_adversaries(into: &mut AdversaryCounters, c: &AdversaryCounters) {
    into.poisoned_uploads += c.poisoned_uploads;
    into.poisoned_models += c.poisoned_models;
    into.poisoned_momenta += c.poisoned_momenta;
    into.noise_injections += c.noise_injections;
}

fn actor_label(key: &ActorKey) -> String {
    match key.0 {
        0 => format!("worker-{}", key.1),
        1 => format!("edge-{}", key.1),
        _ => "cloud".to_string(),
    }
}

/// Per-actor tallies accumulated across epoch segments.
#[derive(Default)]
struct ActorTotals {
    busy_seconds: f64,
    faults: FaultCounters,
    adversaries: AdversaryCounters,
}

/// Folds one segment's positionally-ordered actor vectors (workers in
/// flat order, then edges, then cloud — the [`SimResult`] convention)
/// into the stable-identity totals.
fn merge_actors(
    totals: &mut BTreeMap<ActorKey, ActorTotals>,
    res: &SimResult,
    uids: &[usize],
    live_edges: &[usize],
) {
    let n = uids.len();
    let l = live_edges.len();
    debug_assert_eq!(res.utilization.len(), n + l + 1);
    for (pos, util) in res.utilization.iter().enumerate() {
        let key: ActorKey = if pos < n {
            (0, uids[pos])
        } else if pos < n + l {
            (1, live_edges[pos - n])
        } else {
            (2, 0)
        };
        let t = totals.entry(key).or_default();
        t.busy_seconds += util.busy_seconds;
        add_faults(&mut t.faults, &res.faults[pos].counters);
        add_adversaries(&mut t.adversaries, &res.adversaries[pos].counters);
    }
}

/// The per-segment [`SimConfig`]: device profiles re-drawn from the pool
/// for this epoch's membership, permanent crashes re-keyed from uid to
/// flat position and shifted into the segment's local clock.
fn segment_sim(sim: &SimConfig, uids: &[usize], clock_base_ms: f64) -> SimConfig {
    let mut seg = sim.clone();
    let pool = &sim.env.worker_devices;
    seg.env.worker_devices = uids.iter().map(|&u| pool[u % pool.len()].clone()).collect();
    seg.faults.permanent = sim
        .faults
        .permanent
        .iter()
        .filter_map(|p| {
            uids.iter()
                .position(|&u| u == p.worker)
                .map(|flat| PermanentCrash {
                    worker: flat,
                    at_ms: (p.at_ms - clock_base_ms).max(0.0),
                })
        })
        .collect();
    seg
}

/// Runs `strategy` under the elastic topology runtime on the virtual
/// clock: the event-driven counterpart of
/// [`hieradmo_core::elastic::run_elastic`], composing churn with delay
/// environments, sync policies, fault plans and adversary plans.
///
/// `worker_data` registers the whole uid space (initial tree first, join
/// candidates after), `cfg.adversary` and `sim.faults.permanent` are
/// keyed by uid, and `sim.env.worker_devices` is a device pool (worker
/// `g` computes on profile `g mod pool size`). An empty
/// [`RunConfig::churn`] plan with a fully-present uid space delegates to
/// [`simulate`] unchanged. N-tier trees ([`SimConfig::tiers`]) do not
/// compose with churn yet and are rejected.
///
/// # Errors
///
/// Everything [`simulate`] rejects, plus churn events invalid against the
/// live topology when they apply.
pub fn simulate_elastic<M, S>(
    strategy: &S,
    model: &M,
    hierarchy: &Hierarchy,
    worker_data: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    sim: &SimConfig,
) -> Result<SimResult, SimError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    let bad = |m: String| SimError::Run(RunError::BadConfig(m));
    cfg.validate().map_err(|m| bad(m.clone()))?;
    let plan = cfg.churn.clone();
    if plan.is_empty() && worker_data.len() == hierarchy.num_workers() {
        let mut frozen = cfg.clone();
        frozen.churn = ChurnPlan::none();
        return simulate(
            strategy,
            model,
            hierarchy,
            worker_data,
            test_data,
            &frozen,
            sim,
        );
    }
    if sim.tiers.is_some() {
        return Err(bad(
            "N-tier trees do not compose with a ChurnPlan yet; elastic \
             co-simulations are three-tier"
                .into(),
        ));
    }
    if sim.env.worker_devices.is_empty() {
        return Err(SimError::Net(
            "elastic runs need at least one worker device profile in the pool".into(),
        ));
    }
    if worker_data.len() < hierarchy.num_workers() {
        return Err(SimError::Run(RunError::Data(format!(
            "{} worker datasets cannot register an initial tree of {}",
            worker_data.len(),
            hierarchy.num_workers()
        ))));
    }
    if let Some(i) = worker_data.iter().position(Dataset::is_empty) {
        return Err(SimError::Run(RunError::Data(format!(
            "worker {i} has no data"
        ))));
    }
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker >= worker_data.len())
    {
        return Err(SimError::Adversary(format!(
            "attack targets uid {} but only {} workers are registered",
            b.worker,
            worker_data.len()
        )));
    }
    if let Some(p) = sim
        .faults
        .permanent
        .iter()
        .find(|p| p.worker >= worker_data.len())
    {
        return Err(SimError::Fault(format!(
            "permanent crash targets uid {} but only {} workers are registered",
            p.worker,
            worker_data.len()
        )));
    }

    let mut version: TopologyVersion = initial_version(hierarchy, worker_data.len())
        .map_err(|m| SimError::Run(RunError::Topology(m)))?;
    let total = cfg.total_iters;
    let cuts = epoch_cuts(&plan, cfg, 0, total);

    let mut frozen = cfg.clone();
    frozen.churn = ChurnPlan::none();
    let mut counters = TopologyCounters::default();
    let mut cur: Option<TrainingSnapshot> = None;
    let mut start = 0usize;
    let mut iter_base = 0usize;
    let mut firing_base = 0usize;
    let mut clock_base_ms = 0.0f64;
    let mut totals: BTreeMap<ActorKey, ActorTotals> = BTreeMap::new();
    let mut out: Option<SimResult> = None;

    let mut boundaries = cuts.clone();
    if boundaries.last() != Some(&total) {
        boundaries.push(total);
    }
    for &t in &boundaries {
        let (tree, uids) = epoch_tree(&version);
        let live = version.live_edges();
        let data: Vec<Dataset> = uids.iter().map(|&u| worker_data[u].clone()).collect();
        let mut seg_cfg = frozen.clone();
        seg_cfg.adversary = remap_adversaries(&cfg.adversary, &uids);
        let seg_sim = segment_sim(sim, &uids, clock_base_ms);
        let span = Span {
            start,
            limit: t,
            resume: cur.as_ref(),
            iter_base,
            firing_base,
            final_segment: t == total,
        };
        let (res, snap, next_iter, next_firing) = simulate_span(
            strategy, model, &tree, &data, test_data, &seg_cfg, &seg_sim, span,
        )?;
        iter_base = next_iter;
        firing_base = next_firing;
        merge_actors(&mut totals, &res, &uids, &live);
        let seg_ms = res.simulated_seconds * 1000.0;
        match &mut out {
            None => out = Some(offset_timed(res, clock_base_ms)),
            Some(acc) => fold_segment(acc, offset_timed(res, clock_base_ms)),
        }
        clock_base_ms += seg_ms;
        if cuts.contains(&t) {
            let round = t / (cfg.tau * cfg.pi);
            let next =
                apply_churn_boundary(&snap, &mut version, &plan, round, cfg.seed, &mut counters)
                    .map_err(bad)?;
            cur = Some(next);
        } else {
            cur = Some(snap);
        }
        start = t;
    }

    let mut result = out.expect("at least one segment runs");
    result.simulated_seconds = clock_base_ms / 1000.0;
    result.topology = counters;
    // Rebuild the actor tallies on stable identities over the whole run.
    let end_s = result.simulated_seconds;
    result.utilization = totals
        .iter()
        .map(|(key, t)| ActorUtilization {
            actor: actor_label(key),
            busy_seconds: t.busy_seconds,
            utilization: if end_s > 0.0 {
                (t.busy_seconds / end_s).min(1.0)
            } else {
                0.0
            },
        })
        .collect();
    result.faults = totals
        .iter()
        .map(|(key, t)| ActorFaults {
            actor: actor_label(key),
            counters: t.faults,
        })
        .collect();
    result.adversaries = totals
        .iter()
        .map(|(key, t)| ActorAdversaries {
            actor: actor_label(key),
            counters: t.adversaries,
        })
        .collect();
    Ok(result)
}

/// Shifts a segment's wall-clock axis by the accumulated virtual time of
/// the segments before it.
fn offset_timed(mut res: SimResult, clock_base_ms: f64) -> SimResult {
    if clock_base_ms > 0.0 {
        let shifted = res
            .timed_curve
            .points()
            .iter()
            .map(|p| {
                let mut q = *p;
                q.seconds += clock_base_ms / 1000.0;
                q
            })
            .collect::<Vec<_>>();
        let mut timed = hieradmo_metrics::TimedCurve::new();
        for p in shifted {
            timed.push(p);
        }
        res.timed_curve = timed;
    }
    res
}

/// Concatenates a later segment's trajectory onto the accumulator.
fn fold_segment(acc: &mut SimResult, res: SimResult) {
    for p in res.curve.points() {
        acc.curve.push(*p);
    }
    for p in res.timed_curve.points() {
        acc.timed_curve.push(*p);
    }
    acc.gamma_trace.extend(res.gamma_trace);
    acc.cos_trace.extend(res.cos_trace);
    acc.final_params = res.final_params;
    acc.events += res.events;
}

/// A `worker-{uid}` label helper for tests and exports.
#[doc(hidden)]
pub fn worker_label(uid: usize) -> String {
    actor_label(&(0, uid))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_keys_sort_workers_edges_cloud() {
        let mut m: BTreeMap<ActorKey, ()> = BTreeMap::new();
        m.insert((2, 0), ());
        m.insert((1, 3), ());
        m.insert((0, 7), ());
        m.insert((0, 2), ());
        let labels: Vec<String> = m.keys().map(actor_label).collect();
        assert_eq!(labels, vec!["worker-2", "worker-7", "edge-3", "cloud"]);
    }

    #[test]
    fn policy_label_is_stable() {
        assert_eq!(crate::policy::SyncPolicy::FullSync.label(), "full-sync");
    }
}
