//! Event-driven co-simulation over a *virtual* worker population: only the
//! per-round sampled cohort exists as actors, so queue cost, memory, and
//! events processed are all `O(active)`, never `O(registered)`.
//!
//! [`simulate_virtual`] is the event-driven counterpart of
//! [`hieradmo_core::population::run_virtual`]. Under full participation it
//! materializes the population and delegates to [`crate::simulate`]
//! (bitwise identical to the classic path); under sampling it runs a
//! full-sync event loop whose per-slot RNG streams — mini-batch order,
//! adversary draws, network delays — all re-derive from
//! `(seed, worker_id, round)`, so the model trajectory is bitwise
//! identical to `run_virtual`'s and independent of thread count (gated by
//! `tests/sampling_equivalence.rs`).
//!
//! Edges progress their rounds independently between cloud barriers;
//! evaluation and γ traces are staged per round at *edge* granularity and
//! emitted once every edge has contributed, reproducing the tick-driven
//! round means exactly.

use std::collections::BTreeMap;

use hieradmo_core::byzantine::corrupt_upload;
use hieradmo_core::driver::{build_train_probe, evaluate_on_replicas, RunError};
use hieradmo_core::population::{
    adversary_stream, batcher_seed, delay_stream, materialize_edge_cohort, virtual_global_params,
    weighted_edge_average, CohortSampler, WorkerPopulation,
};
use hieradmo_core::{FlState, RunConfig, Strategy};
use hieradmo_data::{Batcher, Dataset};
use hieradmo_metrics::{
    ActorAdversaries, ActorFaults, ActorUtilization, AdversaryCounters, ConvergenceCurve,
    EvalPoint, FaultCounters, TimedCurve, TimedPoint,
};
use hieradmo_models::{Evaluation, Model};
use hieradmo_netsim::{AdversarySampler, Architecture, AttackModel, DelaySampler};
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, Weights};

use crate::driver::{SimError, SimResult};
use crate::event::{ActorId, EventQueue};
use crate::policy::{SimConfig, SyncPolicy};

/// One scheduled occurrence in the virtual-population simulation. `slot`
/// indexes the cohort (the active actors), never the registered
/// population.
enum VEv {
    /// An edge begins its next round: sample the cohort, charge downloads.
    StartRound { edge: usize },
    /// A cohort slot's model download landed; local steps begin.
    Arrive { slot: usize },
    /// A cohort slot finished one local step.
    StepDone { slot: usize },
    /// A cohort slot's end-of-round upload reached its edge.
    Upload { slot: usize },
    /// An edge's boundary-round submission reached the cloud.
    CloudSubmit { edge: usize },
    /// The cloud's reply reached an edge.
    CloudReply { edge: usize },
}

/// Round-scoped context of one cohort slot, rebuilt from
/// `(seed, worker_id, round)` at every materialization.
struct SlotCtx {
    /// Global (population) id of the worker occupying the slot this round.
    gid: u64,
    /// The slot's edge (fixed: the cohort hierarchy is constant).
    edge: usize,
    /// The worker's shard index this round.
    shard: usize,
    /// Local steps completed this round.
    steps: usize,
    /// This round's mini-batch stream.
    batcher: Batcher,
    /// This round's private delay stream.
    delays: DelaySampler,
    /// The occupying worker's attack, if it is Byzantine.
    attack: Option<AttackModel>,
}

struct EdgeSim {
    /// Current round (1-based; 0 before the first `StartRound`).
    round: usize,
    /// Cohort uploads landed this round.
    arrived: usize,
    /// Busy virtual milliseconds (aggregation compute + cloud transfers).
    busy_ms: f64,
    /// Private delay stream for aggregation compute and cloud hops.
    sampler: DelaySampler,
}

struct EvalRec {
    iter: usize,
    at_ms: f64,
    test: Evaluation,
    train: Evaluation,
}

struct VEngine<'a, M, S: ?Sized> {
    strategy: &'a S,
    cfg: &'a RunConfig,
    sim: &'a SimConfig,
    population: &'a WorkerPopulation,
    shards: &'a [Dataset],
    shard_sizes: Vec<u64>,
    sampler: CohortSampler,
    fl: FlState,
    slots: Vec<SlotCtx>,
    edges: Vec<EdgeSim>,
    cloud_arrived: Vec<bool>,
    cloud_busy_ms: f64,
    cloud_sampler: DelaySampler,
    /// Aggregate busy time of all sampled workers (the worker tier is
    /// virtual, so per-actor accounting would be `O(registered)`).
    workers_busy_ms: f64,
    queue: EventQueue<VEv>,
    /// Per-round staged edge `x_plus` snapshots for evaluation.
    eval_stage: BTreeMap<usize, (Vec<Option<Vector>>, f64)>,
    /// Per-round staged `(γℓ, cos θ)` per edge.
    gamma_stage: BTreeMap<usize, Vec<Option<(f32, f32)>>>,
    gamma_trace: Vec<(usize, f32)>,
    cos_trace: Vec<(usize, f32)>,
    evals: Vec<EvalRec>,
    /// One scratch model for gradient math (params are set before every
    /// use, so slots can share it) and the evaluation replicas.
    step_model: M,
    eval_models: Vec<M>,
    test_data: &'a Dataset,
    train_probe: Dataset,
    batch: Vec<usize>,
    /// One counter per adversary-plan entry, in plan order.
    adversaries: Vec<AdversaryCounters>,
    rounds: usize,
    edges_done: usize,
    events: u64,
    now: f64,
}

impl<'a, M: Model + Clone + Send, S: Strategy + ?Sized> VEngine<'a, M, S> {
    fn is_eval_round(&self, k: usize) -> bool {
        (k * self.cfg.tau).is_multiple_of(self.cfg.eval_every) || k == self.rounds
    }

    fn device_of(&self, gid: u64) -> usize {
        // Profile-pool semantics: registered worker `g` draws its compute
        // profile from the pool slot `g mod pool size`, so a small profile
        // set covers any population size.
        (gid % self.sim.env.worker_devices.len() as u64) as usize
    }

    fn on_start_round(&mut self, e: usize, now: f64) {
        self.edges[e].round += 1;
        let k = self.edges[e].round;
        self.edges[e].arrived = 0;
        let ids = materialize_edge_cohort(
            &mut self.fl,
            self.population,
            &self.shard_sizes,
            &self.sampler,
            e,
            k,
        );
        let range = self.fl.hierarchy.edge_workers(e);
        for (j, &g) in ids.iter().enumerate() {
            let slot = range.start + j;
            let ctx = &mut self.slots[slot];
            ctx.gid = g;
            ctx.shard = self.population.shard_of(g);
            ctx.steps = 0;
            ctx.batcher = Batcher::new(
                self.shard_sizes[ctx.shard] as usize,
                self.cfg.batch_size,
                batcher_seed(self.cfg.seed, g, k as u64),
            );
            ctx.delays = DelaySampler::from_stream(self.sim.net_seed, delay_stream(g, k as u64));
            ctx.attack = self.cfg.adversary.attack_for(g as usize);
            // Model download to the freshly sampled participant.
            let d = ctx
                .delays
                .transfer_ms(&self.sim.env.worker_edge_link, self.sim.download_bytes);
            self.workers_busy_ms += d;
            self.queue
                .push(now + d, ActorId::Worker(slot), VEv::Arrive { slot });
        }
    }

    fn schedule_step(&mut self, slot: usize, now: f64) {
        let device = self.device_of(self.slots[slot].gid);
        let d = self.slots[slot]
            .delays
            .compute_ms(&self.sim.env.worker_devices[device]);
        self.workers_busy_ms += d;
        self.queue
            .push(now + d, ActorId::Worker(slot), VEv::StepDone { slot });
    }

    fn on_step_done(&mut self, slot: usize, now: f64) {
        let e = self.slots[slot].edge;
        let k = self.edges[e].round;
        self.slots[slot].steps += 1;
        let t = (k - 1) * self.cfg.tau + self.slots[slot].steps;
        let ctx = &mut self.slots[slot];
        ctx.batcher.next_batch_into(&mut self.batch);
        let data = &self.shards[ctx.shard];
        let model = &mut self.step_model;
        let batch = &self.batch;
        let clip = self.cfg.clip_norm;
        let mut grad_fn = |p: &Vector, out: &mut Vector| {
            model.set_params(p);
            model.loss_and_grad_into(data, batch, out);
            if let Some(max_norm) = clip {
                let norm = out.norm();
                if norm > max_norm {
                    out.scale_in_place(max_norm / norm);
                }
            }
        };
        self.strategy
            .local_step(t, &mut self.fl.workers[slot], &mut grad_fn);
        if self.slots[slot].steps < self.cfg.tau {
            self.schedule_step(slot, now);
        } else {
            let d = self.slots[slot]
                .delays
                .transfer_ms(&self.sim.env.worker_edge_link, self.sim.upload_bytes);
            self.workers_busy_ms += d;
            self.queue
                .push(now + d, ActorId::Worker(slot), VEv::Upload { slot });
        }
    }

    fn on_upload(&mut self, slot: usize, now: f64) {
        let e = self.slots[slot].edge;
        let k = self.edges[e].round;
        if let Some(attack) = self.slots[slot].attack {
            let g = self.slots[slot].gid;
            let entry = self
                .cfg
                .adversary
                .byzantine
                .iter()
                .position(|b| b.worker as u64 == g)
                .expect("attack implies a plan entry");
            // A fresh per-(worker, round) stream: the draw is independent
            // of event interleaving and of every other corruption.
            let mut sampler =
                AdversarySampler::from_stream(self.cfg.seed, adversary_stream(g, k as u64));
            corrupt_upload(
                &mut self.fl.workers[slot],
                &attack,
                &mut sampler,
                &mut self.adversaries[entry],
            );
        }
        self.edges[e].arrived += 1;
        if self.edges[e].arrived == self.fl.hierarchy.workers_in_edge(e) {
            self.fire_edge(e, now);
        }
    }

    fn fire_edge(&mut self, e: usize, now: f64) {
        let k = self.edges[e].round;
        let d = self.edges[e].sampler.compute_ms(&self.sim.env.edge_device);
        self.edges[e].busy_ms += d;
        self.strategy.edge_aggregate(k, &mut self.fl.edge_view(e));
        let (gamma, cos) = (self.fl.edges[e].gamma_edge, self.fl.edges[e].cos_theta);
        self.stage_gamma(k, e, gamma, cos);
        if k.is_multiple_of(self.cfg.pi) {
            // Boundary round: submit to the cloud and wait for its reply
            // before evaluating or advancing.
            let flows = self.edges.len();
            let du = self.edges[e].sampler.shared_transfer_ms(
                &self.sim.env.edge_cloud_link,
                self.sim.upload_bytes,
                flows,
            );
            self.edges[e].busy_ms += du;
            self.queue
                .push(now + d + du, ActorId::Edge(e), VEv::CloudSubmit { edge: e });
        } else {
            self.finish_edge_round(e, now + d);
        }
    }

    /// Post-aggregation bookkeeping of edge `e`'s round `k`: stage the
    /// evaluation snapshot if this is an evaluation round, then start the
    /// next round or retire the edge.
    fn finish_edge_round(&mut self, e: usize, now: f64) {
        let k = self.edges[e].round;
        if self.is_eval_round(k) {
            let x = self.fl.edges[e].x_plus.clone();
            self.stage_eval(k, e, x, now);
        }
        if k < self.rounds {
            self.queue
                .push(now, ActorId::Edge(e), VEv::StartRound { edge: e });
        } else {
            self.edges_done += 1;
        }
    }

    fn on_cloud_submit(&mut self, e: usize, now: f64) {
        self.cloud_arrived[e] = true;
        if self.cloud_arrived.iter().all(|&a| a) {
            self.fire_cloud(now);
        }
    }

    fn fire_cloud(&mut self, now: f64) {
        // Full sync: every edge is parked at the same boundary round.
        let k = self.edges[0].round;
        let p = k / self.cfg.pi;
        let d = self.cloud_sampler.compute_ms(&self.sim.env.cloud_device);
        self.cloud_busy_ms += d;
        self.strategy.cloud_aggregate(p, &mut self.fl);
        self.cloud_arrived.fill(false);
        let flows = self.edges.len();
        for e in 0..self.edges.len() {
            let dd = self.edges[e].sampler.shared_transfer_ms(
                &self.sim.env.edge_cloud_link,
                self.sim.download_bytes,
                flows,
            );
            self.edges[e].busy_ms += dd;
            self.queue
                .push(now + d + dd, ActorId::Edge(e), VEv::CloudReply { edge: e });
        }
    }

    /// Stages edge `e`'s round-`k` post-aggregation model; fires the
    /// evaluation once all edges have contributed, on the same
    /// population-weighted edge average as the tick-driven engine.
    fn stage_eval(&mut self, k: usize, e: usize, x: Vector, at_ms: f64) {
        let l = self.edges.len();
        let (xs, last_ms) = self
            .eval_stage
            .entry(k)
            .or_insert_with(|| (vec![None; l], 0.0));
        xs[e] = Some(x);
        *last_ms = last_ms.max(at_ms);
        let complete = xs.iter().all(Option::is_some);
        if !complete {
            return;
        }
        let (xs, last_ms) = self.eval_stage.remove(&k).expect("stage just checked");
        let params = weighted_edge_average(
            &self.fl.weights,
            xs.iter().map(|x| x.as_ref().expect("stage complete")),
        );
        let (test, train) = evaluate_on_replicas(
            &mut self.eval_models,
            self.test_data,
            &self.train_probe,
            &params,
        );
        self.evals.push(EvalRec {
            iter: k * self.cfg.tau,
            at_ms: last_ms,
            test,
            train,
        });
    }

    fn stage_gamma(&mut self, k: usize, e: usize, gamma: f32, cos: f32) {
        let l = self.edges.len();
        let slot = self.gamma_stage.entry(k).or_insert_with(|| vec![None; l]);
        slot[e] = Some((gamma, cos));
        if !slot.iter().all(Option::is_some) {
            return;
        }
        let slot = self.gamma_stage.remove(&k).expect("stage just checked");
        let fired: Vec<(f32, f32)> = slot.into_iter().flatten().collect();
        let n = fired.len() as f32;
        self.gamma_trace
            .push((k, fired.iter().map(|p| p.0).sum::<f32>() / n));
        self.cos_trace
            .push((k, fired.iter().map(|p| p.1).sum::<f32>() / n));
    }

    fn run(&mut self) {
        for e in 0..self.edges.len() {
            self.queue
                .push(0.0, ActorId::Edge(e), VEv::StartRound { edge: e });
        }
        while let Some((time, _actor, payload)) = self.queue.pop() {
            self.now = time;
            self.events += 1;
            match payload {
                VEv::StartRound { edge } => self.on_start_round(edge, time),
                VEv::Arrive { slot } => self.schedule_step(slot, time),
                VEv::StepDone { slot } => self.on_step_done(slot, time),
                VEv::Upload { slot } => self.on_upload(slot, time),
                VEv::CloudSubmit { edge } => self.on_cloud_submit(edge, time),
                VEv::CloudReply { edge } => self.finish_edge_round(edge, time),
            }
        }
        assert_eq!(
            self.edges_done,
            self.edges.len(),
            "event queue drained before every edge finished its rounds"
        );
    }

    fn finish(mut self) -> SimResult {
        self.evals.sort_by_key(|r| r.iter);
        let mut curve = ConvergenceCurve::new();
        let mut timed = TimedCurve::new();
        for r in &self.evals {
            curve.push(EvalPoint {
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
            timed.push(TimedPoint {
                seconds: r.at_ms / 1000.0,
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
        }
        let end_ms = self.now;
        let util = |busy_ms: f64| {
            if end_ms > 0.0 {
                (busy_ms / end_ms).min(1.0)
            } else {
                0.0
            }
        };
        // O(edges) actor accounting: the worker tier is virtual, so all
        // sampled slots report as one aggregate "workers" entry.
        let mut utilization = Vec::with_capacity(self.edges.len() + 2);
        let mut faults = Vec::with_capacity(self.edges.len() + 2);
        utilization.push(ActorUtilization {
            actor: "workers".to_string(),
            busy_seconds: self.workers_busy_ms / 1000.0,
            utilization: util(self.workers_busy_ms),
        });
        faults.push(ActorFaults {
            actor: "workers".to_string(),
            counters: FaultCounters::default(),
        });
        for (l, e) in self.edges.iter().enumerate() {
            utilization.push(ActorUtilization {
                actor: format!("edge-{l}"),
                busy_seconds: e.busy_ms / 1000.0,
                utilization: util(e.busy_ms),
            });
            faults.push(ActorFaults {
                actor: format!("edge-{l}"),
                counters: FaultCounters::default(),
            });
        }
        utilization.push(ActorUtilization {
            actor: "cloud".to_string(),
            busy_seconds: self.cloud_busy_ms / 1000.0,
            utilization: util(self.cloud_busy_ms),
        });
        faults.push(ActorFaults {
            actor: "cloud".to_string(),
            counters: FaultCounters::default(),
        });
        let adversaries: Vec<ActorAdversaries> = self
            .cfg
            .adversary
            .byzantine
            .iter()
            .zip(self.adversaries.iter())
            .map(|(b, c)| ActorAdversaries {
                actor: format!("worker-{}", b.worker),
                counters: *c,
            })
            .collect();
        SimResult {
            algorithm: self.strategy.name().to_string(),
            policy: self.sim.policy.label(),
            curve,
            timed_curve: timed,
            gamma_trace: self.gamma_trace,
            cos_trace: self.cos_trace,
            tier_gamma: Vec::new(),
            final_params: virtual_global_params(&self.fl),
            simulated_seconds: end_ms / 1000.0,
            utilization,
            faults,
            adversaries,
            events: self.events,
        }
    }
}

/// Runs `strategy` over a virtual population under the co-simulation: the
/// event-driven counterpart of
/// [`hieradmo_core::population::run_virtual`], with the same sampled
/// model trajectory bit for bit (gated by `tests/sampling_equivalence.rs`)
/// and an honest virtual-time axis on top.
///
/// Under full participation this materializes the population and
/// delegates to [`crate::simulate`] — `sim.env.worker_devices` must then
/// cover the whole materialized population. Under sampling, device
/// profiles act as a *pool*: registered worker `g` computes on profile
/// `g mod pool size`, so a small profile set describes any population.
///
/// Per round and edge, only the sampled cohort exists: the event queue
/// holds `O(cohort + edges)` events, registered-but-idle workers cost
/// nothing, and the actor tallies in the result are `O(edges)` (workers
/// report as one aggregate entry; `adversaries` carries one entry per
/// plan entry instead of one per registered worker).
///
/// Sampled-path restrictions (validated): [`SyncPolicy::FullSync`] only,
/// no fault plan, no N-tier tree, [`Architecture::ThreeTier`] only, no
/// dropout, and no legacy `edges`/`workers_per_edge` fields.
///
/// # Errors
///
/// [`SimError`] on any inconsistency above, plus everything the
/// population/sampling validation in
/// [`hieradmo_core::population::run_virtual`] rejects.
pub fn simulate_virtual<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    sim: &SimConfig,
) -> Result<SimResult, SimError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    cfg.validate()
        .map_err(|m| SimError::Run(RunError::BadConfig(m)))?;
    population
        .validate_shards(shards)
        .map_err(|m| SimError::Run(RunError::Data(m)))?;
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker as u64 >= population.total_workers())
    {
        return Err(SimError::Adversary(format!(
            "attack targets worker {} but the population registers only {} workers",
            b.worker,
            population.total_workers()
        )));
    }
    if cfg.sampling.is_full() {
        let hierarchy = population
            .materialize_hierarchy()
            .map_err(|m| SimError::Run(RunError::Data(m)))?;
        let worker_data = population.materialize_shards(shards);
        return crate::simulate(
            strategy,
            model,
            &hierarchy,
            &worker_data,
            test_data,
            cfg,
            sim,
        );
    }
    if sim.policy != SyncPolicy::FullSync {
        return Err(SimError::Policy(format!(
            "client sampling requires SyncPolicy::FullSync, got {}",
            sim.policy.label()
        )));
    }
    if !sim.faults.is_empty() {
        return Err(SimError::Fault(
            "fault injection is not supported with client sampling".into(),
        ));
    }
    if sim.tiers.is_some() {
        return Err(SimError::Run(RunError::BadConfig(
            "N-tier trees are not supported with client sampling".into(),
        )));
    }
    if sim.architecture != Architecture::ThreeTier {
        return Err(SimError::Net(
            "client sampling requires Architecture::ThreeTier".into(),
        ));
    }
    if sim.env.worker_devices.is_empty() {
        return Err(SimError::Net(
            "the device-profile pool must not be empty".into(),
        ));
    }
    if cfg.dropout != 0.0 {
        return Err(SimError::Run(RunError::BadConfig(
            "dropout is not supported with client sampling; model partial \
             participation by lowering the sampling fraction instead"
                .into(),
        )));
    }
    if cfg.edges.is_some() || cfg.workers_per_edge.is_some() {
        return Err(SimError::Run(RunError::BadConfig(
            "legacy edges/workers_per_edge fields are not supported with a \
             virtual population (the population defines the topology)"
                .into(),
        )));
    }
    sim.validate(None).map_err(SimError::Policy)?;

    let cohort = population
        .cohort_sizes(&cfg.sampling)
        .map_err(|m| SimError::Run(RunError::BadConfig(m)))?;
    let hierarchy = Hierarchy::new(cohort);
    strategy
        .check_topology(&hierarchy)
        .map_err(|m| SimError::Run(RunError::Topology(m)))?;

    let shard_sizes: Vec<u64> = shards.iter().map(|d| d.len() as u64).collect();
    let edge_totals = population.edge_data_samples(&shard_sizes);
    let total_slots = hierarchy.num_workers();
    let l_count = hierarchy.num_edges();
    let weights = Weights::from_cohort(&hierarchy, &vec![1u64; total_slots], edge_totals);
    let x0 = model.params();
    let mut fl = FlState::new(hierarchy.clone(), weights, &x0);
    fl.aggregator = cfg.aggregator;
    strategy.init(&mut fl);

    // Placeholder slot contexts; every field is rebuilt at each round's
    // materialization. Edge/cloud delay streams are drawn from dedicated
    // salted stream ids so they never depend on the population size.
    let slots: Vec<SlotCtx> = (0..total_slots)
        .map(|slot| SlotCtx {
            gid: 0,
            edge: (0..l_count)
                .find(|&e| hierarchy.edge_workers(e).contains(&slot))
                .expect("every slot belongs to an edge"),
            shard: 0,
            steps: 0,
            batcher: Batcher::new(1, 1, 0),
            delays: DelaySampler::from_stream(sim.net_seed, 0),
            attack: None,
        })
        .collect();
    let edges: Vec<EdgeSim> = (0..l_count)
        .map(|e| EdgeSim {
            round: 0,
            arrived: 0,
            busy_ms: 0.0,
            sampler: DelaySampler::from_stream(sim.net_seed ^ SALT_EDGE_STREAM, e as u64),
        })
        .collect();

    let threads = cfg.resolved_threads();
    let mut engine = VEngine {
        strategy,
        cfg,
        sim,
        population,
        shards,
        shard_sizes,
        sampler: CohortSampler::new(cfg.seed),
        fl,
        slots,
        edges,
        cloud_arrived: vec![false; l_count],
        cloud_busy_ms: 0.0,
        cloud_sampler: DelaySampler::from_stream(sim.net_seed ^ SALT_CLOUD_STREAM, 0),
        workers_busy_ms: 0.0,
        queue: EventQueue::new(),
        eval_stage: BTreeMap::new(),
        gamma_stage: BTreeMap::new(),
        gamma_trace: Vec::new(),
        cos_trace: Vec::new(),
        evals: Vec::new(),
        step_model: model.clone(),
        eval_models: (0..threads).map(|_| model.clone()).collect(),
        test_data,
        train_probe: build_train_probe(shards, cfg.train_eval_cap),
        batch: Vec::new(),
        adversaries: vec![AdversaryCounters::default(); cfg.adversary.byzantine.len()],
        rounds: cfg.total_iters / cfg.tau,
        edges_done: 0,
        events: 0,
        now: 0.0,
    };
    engine.run();
    Ok(engine.finish())
}

/// Stream salts keeping the edge/cloud aggregator delay streams disjoint
/// from every per-(worker, round) stream whatever the population size.
const SALT_EDGE_STREAM: u64 = 0x6564_6765_5f76_706f;
const SALT_CLOUD_STREAM: u64 = 0x636c_6f75_645f_7670;
