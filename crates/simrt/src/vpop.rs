//! Event-driven co-simulation over a *virtual* worker population: only the
//! per-round sampled cohort exists as actors, so queue cost, memory, and
//! events processed are all `O(active)`, never `O(registered)`.
//!
//! [`simulate_virtual`] is the event-driven counterpart of
//! [`hieradmo_core::population::run_virtual`] and its tiered variants.
//! Under full participation it materializes the population and delegates
//! to [`crate::simulate`] (bitwise identical to the classic path); under
//! sampling it runs an event loop whose per-slot RNG streams — mini-batch
//! order, adversary draws, network delays, fault draws, dropout masks —
//! all re-derive from `(seed, worker_id, round)`, so under
//! [`SyncPolicy::FullSync`] the model trajectory is bitwise identical to
//! `run_virtual`'s / `run_virtual_tiered`'s and independent of thread
//! count (gated by `tests/sampling_equivalence.rs`).
//!
//! Edges progress their rounds independently between cloud barriers;
//! evaluation and γ traces are staged per round at *edge* granularity and
//! emitted once every edge has contributed, reproducing the tick-driven
//! round means exactly.
//!
//! # Relaxed policies over sampled cohorts
//!
//! Because a cohort worker only exists for one round and re-materializes
//! from its edge at the next round's start, the straggler semantics of
//! [`SyncPolicy::Deadline`] and [`SyncPolicy::AsyncAge`] simplify to
//! *waiver-at-the-round*: a straggler that misses its round's firing is
//! discarded (its slot re-materializes next round — the rejoin is free),
//! and the slot's carried state enters the aggregation hook at staleness
//! ≥ 1. Deadline rounds therefore see per-slot staleness of 0 or 1;
//! AsyncAge tracks a per-slot buffer age that grows one per missed round
//! and is bounded by `max_staleness` exactly as in the classic engine.
//!
//! # Faults over sampled cohorts
//!
//! Transient crashes are decided *at materialization*: sampled worker `g`
//! in round `k` draws once from its private `(net_seed, g, k)` fault
//! stream ([`fault_stream`]) and, if it crashes, sits the round out
//! (absent: no download, no steps, no upload) — the event-driven spelling
//! of a crash that costs the whole interval. Absent slots are waived at
//! every policy's barrier, and rejoin automatically at the next
//! materialization. Permanent crashes remove a registered id from every
//! cohort from `at_ms` on. Delay spikes multiply individual step times
//! from the same per-`(worker, round)` stream.
//!
//! Link faults run the classic retry/duplicate protocol over the sampled
//! cohort: slot downloads and uploads draw the transfer outcome from the
//! occupying worker's `(worker, round)` fault stream, and the edge↔cloud
//! hops from a per-edge stream (`SALT_EDGE_FAULT_STREAM`) that exists
//! for the whole run — the mailbox state a cohort slot cannot keep lives
//! at the (persistent) edge actors. Retries and backoff only stretch the
//! transfer (delivery eventually succeeds, as in the classic engine), so
//! the FullSync model trajectory stays bitwise identical to the fault-free
//! run; duplicates arrive as separate `VEv::DupArrival` events and are
//! tallied at the receiving actor.

use std::collections::BTreeMap;

use hieradmo_core::byzantine::corrupt_upload;
use hieradmo_core::driver::{build_train_probe, evaluate_on_replicas, RunError};
use hieradmo_core::population::{
    adversary_stream, batcher_seed, cohort_dropout_mask, delay_stream, fault_stream,
    materialize_edge_cohort, virtual_global_params, weighted_edge_average, CohortSampler,
    WorkerPopulation,
};
use hieradmo_core::{EdgeState, FlState, RunConfig, Strategy, TierScope, WorkerState};
use hieradmo_data::{Batcher, Dataset};
use hieradmo_metrics::{
    ActorAdversaries, ActorFaults, ActorUtilization, AdversaryCounters, ConvergenceCurve,
    EvalPoint, FaultCounters, TimedCurve, TimedPoint,
};
use hieradmo_models::{Evaluation, Model};
use hieradmo_netsim::{AdversarySampler, Architecture, AttackModel, DelaySampler, FaultSampler};
use hieradmo_tensor::Vector;
use hieradmo_topology::{Hierarchy, TierAggregation, TierTree, Weights};

use crate::driver::{quorum_count, SimError, SimResult};
use crate::event::{ActorId, EventQueue};
use crate::policy::{SimConfig, SyncPolicy};

/// One scheduled occurrence in the virtual-population simulation. `slot`
/// indexes the cohort (the active actors), never the registered
/// population. Slot events carry the round they belong to and boundary
/// events the submission boundary, so anything a relaxed policy leaves in
/// flight past its firing is dropped instead of leaking into the next
/// materialization.
enum VEv {
    /// An edge begins its next round: sample the cohort, charge downloads.
    StartRound { edge: usize },
    /// A cohort slot's model download landed; local steps begin.
    Arrive { slot: usize, round: usize },
    /// A cohort slot finished one local step.
    StepDone { slot: usize, round: usize },
    /// A cohort slot's end-of-round upload reached its edge.
    Upload { slot: usize, round: usize },
    /// A deadline edge round's quorum timer expired.
    EdgeTimeout { edge: usize, round: usize },
    /// An edge's boundary-round submission reached the cloud.
    CloudSubmit { edge: usize, boundary: usize },
    /// A deadline cloud boundary's quorum timer expired.
    CloudTimeout { boundary: usize },
    /// The cloud's reply reached an edge.
    CloudReply { edge: usize },
    /// A duplicated message's second copy landed at `to` (link faults).
    DupArrival { to: ActorId },
}

/// Round-scoped context of one cohort slot, rebuilt from
/// `(seed, worker_id, round)` at every materialization.
struct SlotCtx {
    /// Global (population) id of the worker occupying the slot this round.
    gid: u64,
    /// The slot's edge (fixed: the cohort hierarchy is constant).
    edge: usize,
    /// The worker's shard index this round.
    shard: usize,
    /// Local steps completed this round.
    steps: usize,
    /// This round's mini-batch stream.
    batcher: Batcher,
    /// This round's private delay stream.
    delays: DelaySampler,
    /// This round's private fault stream (`None` when the plan is empty,
    /// so fault-free runs draw nothing).
    fsampler: Option<FaultSampler>,
    /// Per-step dropout mask for this round (all-false without dropout).
    dropped: Vec<bool>,
    /// The occupying worker's attack, if it is Byzantine.
    attack: Option<AttackModel>,
}

struct EdgeSim {
    /// Current round (1-based; 0 before the first `StartRound`).
    round: usize,
    /// The current round's aggregation already ran: anything still in
    /// flight for it is a straggler and is discarded on arrival.
    fired: bool,
    /// Per-slot upload landed this round.
    arrived: Vec<bool>,
    /// Per-slot fault absence this round (crashed at materialization).
    absent: Vec<bool>,
    /// Per-slot buffer age, in rounds since the slot last contributed
    /// ([`SyncPolicy::AsyncAge`] only).
    age: Vec<usize>,
    /// The deadline quorum timer for the current round expired.
    timed_out: bool,
    /// The edge has finished its final round.
    done: bool,
    /// Busy virtual milliseconds (aggregation compute + cloud transfers).
    busy_ms: f64,
    /// Private delay stream for aggregation compute and cloud hops.
    sampler: DelaySampler,
    /// Private fault stream for the edge↔cloud retry protocol (`None`
    /// without link faults, so fault-free runs draw nothing).
    fsampler: Option<FaultSampler>,
    /// Link-fault tallies of this edge's transfers and received duplicates.
    faults: FaultCounters,
}

struct EvalRec {
    iter: usize,
    at_ms: f64,
    test: Evaluation,
    train: Evaluation,
}

struct VEngine<'a, M, S: ?Sized> {
    strategy: &'a S,
    cfg: &'a RunConfig,
    sim: &'a SimConfig,
    population: &'a WorkerPopulation,
    shards: &'a [Dataset],
    shard_sizes: Vec<u64>,
    sampler: CohortSampler,
    fl: FlState,
    slots: Vec<SlotCtx>,
    edges: Vec<EdgeSim>,
    /// The sampled sub-tree (the registered tree with its leaf fanout
    /// swapped for the uniform cohort size), when this is an N-tier run.
    cohort_tree: Option<TierTree>,
    /// Edge rounds per cloud submission: `π`, or the deepest non-identity
    /// middle tier's `TierTree::sync_rounds` on N-tier runs.
    submit_period: usize,
    /// The fault plan injects something; `false` guarantees zero fault
    /// draws and a run bitwise identical to one without fault injection.
    faults_on: bool,
    cloud_arrived: Vec<bool>,
    /// Next submission boundary to fire (1-based;
    /// [`SyncPolicy::FullSync`] / [`SyncPolicy::Deadline`]).
    cloud_boundary: usize,
    /// Cloud firings so far ([`SyncPolicy::AsyncAge`] boundary counter).
    cloud_firings: usize,
    /// Last boundary each edge submitted (deadline staleness).
    cloud_last_boundary: Vec<usize>,
    /// Per-edge age, in firings since last participation (async).
    cloud_age: Vec<usize>,
    /// The deadline quorum timer for the current boundary expired.
    cloud_timed_out: bool,
    cloud_busy_ms: f64,
    cloud_sampler: DelaySampler,
    /// Aggregate busy time of all sampled workers (the worker tier is
    /// virtual, so per-actor accounting would be `O(registered)`).
    workers_busy_ms: f64,
    /// Aggregate fault tallies of all sampled workers, ditto.
    worker_faults: FaultCounters,
    /// Duplicates received by the cloud (its transfers are charged — and
    /// drawn — at the edges, mirroring the classic engine).
    cloud_faults: FaultCounters,
    /// One flag per permanent-crash plan entry: already counted.
    permanent_counted: Vec<bool>,
    queue: EventQueue<VEv>,
    /// Per-round staged edge `x_plus` snapshots for evaluation.
    eval_stage: BTreeMap<usize, (Vec<Option<Vector>>, f64)>,
    /// Per-round staged `(γℓ, cos θ)` per edge.
    gamma_stage: BTreeMap<usize, Vec<Option<(f32, f32)>>>,
    gamma_trace: Vec<(usize, f32)>,
    cos_trace: Vec<(usize, f32)>,
    /// Per-middle-depth `(round, mean γℓ)` traces (N-tier runs).
    tier_gamma: Vec<Vec<(usize, f32)>>,
    evals: Vec<EvalRec>,
    /// One scratch model for gradient math (params are set before every
    /// use, so slots can share it) and the evaluation replicas.
    step_model: M,
    eval_models: Vec<M>,
    test_data: &'a Dataset,
    train_probe: Dataset,
    batch: Vec<usize>,
    /// One counter per adversary-plan entry, in plan order.
    adversaries: Vec<AdversaryCounters>,
    rounds: usize,
    edges_done: usize,
    events: u64,
    now: f64,
}

/// Runs the link-fault retry protocol for one transfer: draws the outcome
/// from `fs`, tallies it into the sender's `counters`, and returns the
/// delay penalty plus the duplicate's extra lag, if one was spawned.
fn link_transfer(
    lf: &hieradmo_netsim::LinkFaults,
    fs: &mut FaultSampler,
    counters: &mut FaultCounters,
) -> (f64, Option<f64>) {
    let out = fs.transfer(lf);
    counters.add_transfer(
        out.messages_lost,
        out.transfer_failures,
        out.retries,
        out.duplicate_lag_ms.is_some(),
    );
    (out.penalty_ms, out.duplicate_lag_ms)
}

impl<'a, M: Model + Clone + Send, S: Strategy + ?Sized> VEngine<'a, M, S> {
    fn is_eval_round(&self, k: usize) -> bool {
        (k * self.cfg.tau).is_multiple_of(self.cfg.eval_every) || k == self.rounds
    }

    fn device_of(&self, gid: u64) -> usize {
        // Profile-pool semantics: registered worker `g` draws its compute
        // profile from the pool slot `g mod pool size`, so a small profile
        // set covers any population size.
        (gid % self.sim.env.worker_devices.len() as u64) as usize
    }

    /// A slot event from a round that already fired (or was replaced by a
    /// newer materialization) — a straggler to be discarded.
    fn slot_event_stale(&self, slot: usize, round: usize) -> bool {
        let e = self.slots[slot].edge;
        self.edges[e].round != round || self.edges[e].fired
    }

    fn on_start_round(&mut self, e: usize, now: f64) {
        self.edges[e].round += 1;
        let k = self.edges[e].round;
        self.edges[e].fired = false;
        self.edges[e].timed_out = false;
        self.edges[e].arrived.fill(false);
        let ids = materialize_edge_cohort(
            &mut self.fl,
            self.population,
            &self.shard_sizes,
            &self.sampler,
            e,
            k,
        );
        let range = self.fl.hierarchy.edge_workers(e);
        for (j, &g) in ids.iter().enumerate() {
            let slot = range.start + j;
            let mut fsampler = self
                .faults_on
                .then(|| FaultSampler::from_stream(self.sim.net_seed, fault_stream(g, k as u64)));
            // Fault waiver at materialization: the round's crash draw is
            // taken up front, so absence is a per-(worker, round) fact
            // independent of event interleaving. An absent slot loses its
            // whole round and rejoins at the next materialization.
            let mut absent = false;
            for (idx, perm) in self.sim.faults.permanent.iter().enumerate() {
                if perm.worker as u64 == g && perm.at_ms <= now {
                    if !self.permanent_counted[idx] {
                        self.permanent_counted[idx] = true;
                        self.worker_faults.crashes += 1;
                    }
                    absent = true;
                }
            }
            if !absent {
                if let (Some(c), Some(fs)) = (self.sim.faults.crash.as_ref(), fsampler.as_mut()) {
                    if let Some(downtime) = fs.crash_downtime_ms(c) {
                        absent = true;
                        self.worker_faults.crashes += 1;
                        self.worker_faults.recovery_ms += downtime;
                    }
                }
            }
            self.edges[e].absent[j] = absent;
            let ctx = &mut self.slots[slot];
            ctx.gid = g;
            ctx.shard = self.population.shard_of(g);
            ctx.steps = 0;
            ctx.batcher = Batcher::new(
                self.shard_sizes[ctx.shard] as usize,
                self.cfg.batch_size,
                batcher_seed(self.cfg.seed, g, k as u64),
            );
            ctx.delays = DelaySampler::from_stream(self.sim.net_seed, delay_stream(g, k as u64));
            ctx.fsampler = fsampler;
            ctx.dropped =
                cohort_dropout_mask(self.cfg.seed, g, k as u64, self.cfg.tau, self.cfg.dropout);
            ctx.attack = self.cfg.adversary.attack_for(g as usize);
            if absent {
                self.worker_faults.lost_uploads += 1;
                continue; // down for the round: no download, no steps
            }
            // Model download to the freshly sampled participant.
            let mut d = self.slots[slot]
                .delays
                .transfer_ms(&self.sim.env.worker_edge_link, self.sim.download_bytes);
            let mut dup = None;
            if let Some(lf) = self.sim.faults.link {
                let fs = self.slots[slot]
                    .fsampler
                    .as_mut()
                    .expect("link faults imply an active fault stream");
                let (pen, lag) = link_transfer(&lf, fs, &mut self.worker_faults);
                d += pen;
                dup = lag;
            }
            self.workers_busy_ms += d;
            self.queue.push(
                now + d,
                ActorId::Worker(slot),
                VEv::Arrive { slot, round: k },
            );
            if let Some(lag) = dup {
                let to = ActorId::Worker(slot);
                self.queue.push(now + d + lag, to, VEv::DupArrival { to });
            }
        }
        if self.edges[e].absent.iter().all(|&a| a) {
            // Every sampled participant is down: the round fires empty and
            // the edge relays its carried state at the boundaries, so no
            // barrier above can deadlock on it.
            self.fire_edge(e, now);
        }
    }

    fn schedule_step(&mut self, slot: usize, now: f64) {
        let e = self.slots[slot].edge;
        let k = self.edges[e].round;
        let next = self.slots[slot].steps;
        if self.slots[slot].dropped[next] {
            // Dropped step: the device sits idle — no compute draw, and
            // (in `on_step_done`) no mini-batch draw and no local step,
            // exactly matching the tick-driven cohort engine.
            self.queue
                .push(now, ActorId::Worker(slot), VEv::StepDone { slot, round: k });
            return;
        }
        let device = self.device_of(self.slots[slot].gid);
        let mut d = self.slots[slot]
            .delays
            .compute_ms(&self.sim.env.worker_devices[device]);
        if let Some(s) = self.sim.faults.spikes.as_ref() {
            let spike = self.slots[slot]
                .fsampler
                .as_mut()
                .and_then(|fs| fs.spike_factor(s));
            if let Some(f) = spike {
                d *= f;
                self.worker_faults.delay_spikes += 1;
            }
        }
        self.workers_busy_ms += d;
        self.queue.push(
            now + d,
            ActorId::Worker(slot),
            VEv::StepDone { slot, round: k },
        );
    }

    fn on_step_done(&mut self, slot: usize, round: usize, now: f64) {
        if self.slot_event_stale(slot, round) {
            return;
        }
        self.slots[slot].steps += 1;
        let steps = self.slots[slot].steps;
        if !self.slots[slot].dropped[steps - 1] {
            let t = (round - 1) * self.cfg.tau + steps;
            let ctx = &mut self.slots[slot];
            ctx.batcher.next_batch_into(&mut self.batch);
            let data = &self.shards[ctx.shard];
            let model = &mut self.step_model;
            let batch = &self.batch;
            let clip = self.cfg.clip_norm;
            let mut grad_fn = |p: &Vector, out: &mut Vector| {
                model.set_params(p);
                model.loss_and_grad_into(data, batch, out);
                if let Some(max_norm) = clip {
                    let norm = out.norm();
                    if norm > max_norm {
                        out.scale_in_place(max_norm / norm);
                    }
                }
            };
            self.strategy
                .local_step(t, &mut self.fl.workers[slot], &mut grad_fn);
        }
        if steps < self.cfg.tau {
            self.schedule_step(slot, now);
        } else {
            let mut d = self.slots[slot]
                .delays
                .transfer_ms(&self.sim.env.worker_edge_link, self.sim.upload_bytes);
            let mut dup = None;
            if let Some(lf) = self.sim.faults.link {
                let fs = self.slots[slot]
                    .fsampler
                    .as_mut()
                    .expect("link faults imply an active fault stream");
                let (pen, lag) = link_transfer(&lf, fs, &mut self.worker_faults);
                d += pen;
                dup = lag;
            }
            self.workers_busy_ms += d;
            self.queue
                .push(now + d, ActorId::Worker(slot), VEv::Upload { slot, round });
            if let Some(lag) = dup {
                let to = ActorId::Edge(self.slots[slot].edge);
                self.queue.push(now + d + lag, to, VEv::DupArrival { to });
            }
        }
    }

    fn on_upload(&mut self, slot: usize, round: usize, now: f64) {
        if self.slot_event_stale(slot, round) {
            // A straggler past its round's firing: the slot has been (or
            // is about to be) re-materialized — the upload is discarded
            // and the rejoin happens at the next round start for free.
            return;
        }
        let e = self.slots[slot].edge;
        if let Some(attack) = self.slots[slot].attack {
            let g = self.slots[slot].gid;
            let entry = self
                .cfg
                .adversary
                .byzantine
                .iter()
                .position(|b| b.worker as u64 == g)
                .expect("attack implies a plan entry");
            // A fresh per-(worker, round) stream: the draw is independent
            // of event interleaving and of every other corruption.
            let mut sampler =
                AdversarySampler::from_stream(self.cfg.seed, adversary_stream(g, round as u64));
            corrupt_upload(
                &mut self.fl.workers[slot],
                &attack,
                &mut sampler,
                &mut self.adversaries[entry],
            );
        }
        let j = slot - self.fl.hierarchy.edge_workers(e).start;
        self.edges[e].arrived[j] = true;
        match self.sim.policy {
            SyncPolicy::FullSync => self.maybe_fire_edge_full(e, now),
            SyncPolicy::Deadline { timeout_ms, .. } => {
                let first = self.edges[e].arrived.iter().filter(|&&a| a).count() == 1;
                if first {
                    self.queue.push(
                        now + timeout_ms,
                        ActorId::Edge(e),
                        VEv::EdgeTimeout { edge: e, round },
                    );
                }
                self.maybe_fire_edge_deadline(e, now);
            }
            SyncPolicy::AsyncAge { .. } => {
                self.edges[e].age[j] = 0;
                self.maybe_fire_edge_async(e, now);
            }
        }
    }

    fn on_edge_timeout(&mut self, e: usize, round: usize, now: f64) {
        if self.edges[e].round != round || self.edges[e].fired {
            return; // stale timer for an already-fired round
        }
        self.edges[e].timed_out = true;
        self.maybe_fire_edge_deadline(e, now);
    }

    /// Full-sync edge barrier with the fault waiver: fires once every
    /// non-absent slot has arrived. With no faults this is exactly the
    /// all-arrived barrier.
    fn maybe_fire_edge_full(&mut self, e: usize, now: f64) {
        let edge = &self.edges[e];
        if edge.fired || !edge.arrived.iter().any(|&a| a) {
            return;
        }
        let all = edge
            .arrived
            .iter()
            .zip(&edge.absent)
            .all(|(&a, &ab)| a || ab);
        if all {
            self.fire_edge(e, now);
        }
    }

    fn maybe_fire_edge_deadline(&mut self, e: usize, now: f64) {
        let SyncPolicy::Deadline { quorum, .. } = self.sim.policy else {
            return;
        };
        let edge = &self.edges[e];
        if edge.fired {
            return;
        }
        let have = edge.arrived.iter().filter(|&&a| a).count();
        if have == 0 {
            return;
        }
        // Quorum re-derivation: absent (crashed-for-the-round) slots leave
        // the denominator, so faults can never deadlock the round.
        let live_total = edge.arrived.len() - edge.absent.iter().filter(|&&a| a).count();
        if have == live_total || (edge.timed_out && have >= quorum_count(quorum, live_total)) {
            self.fire_edge(e, now);
        }
    }

    fn maybe_fire_edge_async(&mut self, e: usize, now: f64) {
        let SyncPolicy::AsyncAge { max_staleness } = self.sim.policy else {
            return;
        };
        let edge = &self.edges[e];
        if edge.fired || !edge.arrived.iter().any(|&a| a) {
            return;
        }
        // A too-stale absent slot blocks the firing — unless it is down
        // for the round and cannot catch up: the staleness cap is waived
        // for slots that will re-materialize anyway.
        let blocked = (0..edge.arrived.len())
            .any(|j| !edge.arrived[j] && !edge.absent[j] && edge.age[j] >= max_staleness);
        if !blocked {
            self.fire_edge(e, now);
        }
    }

    /// Fires the edge's current round with whoever has arrived: runs the
    /// strategy's (staleness-aware) edge hook against the cohort, then
    /// either submits to the cloud (boundary rounds) or finishes the round
    /// locally. An empty round (every slot absent) skips the hook and
    /// relays the edge's carried state.
    fn fire_edge(&mut self, e: usize, now: f64) {
        let k = self.edges[e].round;
        self.edges[e].fired = true;
        let c = self.edges[e].arrived.len();
        let any_arrived = self.edges[e].arrived.iter().any(|&a| a);
        let staleness: Vec<usize> = match self.sim.policy {
            SyncPolicy::FullSync => vec![0; c],
            // Slots exist for one round, so deadline staleness is binary:
            // arrived in time (0) or waived and re-materialized (1).
            SyncPolicy::Deadline { .. } => (0..c)
                .map(|j| usize::from(!self.edges[e].arrived[j]))
                .collect(),
            SyncPolicy::AsyncAge { .. } => self.edges[e].age.clone(),
        };
        let d = self.edges[e].sampler.compute_ms(&self.sim.env.edge_device);
        self.edges[e].busy_ms += d;
        if any_arrived {
            let mut view = self.fl.edge_view(e);
            self.strategy.edge_aggregate_stale(k, &mut view, &staleness);
        }
        let (gamma, cos) = (self.fl.edges[e].gamma_edge, self.fl.edges[e].cos_theta);
        self.stage_gamma(k, e, gamma, cos);
        if let SyncPolicy::AsyncAge { .. } = self.sim.policy {
            for j in 0..c {
                if self.edges[e].arrived[j] {
                    self.edges[e].age[j] = 0;
                } else {
                    self.edges[e].age[j] += 1;
                }
            }
        }
        if k.is_multiple_of(self.submit_period) {
            // Boundary round: submit to the cloud (where any middle tiers
            // are co-hosted) and wait for its reply before evaluating or
            // advancing.
            let flows = self.edges.len();
            let edge = &mut self.edges[e];
            let mut du = edge.sampler.shared_transfer_ms(
                &self.sim.env.edge_cloud_link,
                self.sim.upload_bytes,
                flows,
            );
            let mut dup = None;
            if let Some(lf) = self.sim.faults.link {
                let fs = edge
                    .fsampler
                    .as_mut()
                    .expect("link faults imply an active edge fault stream");
                let (pen, lag) = link_transfer(&lf, fs, &mut edge.faults);
                du += pen;
                dup = lag;
            }
            edge.busy_ms += du;
            self.queue.push(
                now + d + du,
                ActorId::Edge(e),
                VEv::CloudSubmit {
                    edge: e,
                    boundary: k / self.submit_period,
                },
            );
            if let Some(lag) = dup {
                self.queue.push(
                    now + d + du + lag,
                    ActorId::Cloud,
                    VEv::DupArrival { to: ActorId::Cloud },
                );
            }
        } else {
            self.finish_edge_round(e, now + d);
        }
    }

    /// Post-aggregation bookkeeping of edge `e`'s round `k`: stage the
    /// evaluation snapshot if this is an evaluation round, then start the
    /// next round or retire the edge.
    fn finish_edge_round(&mut self, e: usize, now: f64) {
        let k = self.edges[e].round;
        if self.is_eval_round(k) {
            let x = self.fl.edges[e].x_plus.clone();
            self.stage_eval(k, e, x, now);
        }
        if k < self.rounds {
            self.queue
                .push(now, ActorId::Edge(e), VEv::StartRound { edge: e });
        } else {
            self.edges[e].done = true;
            self.edges_done += 1;
        }
    }

    fn on_cloud_submit(&mut self, e: usize, p: usize, now: f64) {
        match self.sim.policy {
            SyncPolicy::FullSync => {
                // Edges never die in the virtual engine (cohorts
                // re-materialize), so the full barrier always completes.
                self.cloud_arrived[e] = true;
                self.cloud_last_boundary[e] = p;
                if self.cloud_arrived.iter().all(|&a| a) {
                    self.fire_cloud(now);
                }
            }
            SyncPolicy::Deadline { timeout_ms, .. } => {
                if p < self.cloud_boundary {
                    // Late: the boundary fired without this edge (its
                    // carried state was merged at staleness ≥ 1). The
                    // continuation is a release without a pull — the edge
                    // keeps its own state and rolls straight on.
                    self.cloud_last_boundary[e] = p;
                    self.finish_edge_round(e, now);
                } else {
                    let first = !self.cloud_arrived.iter().any(|&a| a);
                    self.cloud_arrived[e] = true;
                    self.cloud_last_boundary[e] = p;
                    if first {
                        let boundary = self.cloud_boundary;
                        self.queue.push(
                            now + timeout_ms,
                            ActorId::Cloud,
                            VEv::CloudTimeout { boundary },
                        );
                    }
                    self.maybe_fire_cloud_deadline(now);
                }
            }
            SyncPolicy::AsyncAge { .. } => {
                self.cloud_arrived[e] = true;
                self.cloud_age[e] = 0;
                self.cloud_last_boundary[e] = p;
                self.maybe_fire_cloud_async(now);
            }
        }
    }

    fn on_cloud_timeout(&mut self, boundary: usize, now: f64) {
        if self.cloud_boundary != boundary {
            return; // stale timer for an already-fired boundary
        }
        self.cloud_timed_out = true;
        self.maybe_fire_cloud_deadline(now);
    }

    fn maybe_fire_cloud_deadline(&mut self, now: f64) {
        let SyncPolicy::Deadline { quorum, .. } = self.sim.policy else {
            return;
        };
        let have = self.cloud_arrived.iter().filter(|&&a| a).count();
        if have == 0 {
            return;
        }
        let total = self.cloud_arrived.len();
        if have == total || (self.cloud_timed_out && have >= quorum_count(quorum, total)) {
            self.fire_cloud(now);
        }
    }

    fn maybe_fire_cloud_async(&mut self, now: f64) {
        let SyncPolicy::AsyncAge { max_staleness } = self.sim.policy else {
            return;
        };
        if !self.cloud_arrived.iter().any(|&a| a) {
            return;
        }
        // A too-stale absent edge blocks the firing — unless it has
        // retired (finished its final round) and will never submit again.
        let blocked = (0..self.cloud_arrived.len()).any(|l| {
            !self.cloud_arrived[l] && self.cloud_age[l] >= max_staleness && !self.edges[l].done
        });
        if !blocked {
            self.fire_cloud(now);
        }
    }

    /// Fires the cloud boundary with whichever edges have submitted. For
    /// partial boundaries the absent edges' state is snapshotted around
    /// the hooks, so the global update reads their carried-over
    /// submissions but does not overwrite state they never received.
    /// Middle tiers (co-hosted here) fire bottom-up at their own interval
    /// boundaries with per-subtree staleness slices, then the root at its
    /// `π` boundary — mirroring the classic engine's `fire_cloud`.
    fn fire_cloud(&mut self, now: f64) {
        let l_count = self.cloud_arrived.len();
        let participants: Vec<usize> = (0..l_count).filter(|&l| self.cloud_arrived[l]).collect();
        let (p, staleness): (usize, Vec<usize>) = match self.sim.policy {
            SyncPolicy::FullSync => (self.cloud_boundary, vec![0; l_count]),
            SyncPolicy::Deadline { .. } => {
                let r = self.cloud_boundary;
                let stale = (0..l_count)
                    .map(|l| r.saturating_sub(self.cloud_last_boundary[l]))
                    .collect();
                (r, stale)
            }
            SyncPolicy::AsyncAge { .. } => (self.cloud_firings + 1, self.cloud_age.clone()),
        };
        let d = self.cloud_sampler.compute_ms(&self.sim.env.cloud_device);
        self.cloud_busy_ms += d;
        let saved: Vec<(usize, EdgeState, Vec<WorkerState>)> = (0..l_count)
            .filter(|l| !participants.contains(l))
            .map(|l| {
                (
                    l,
                    self.fl.edges[l].clone(),
                    self.fl.workers[self.fl.hierarchy.edge_workers(l)].to_vec(),
                )
            })
            .collect();
        // The edge round this submission closes; `p` counts submission
        // boundaries, which fall every `submit_period` edge rounds.
        let k = p * self.submit_period;
        if let Some(tree) = self.cohort_tree.clone() {
            for td in tree.middle_depths().rev() {
                // Identity tiers fire nothing and record nothing — a
                // pass-through tree must match its collapse bitwise,
                // γ traces included.
                if tree.levels()[td].aggregation == TierAggregation::Identity {
                    continue;
                }
                let period = tree.sync_rounds(td);
                if k.is_multiple_of(period) {
                    let round = k / period;
                    let span = tree.edges_per_node(td);
                    for node in 0..tree.nodes_at(td) {
                        self.strategy.tier_aggregate_stale(
                            TierScope::Middle {
                                depth: td,
                                node,
                                state: &mut self.fl,
                            },
                            round,
                            &staleness[node * span..(node + 1) * span],
                        );
                    }
                    let tier = &self.fl.middle[td - 1];
                    let mean = tier.iter().map(|s| s.gamma_edge).sum::<f32>() / tier.len() as f32;
                    self.tier_gamma[td - 1].push((round, mean));
                }
            }
        }
        // The root fires only on its own boundary — every submission on
        // three-tier runs, every `π / submit_period`-th on N-tier runs.
        if k.is_multiple_of(self.cfg.pi) {
            self.strategy
                .cloud_aggregate_stale(k / self.cfg.pi, &mut self.fl, &staleness);
        }
        for (l, es, ws) in saved {
            self.fl.edges[l] = es;
            let range = self.fl.hierarchy.edge_workers(l);
            self.fl.workers[range].clone_from_slice(&ws);
        }
        let flows = self.edges.len();
        for &l in &participants {
            let edge = &mut self.edges[l];
            let mut dd = edge.sampler.shared_transfer_ms(
                &self.sim.env.edge_cloud_link,
                self.sim.download_bytes,
                flows,
            );
            let mut dup = None;
            if let Some(lf) = self.sim.faults.link {
                let fs = edge
                    .fsampler
                    .as_mut()
                    .expect("link faults imply an active edge fault stream");
                let (pen, lag) = link_transfer(&lf, fs, &mut edge.faults);
                dd += pen;
                dup = lag;
            }
            edge.busy_ms += dd;
            self.queue
                .push(now + d + dd, ActorId::Edge(l), VEv::CloudReply { edge: l });
            if let Some(lag) = dup {
                let to = ActorId::Edge(l);
                self.queue
                    .push(now + d + dd + lag, to, VEv::DupArrival { to });
            }
        }
        self.cloud_firings += 1;
        self.cloud_arrived.fill(false);
        self.cloud_timed_out = false;
        match self.sim.policy {
            SyncPolicy::FullSync | SyncPolicy::Deadline { .. } => self.cloud_boundary += 1,
            SyncPolicy::AsyncAge { .. } => {
                for (l, a) in self.cloud_age.iter_mut().enumerate() {
                    if participants.contains(&l) {
                        *a = 0;
                    } else {
                        *a += 1;
                    }
                }
            }
        }
    }

    /// Stages edge `e`'s round-`k` post-aggregation model; fires the
    /// evaluation once all edges have contributed, on the same
    /// population-weighted edge average as the tick-driven engine. Every
    /// edge fires every round exactly once under every policy (stragglers
    /// are waived, never re-fired), so the stage always completes.
    fn stage_eval(&mut self, k: usize, e: usize, x: Vector, at_ms: f64) {
        let l = self.edges.len();
        let (xs, last_ms) = self
            .eval_stage
            .entry(k)
            .or_insert_with(|| (vec![None; l], 0.0));
        xs[e] = Some(x);
        *last_ms = last_ms.max(at_ms);
        let complete = xs.iter().all(Option::is_some);
        if !complete {
            return;
        }
        let (xs, last_ms) = self.eval_stage.remove(&k).expect("stage just checked");
        let params = weighted_edge_average(
            &self.fl.weights,
            xs.iter().map(|x| x.as_ref().expect("stage complete")),
        );
        let (test, train) = evaluate_on_replicas(
            &mut self.eval_models,
            self.test_data,
            &self.train_probe,
            &params,
        );
        self.evals.push(EvalRec {
            iter: k * self.cfg.tau,
            at_ms: last_ms,
            test,
            train,
        });
    }

    fn stage_gamma(&mut self, k: usize, e: usize, gamma: f32, cos: f32) {
        let l = self.edges.len();
        let slot = self.gamma_stage.entry(k).or_insert_with(|| vec![None; l]);
        slot[e] = Some((gamma, cos));
        if !slot.iter().all(Option::is_some) {
            return;
        }
        let slot = self.gamma_stage.remove(&k).expect("stage just checked");
        let fired: Vec<(f32, f32)> = slot.into_iter().flatten().collect();
        let n = fired.len() as f32;
        self.gamma_trace
            .push((k, fired.iter().map(|p| p.0).sum::<f32>() / n));
        self.cos_trace
            .push((k, fired.iter().map(|p| p.1).sum::<f32>() / n));
    }

    fn run(&mut self) {
        for e in 0..self.edges.len() {
            self.queue
                .push(0.0, ActorId::Edge(e), VEv::StartRound { edge: e });
        }
        while let Some((time, _actor, payload)) = self.queue.pop() {
            self.now = time;
            self.events += 1;
            match payload {
                VEv::StartRound { edge } => self.on_start_round(edge, time),
                VEv::Arrive { slot, round } => {
                    if !self.slot_event_stale(slot, round) {
                        self.schedule_step(slot, time);
                    }
                }
                VEv::StepDone { slot, round } => self.on_step_done(slot, round, time),
                VEv::Upload { slot, round } => self.on_upload(slot, round, time),
                VEv::EdgeTimeout { edge, round } => self.on_edge_timeout(edge, round, time),
                VEv::CloudSubmit { edge, boundary } => self.on_cloud_submit(edge, boundary, time),
                VEv::CloudTimeout { boundary } => self.on_cloud_timeout(boundary, time),
                VEv::CloudReply { edge } => self.finish_edge_round(edge, time),
                VEv::DupArrival { to } => {
                    let counters = match to {
                        ActorId::Worker(_) => &mut self.worker_faults,
                        ActorId::Edge(e) => &mut self.edges[e].faults,
                        ActorId::Cloud => &mut self.cloud_faults,
                    };
                    counters.duplicates_received += 1;
                }
            }
        }
        assert_eq!(
            self.edges_done,
            self.edges.len(),
            "event queue drained before every edge finished its rounds"
        );
    }

    fn finish(mut self) -> SimResult {
        self.evals.sort_by_key(|r| r.iter);
        let mut curve = ConvergenceCurve::new();
        let mut timed = TimedCurve::new();
        for r in &self.evals {
            curve.push(EvalPoint {
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
            timed.push(TimedPoint {
                seconds: r.at_ms / 1000.0,
                iteration: r.iter,
                train_loss: r.train.loss,
                test_loss: r.test.loss,
                test_accuracy: r.test.accuracy,
            });
        }
        let end_ms = self.now;
        let util = |busy_ms: f64| {
            if end_ms > 0.0 {
                (busy_ms / end_ms).min(1.0)
            } else {
                0.0
            }
        };
        // O(edges) actor accounting: the worker tier is virtual, so all
        // sampled slots report as one aggregate "workers" entry.
        let mut utilization = Vec::with_capacity(self.edges.len() + 2);
        let mut faults = Vec::with_capacity(self.edges.len() + 2);
        utilization.push(ActorUtilization {
            actor: "workers".to_string(),
            busy_seconds: self.workers_busy_ms / 1000.0,
            utilization: util(self.workers_busy_ms),
        });
        faults.push(ActorFaults {
            actor: "workers".to_string(),
            counters: self.worker_faults,
        });
        for (l, e) in self.edges.iter().enumerate() {
            utilization.push(ActorUtilization {
                actor: format!("edge-{l}"),
                busy_seconds: e.busy_ms / 1000.0,
                utilization: util(e.busy_ms),
            });
            faults.push(ActorFaults {
                actor: format!("edge-{l}"),
                counters: e.faults,
            });
        }
        utilization.push(ActorUtilization {
            actor: "cloud".to_string(),
            busy_seconds: self.cloud_busy_ms / 1000.0,
            utilization: util(self.cloud_busy_ms),
        });
        faults.push(ActorFaults {
            actor: "cloud".to_string(),
            counters: self.cloud_faults,
        });
        let adversaries: Vec<ActorAdversaries> = self
            .cfg
            .adversary
            .byzantine
            .iter()
            .zip(self.adversaries.iter())
            .map(|(b, c)| ActorAdversaries {
                actor: format!("worker-{}", b.worker),
                counters: *c,
            })
            .collect();
        SimResult {
            algorithm: self.strategy.name().to_string(),
            policy: self.sim.policy.label(),
            curve,
            timed_curve: timed,
            gamma_trace: self.gamma_trace,
            cos_trace: self.cos_trace,
            tier_gamma: self.tier_gamma,
            final_params: virtual_global_params(&self.fl),
            simulated_seconds: end_ms / 1000.0,
            utilization,
            faults,
            adversaries,
            events: self.events,
            topology: hieradmo_metrics::TopologyCounters::default(),
        }
    }
}

/// Runs `strategy` over a virtual population under the co-simulation: the
/// event-driven counterpart of
/// [`hieradmo_core::population::run_virtual`] and
/// [`hieradmo_core::population::run_virtual_tiered`], with the same
/// sampled model trajectory bit for bit under [`SyncPolicy::FullSync`]
/// (gated by `tests/sampling_equivalence.rs`) and an honest virtual-time
/// axis on top.
///
/// Under full participation this materializes the population and
/// delegates to [`crate::simulate`] — `sim.env.worker_devices` must then
/// cover the whole materialized population. Under sampling, device
/// profiles act as a *pool*: registered worker `g` computes on profile
/// `g mod pool size`, so a small profile set describes any population.
///
/// Per round and edge, only the sampled cohort exists: the event queue
/// holds `O(cohort + edges)` events, registered-but-idle workers cost
/// nothing, and the actor tallies in the result are `O(edges)` (workers
/// report as one aggregate entry; `adversaries` carries one entry per
/// plan entry instead of one per registered worker).
///
/// Sampled runs compose with every [`SyncPolicy`] (stragglers are waived
/// per round and rejoin at the next materialization — see the module
/// docs), with N-tier trees (`sim.tiers`: middle tiers fire at the cloud
/// actor through `Strategy::tier_aggregate_stale` with per-subtree
/// staleness), with crash/spike fault plans (absence decided at
/// materialization from per-`(worker, round)` streams), with link faults
/// (the retry/duplicate protocol runs per transfer, drawing from the
/// occupying worker's round stream on the leaf hops and from per-edge
/// streams on the cloud hops — see the module docs), and with dropout
/// ([`cohort_dropout_mask`]).
///
/// Remaining sampled-path restrictions (validated):
/// [`Architecture::ThreeTier`] only, a non-empty device pool, no legacy
/// `edges`/`workers_per_edge` fields, and N-tier trees need a uniform
/// cohort size that matches the population's registered shape.
///
/// # Errors
///
/// [`SimError`] on any inconsistency above, plus everything the
/// population/sampling validation in
/// [`hieradmo_core::population::run_virtual`] rejects.
pub fn simulate_virtual<M, S>(
    strategy: &S,
    model: &M,
    population: &WorkerPopulation,
    shards: &[Dataset],
    test_data: &Dataset,
    cfg: &RunConfig,
    sim: &SimConfig,
) -> Result<SimResult, SimError>
where
    M: Model + Clone + Send,
    S: Strategy + ?Sized,
{
    cfg.validate()
        .map_err(|m| SimError::Run(RunError::BadConfig(m)))?;
    population
        .validate_shards(shards)
        .map_err(|m| SimError::Run(RunError::Data(m)))?;
    if let Some(b) = cfg
        .adversary
        .byzantine
        .iter()
        .find(|b| b.worker as u64 >= population.total_workers())
    {
        return Err(SimError::Adversary(format!(
            "attack targets worker {} but the population registers only {} workers",
            b.worker,
            population.total_workers()
        )));
    }
    if cfg.sampling.is_full() {
        let hierarchy = population
            .materialize_hierarchy()
            .map_err(|m| SimError::Run(RunError::Data(m)))?;
        let worker_data = population.materialize_shards(shards);
        return crate::simulate(
            strategy,
            model,
            &hierarchy,
            &worker_data,
            test_data,
            cfg,
            sim,
        );
    }
    if cfg.edges.is_some() || cfg.workers_per_edge.is_some() {
        return Err(SimError::Run(RunError::BadConfig(
            "legacy edges/workers_per_edge fields are not supported with a \
             virtual population (the population defines the topology)"
                .into(),
        )));
    }
    if sim.architecture != Architecture::ThreeTier {
        return Err(SimError::Net(
            "client sampling requires Architecture::ThreeTier".into(),
        ));
    }
    if sim.env.worker_devices.is_empty() {
        return Err(SimError::Net(
            "the device-profile pool must not be empty".into(),
        ));
    }
    sim.faults
        .validate_for_population(population.total_workers())
        .map_err(SimError::Fault)?;
    if let Some(tree) = &sim.tiers {
        if tree.num_edges() != population.num_edges() {
            return Err(SimError::Run(RunError::BadConfig(format!(
                "tier tree spans {} edges, the population registers {}",
                tree.num_edges(),
                population.num_edges()
            ))));
        }
        let leaf = tree.levels().last().expect("trees have levels").fanout as u64;
        if let Some(e) =
            (0..population.num_edges()).find(|&e| population.workers_in_edge(e) != leaf)
        {
            return Err(SimError::Run(RunError::BadConfig(format!(
                "tier tree registers {leaf} workers per edge, edge {e} \
                 registers {}",
                population.workers_in_edge(e)
            ))));
        }
        if cfg.tau != tree.tau() || cfg.pi != tree.pi_total() {
            return Err(SimError::Run(RunError::BadConfig(format!(
                "config (tau = {}, pi = {}) disagrees with the tier tree \
                 (tau = {}, pi_total = {})",
                cfg.tau,
                cfg.pi,
                tree.tau(),
                tree.pi_total()
            ))));
        }
    }

    let cohort = population
        .cohort_sizes(&cfg.sampling)
        .map_err(|m| SimError::Run(RunError::BadConfig(m)))?;
    if sim.tiers.is_some() && cohort.windows(2).any(|w| w[0] != w[1]) {
        return Err(SimError::Run(RunError::BadConfig(
            "sampled tier trees need one uniform cohort size (the sampled \
             sub-tree must stay balanced); use ClientSampling::PerEdge"
                .into(),
        )));
    }
    sim.validate(cohort.iter().copied().min())
        .map_err(SimError::Policy)?;
    let hierarchy = Hierarchy::new(cohort.clone());
    strategy
        .check_topology(&hierarchy)
        .map_err(|m| SimError::Run(RunError::Topology(m)))?;

    let shard_sizes: Vec<u64> = shards.iter().map(|d| d.len() as u64).collect();
    let edge_totals = population.edge_data_samples(&shard_sizes);
    let total_slots = hierarchy.num_workers();
    let l_count = hierarchy.num_edges();
    let weights = Weights::from_cohort(&hierarchy, &vec![1u64; total_slots], edge_totals);
    let x0 = model.params();
    let mut fl = FlState::new(hierarchy.clone(), weights, &x0);
    fl.aggregator = cfg.aggregator;
    // The engine runs the *sampled* sub-tree: the registered tree with its
    // leaf fanout swapped for the (uniform) cohort size. All non-leaf
    // levels — and with them every middle boundary — are unchanged.
    let cohort_tree = sim.tiers.as_ref().map(|tree| {
        let mut levels = tree.levels().to_vec();
        levels.last_mut().expect("trees have levels").fanout = cohort[0];
        TierTree::new(levels).expect("cohort sub-tree of a validated tree is valid")
    });
    if let Some(tree) = &cohort_tree {
        fl.attach_tree(tree.clone());
    }
    strategy.init(&mut fl);

    // Edges submit cloud-wards at every boundary where some tier above
    // them mutates state; identity middles are free, so a pure
    // pass-through tree keeps the three-tier submission cadence (and
    // every delay stream) untouched.
    let submit_period = match &sim.tiers {
        Some(tree) => tree
            .middle_depths()
            .filter(|&d| tree.levels()[d].aggregation != TierAggregation::Identity)
            .map(|d| tree.sync_rounds(d))
            .min()
            .unwrap_or(cfg.pi),
        None => cfg.pi,
    };
    let sampler = match &sim.tiers {
        Some(tree) => CohortSampler::for_tree(cfg.seed, tree),
        None => CohortSampler::new(cfg.seed),
    };

    // Placeholder slot contexts; every field is rebuilt at each round's
    // materialization. Edge/cloud delay streams are drawn from dedicated
    // salted stream ids so they never depend on the population size.
    let slots: Vec<SlotCtx> = (0..total_slots)
        .map(|slot| SlotCtx {
            gid: 0,
            edge: (0..l_count)
                .find(|&e| hierarchy.edge_workers(e).contains(&slot))
                .expect("every slot belongs to an edge"),
            shard: 0,
            steps: 0,
            batcher: Batcher::new(1, 1, 0),
            delays: DelaySampler::from_stream(sim.net_seed, 0),
            fsampler: None,
            dropped: vec![false; cfg.tau],
            attack: None,
        })
        .collect();
    let edges: Vec<EdgeSim> = (0..l_count)
        .map(|e| {
            let c = hierarchy.workers_in_edge(e);
            EdgeSim {
                round: 0,
                fired: false,
                arrived: vec![false; c],
                absent: vec![false; c],
                age: vec![0; c],
                timed_out: false,
                done: false,
                busy_ms: 0.0,
                sampler: DelaySampler::from_stream(sim.net_seed ^ SALT_EDGE_STREAM, e as u64),
                fsampler: sim.faults.link.is_some().then(|| {
                    FaultSampler::from_stream(sim.net_seed ^ SALT_EDGE_FAULT_STREAM, e as u64)
                }),
                faults: FaultCounters::default(),
            }
        })
        .collect();

    let threads = cfg.resolved_threads();
    let tier_gamma = vec![Vec::new(); fl.middle.len()];
    let mut engine = VEngine {
        strategy,
        cfg,
        sim,
        population,
        shards,
        shard_sizes,
        sampler,
        fl,
        slots,
        edges,
        cohort_tree,
        submit_period,
        faults_on: !sim.faults.is_empty(),
        cloud_arrived: vec![false; l_count],
        cloud_boundary: 1,
        cloud_firings: 0,
        cloud_last_boundary: vec![0; l_count],
        cloud_age: vec![0; l_count],
        cloud_timed_out: false,
        cloud_busy_ms: 0.0,
        cloud_sampler: DelaySampler::from_stream(sim.net_seed ^ SALT_CLOUD_STREAM, 0),
        workers_busy_ms: 0.0,
        worker_faults: FaultCounters::default(),
        cloud_faults: FaultCounters::default(),
        permanent_counted: vec![false; sim.faults.permanent.len()],
        queue: EventQueue::new(),
        eval_stage: BTreeMap::new(),
        gamma_stage: BTreeMap::new(),
        gamma_trace: Vec::new(),
        cos_trace: Vec::new(),
        tier_gamma,
        evals: Vec::new(),
        step_model: model.clone(),
        eval_models: (0..threads).map(|_| model.clone()).collect(),
        test_data,
        train_probe: build_train_probe(shards, cfg.train_eval_cap),
        batch: Vec::new(),
        adversaries: vec![AdversaryCounters::default(); cfg.adversary.byzantine.len()],
        rounds: cfg.total_iters / cfg.tau,
        edges_done: 0,
        events: 0,
        now: 0.0,
    };
    engine.run();
    Ok(engine.finish())
}

/// Stream salts keeping the edge/cloud aggregator delay streams disjoint
/// from every per-(worker, round) stream whatever the population size.
const SALT_EDGE_STREAM: u64 = 0x6564_6765_5f76_706f;
const SALT_CLOUD_STREAM: u64 = 0x636c_6f75_645f_7670;
/// Fault-stream salt keeping the edges' retry/duplicate draws disjoint
/// from their delay streams and from every per-(worker, round) fault
/// stream.
const SALT_EDGE_FAULT_STREAM: u64 = 0x6661_756c_745f_7670;
