//! The deterministic discrete-event queue.
//!
//! Events are ordered by `(virtual time, actor, sequence number)`: ties in
//! virtual time (common — zero-latency hops and identical delay draws both
//! produce them) break first by actor identity and then by insertion order,
//! so the processing order is a pure function of the pushed events and
//! never of hash seeds, thread interleaving or float quirks (`f64` is
//! compared with [`f64::total_cmp`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identity of a simulated actor, used as the event tie-breaker.
///
/// The derived order (workers by flat index, then edges, then the cloud)
/// fixes the processing order of same-time events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActorId {
    /// A worker, by flat index.
    Worker(usize),
    /// An edge server, by index.
    Edge(usize),
    /// The cloud server.
    Cloud,
}

struct Entry<P> {
    time_ms: f64,
    actor: ActorId,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<P> Eq for Entry<P> {}

impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and the queue pops the
        // earliest event first.
        other
            .time_ms
            .total_cmp(&self.time_ms)
            .then_with(|| other.actor.cmp(&self.actor))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<P> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` for `actor` at absolute virtual time `time_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` is not a finite, non-negative number — a NaN
    /// timestamp would silently scramble the queue order.
    pub fn push(&mut self, time_ms: f64, actor: ActorId, payload: P) {
        assert!(
            time_ms.is_finite() && time_ms >= 0.0,
            "event time must be finite and non-negative, got {time_ms}"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time_ms,
            actor,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event as `(time_ms, actor,
    /// payload)`, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(f64, ActorId, P)> {
        self.heap.pop().map(|e| (e.time_ms, e.actor, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, ActorId::Cloud, "c");
        q.push(1.0, ActorId::Worker(0), "a");
        q.push(2.0, ActorId::Edge(1), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_actor_then_insertion() {
        let mut q = EventQueue::new();
        q.push(5.0, ActorId::Cloud, "cloud");
        q.push(5.0, ActorId::Edge(0), "edge0-late");
        q.push(5.0, ActorId::Worker(3), "w3");
        q.push(5.0, ActorId::Worker(1), "w1");
        q.push(5.0, ActorId::Edge(0), "edge0-later");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["w1", "w3", "edge0-late", "edge0-later", "cloud"]);
    }

    #[test]
    fn identical_push_sequences_pop_identically() {
        let pushes = [
            (2.0, ActorId::Edge(0)),
            (2.0, ActorId::Worker(5)),
            (0.5, ActorId::Cloud),
            (2.0, ActorId::Worker(5)),
        ];
        let drain = |q: &mut EventQueue<usize>| -> Vec<(f64, ActorId, usize)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, &(t, actor)) in pushes.iter().enumerate() {
            a.push(t, actor, i);
            b.push(t, actor, i);
        }
        assert_eq!(drain(&mut a), drain(&mut b));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, ActorId::Worker(0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ActorId::Cloud, ());
    }
}
