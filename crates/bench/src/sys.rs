//! Process-level measurements shared by the benchmark binaries.

/// Peak resident set size (high-water mark) of the current process, in
/// bytes.
///
/// Reads `VmHWM` from `/proc/self/status`, so it reflects the maximum
/// RSS over the whole process lifetime — exactly what a scale benchmark
/// wants to prove memory stayed sub-linear in the registered population.
/// Returns `None` off Linux or if the field cannot be parsed, so callers
/// can report "unavailable" instead of a bogus number.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM:    1234 kB` line out of a `/proc/<pid>/status` dump.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t    2048 kB\nVmRSS:\t 1 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_or_malformed_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tbench\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t12 MB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_reading_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(rss > 0);
    }
}
