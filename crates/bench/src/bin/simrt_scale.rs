//! **Million-worker scale benchmark**: runs the event-driven engine over
//! a virtual [`WorkerPopulation`] with per-round client sampling and
//! records that cost scales with the *sampled cohort*, not the
//! registered population. Writes `BENCH_scale.json`.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin simrt_scale -- \
//!     [--population 1000000] [--sample 2048] [--edges 16] \
//!     [--rounds 4] [--tiers 3] [--seed 7] [--out BENCH_scale.json]
//! ```
//!
//! `--tiers N` (default 3, the classic worker/edge/cloud arrangement)
//! inserts `N - 3` fanout-2 averaging tiers between the edges and the
//! root, so CI records a depth-4 sampled datapoint: deep trees add
//! middle-tier aggregation work but no per-registered-worker cost.
//!
//! The registered population never materializes: workers exist as
//! per-edge counts plus shard descriptors, each round samples
//! `--sample / --edges` clients per edge without replacement, and only
//! those cohort slots get state, batch streams and events. The two
//! scale proofs the JSON records:
//!
//! - **peak RSS** (`VmHWM`, via [`hieradmo_bench::peak_rss_bytes`]) stays
//!   far below anything proportional to a million per-worker model
//!   vectors;
//! - **events** is O(sampled · rounds) — the registered population
//!   appears in no queue.
//!
//! The run is deterministic for any thread count (the same trajectory
//! CI asserts bitwise at 1 and 4 threads in
//! `tests/sampling_equivalence.rs`), so recorded numbers are
//! reproducible modulo wall-clock noise.

use std::time::Instant;

use hieradmo_bench::cli::Cli;
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::{ClientSampling, RunConfig, WorkerPopulation};
use hieradmo_data::partition::x_class_partition;
use hieradmo_data::synthetic::SyntheticDataset;
use hieradmo_models::{zoo, Model};
use hieradmo_netsim::payload::payload_bytes;
use hieradmo_netsim::{Architecture, NetworkEnv};
use hieradmo_simrt::{simulate_virtual, SimConfig, SyncPolicy};
use hieradmo_topology::{TierSpec, TierTree};
use serde::Serialize;

/// Algorithm 1 line 9 ships y, x, Σ∇F, Σy per upload.
const UPLOAD_VECTORS: usize = 4;

#[derive(Serialize)]
struct ScaleReport {
    bench: &'static str,
    target: String,
    registered_workers: u64,
    sampled_per_round: usize,
    edges: usize,
    tiers: usize,
    rounds: usize,
    tau: usize,
    pi: usize,
    model_dim: usize,
    events: u64,
    events_per_registered_worker: f64,
    simulated_seconds: f64,
    wall_s: f64,
    events_per_sec: f64,
    peak_rss_bytes: Option<u64>,
    peak_rss_bytes_per_registered_worker: Option<f64>,
    final_accuracy: Option<f64>,
}

fn main() {
    let cli = Cli::parse();
    let population: u64 = cli.get_or("population", 1_000_000);
    let sample: usize = cli.get_or("sample", 2048);
    let edges: usize = cli.get_or("edges", 16);
    let rounds: usize = cli.get_or("rounds", 4);
    let tiers: usize = cli.get_or("tiers", 3);
    let seed: u64 = cli.get_or("seed", 7);
    let out_path = cli.get("out").unwrap_or("BENCH_scale.json").to_string();

    assert!(edges > 0, "--edges must be positive");
    assert!(tiers >= 3, "--tiers must be at least 3");
    let middles = tiers - 3;
    assert!(
        edges.is_multiple_of(1 << middles),
        "--edges {edges} must be a multiple of 2^(tiers - 3) = {}",
        1usize << middles
    );
    assert!(
        population.is_multiple_of(edges as u64),
        "--population {population} must divide evenly across --edges {edges}"
    );
    assert!(
        sample.is_multiple_of(edges) && sample > 0,
        "--sample {sample} must be a positive multiple of --edges {edges}"
    );
    let per_edge = population / edges as u64;
    let per_edge_sample = sample / edges;

    // Data shards are the *descriptor* side of the population: a modest
    // pool of partitions that registered workers map onto round-robin,
    // so data memory is O(shards), never O(population).
    let num_shards = 64.min(sample.max(1));
    let tt = SyntheticDataset::mnist_like(512, 128, seed);
    let shards = x_class_partition(&tt.train, num_shards, 4, seed.wrapping_add(2));
    let pop = WorkerPopulation::uniform(edges, per_edge, num_shards)
        .expect("benchmark population shape is valid");

    let model = zoo::logistic_regression(&tt.train, seed.wrapping_add(100));
    let tau = 5;
    // Beyond depth 3, fanout-2 averaging tiers (interval 2) sit between
    // the edges and the root; π is then the tree's whole product.
    let tree = (middles > 0).then(|| {
        let mut levels = vec![TierSpec::new(edges >> middles, 2)];
        levels.extend(vec![TierSpec::new(2, 2); middles]);
        levels.push(TierSpec::new(per_edge as usize, tau));
        TierTree::new(levels).expect("benchmark tier tree shape is valid")
    });
    let pi = tree.as_ref().map_or(2, TierTree::pi_total);
    let total_iters = rounds * tau;
    let cfg = RunConfig {
        tau,
        pi,
        total_iters,
        batch_size: 16,
        eval_every: total_iters,
        seed,
        sampling: ClientSampling::PerEdge {
            count: per_edge_sample,
        },
        ..RunConfig::default()
    };
    let env = NetworkEnv::paper_testbed(8);
    let mut sim = SimConfig::new(
        env,
        Architecture::ThreeTier,
        payload_bytes(model.dim(), UPLOAD_VECTORS),
        seed.wrapping_add(7),
        SyncPolicy::FullSync,
    );
    if let Some(t) = &tree {
        sim = sim.with_tiers(t.clone());
    }
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);

    eprintln!(
        "[simrt_scale] {population} registered workers on {edges} edges \
         ({tiers} tiers), sampling {sample}/round for {rounds} rounds \
         (τ={tau}, π={pi})"
    );
    let t = Instant::now();
    let res = simulate_virtual(&algo, &model, &pop, &shards, &tt.test, &cfg, &sim)
        .expect("scale run failed");
    let wall_s = t.elapsed().as_secs_f64();

    let peak_rss = hieradmo_bench::peak_rss_bytes();
    let report = ScaleReport {
        bench: "simrt_scale",
        target: std::env::consts::ARCH.to_string(),
        registered_workers: population,
        sampled_per_round: sample,
        edges,
        tiers,
        rounds,
        tau,
        pi,
        model_dim: model.dim(),
        events: res.events,
        events_per_registered_worker: res.events as f64 / population as f64,
        simulated_seconds: res.simulated_seconds,
        wall_s,
        events_per_sec: res.events as f64 / wall_s,
        peak_rss_bytes: peak_rss,
        peak_rss_bytes_per_registered_worker: peak_rss.map(|b| b as f64 / population as f64),
        final_accuracy: res.timed_curve.points().last().map(|p| p.test_accuracy),
    };

    // The scale claim in one line: event count must track the cohort,
    // not the registry. 32 events per sampled slot per round is an order
    // of magnitude of slack over the ~8 the engine actually schedules.
    assert!(
        report.events <= (sample * rounds * 32) as u64 + 1024,
        "event count {} is not O(sampled × rounds); scheduling leaked the registered population",
        report.events
    );

    println!("== simrt_scale ==");
    println!(
        "{:>12} registered, {:>6} sampled/round, {} rounds: {} events in {:.2}s wall \
         ({:.0} events/s, {:.2} simulated s)",
        report.registered_workers,
        report.sampled_per_round,
        report.rounds,
        report.events,
        report.wall_s,
        report.events_per_sec,
        report.simulated_seconds,
    );
    match report.peak_rss_bytes {
        Some(b) => println!(
            "{:>12.1} MiB peak RSS ({:.1} bytes per registered worker)",
            b as f64 / (1024.0 * 1024.0),
            report.peak_rss_bytes_per_registered_worker.unwrap_or(0.0),
        ),
        None => println!("peak RSS unavailable on this platform"),
    }

    let json = serde_json::to_string_pretty(&report).expect("report must serialize");
    std::fs::write(&out_path, json + "\n").expect("write BENCH json");
    println!("wrote {out_path}");
}
