//! **Fig. 2(i)–(k)**: adaptive `γℓ` vs exhaustive enumeration of fixed
//! `γℓ` (HierAdMo vs HierAdMo-R), for worker momentum γ ∈ {0.3, 0.6, 0.9}.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin fig2ijk_adaptive -- \
//!     [--scale quick|paper] [--workload cnn-mnist]
//! ```
//!
//! Paper setting: CNN on CIFAR-10, τ=20, π=2, T=5000, 4 workers / 2 edges
//! (use `--workload cnn-cifar --scale paper`). Reproduction target:
//! adaptive γℓ matches the best fixed γℓ within noise, for every γ, even
//! though the best fixed value moves.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Workload};
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;
use serde_json::json;

const EDGES: usize = 2;
const WORKERS: usize = 4;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let workload = Workload::from_name(cli.get("workload").unwrap_or("cnn-mnist"));

    let tt = workload.dataset(scale, 51);
    let model = workload.model(&tt.train, 151);
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, 53);
    let (tau, pi) = (20usize, 2usize); // the figure's fixed periods
    let total = {
        let round = tau * pi;
        workload.total_iters(scale).div_ceil(round) * round
    };
    let base = RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 8).max(1),
        ..RunConfig::default()
    };

    let fixed_gammas = [0.1f32, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    for gamma in [0.3f32, 0.6, 0.9] {
        let mut report = Report::new(
            &format!("fig2ijk_adaptive_gamma{gamma}"),
            vec![
                "gamma_edge".into(),
                "accuracy %".into(),
                "mean adapted γℓ".into(),
            ],
        );
        let mut best_fixed = (0.0f32, 0.0f64);
        for &ge in &fixed_gammas {
            eprintln!("[fig2ijk] γ={gamma} fixed γℓ={ge}");
            let algo = HierAdMo::reduced(base.eta, gamma, ge);
            let out = run_partitioned(&algo, &model, &shards, &tt.test, &base, EDGES);
            if out.accuracy > best_fixed.1 {
                best_fixed = (ge, out.accuracy);
            }
            report.row(
                vec![format!("fixed {ge:.1}"), format!("{:.2}", out.accuracy * 100.0), "-".into()],
                &json!({"gamma": gamma, "gamma_edge": ge, "accuracy": out.accuracy, "mode": "fixed"}),
            );
        }
        for (label, algo) in [
            (
                "adaptive (HierAdMo, Σy)",
                HierAdMo::adaptive(base.eta, gamma),
            ),
            (
                "adaptive (agreement Σv)",
                HierAdMo::adaptive_agreement(base.eta, gamma),
            ),
        ] {
            eprintln!("[fig2ijk] γ={gamma} {label}");
            let out = run_partitioned(&algo, &model, &shards, &tt.test, &base, EDGES);
            let mean_gamma: f32 = if out.gamma_trace.is_empty() {
                0.0
            } else {
                out.gamma_trace.iter().map(|&(_, g)| g).sum::<f32>() / out.gamma_trace.len() as f32
            };
            report.row(
                vec![
                    label.into(),
                    format!("{:.2}", out.accuracy * 100.0),
                    format!("{mean_gamma:.3}"),
                ],
                &json!({
                    "gamma": gamma,
                    "accuracy": out.accuracy,
                    "mode": label,
                    "mean_adapted_gamma": mean_gamma,
                    "best_fixed_gamma": best_fixed.0,
                    "best_fixed_accuracy": best_fixed.1,
                }),
            );
        }
        println!("{}", report.render());
    }
}
