//! **Fig. 2(d)**: cross-silo scale — N = 100 workers (10 edges × 10),
//! CNN on MNIST. The ranking of Table II must persist at scale.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin fig2d_large_n -- \
//!     [--scale quick|paper] [--workload logistic-mnist] [--full]
//! ```
//!
//! By default runs a representative subset of the lineup (one algorithm
//! per category) to keep the 100-worker run affordable; `--full` runs all
//! eleven.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Workload};
use hieradmo_core::algorithms::{table2_lineup, FedAvg, FedNag, HierAdMo, HierFavg};
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;
use serde_json::json;

const EDGES: usize = 10;
const WORKERS: usize = 100;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    // Default to the logistic model: 100 CNN workers at quick scale is
    // minutes; --workload cnn-mnist --scale paper reproduces the figure.
    let workload = Workload::from_name(cli.get("workload").unwrap_or("logistic-mnist"));

    let lineup: Vec<Box<dyn Strategy>> = if cli.get("full").is_some() {
        table2_lineup(0.01, 0.5, 0.5)
    } else {
        vec![
            Box::new(HierAdMo::adaptive(0.01, 0.5)),
            Box::new(HierAdMo::reduced(0.01, 0.5, 0.5)),
            Box::new(HierFavg::new(0.01)),
            Box::new(FedNag::new(0.01, 0.5)),
            Box::new(FedAvg::new(0.01)),
        ]
    };

    let tt = workload.dataset(scale, 21);
    let model = workload.model(&tt.train, 121);
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, 23);
    let (tau, pi) = workload.tau_pi();
    let total = workload.total_iters(scale);
    let cfg = RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 8).max(1),
        ..RunConfig::default()
    };

    let mut report = Report::new(
        "fig2d_large_n",
        vec!["Algorithm".into(), "accuracy % (N=100)".into()],
    );
    for algo in &lineup {
        eprintln!(
            "[fig2d] {} on {} with N={WORKERS}",
            algo.name(),
            workload.name()
        );
        let out = run_partitioned(algo.as_ref(), &model, &shards, &tt.test, &cfg, EDGES);
        report.row(
            vec![
                out.algorithm.clone(),
                format!("{:.2}", out.accuracy * 100.0),
            ],
            &json!({"algorithm": out.algorithm, "accuracy": out.accuracy, "workers": WORKERS}),
        );
    }
    println!("{}", report.render());
}
