//! **Kernel benchmark harness**: old-vs-new compute kernels across the
//! shapes the training hot path actually runs, plus one end-to-end
//! `core::run` timing. Writes `BENCH_kernels.json` — the start of the
//! repo's recorded perf trajectory.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin kernel_bench -- \
//!     [--smoke] [--out BENCH_kernels.json] [--reps 7]
//! ```
//!
//! The "old" kernels are the pre-kernel-layer scalar implementations —
//! single-accumulator serial FMA chains — reimplemented here verbatim so
//! the comparison survives the originals being deleted from the library.
//! The "new" kernels are whatever `hieradmo_tensor::kernels` currently
//! ships, so this binary keeps measuring honest speedups as the kernel
//! layer evolves.
//!
//! `--smoke` runs every kernel pair once at tiny shapes, asserts all
//! outputs are finite and within tolerance of the scalar baseline, and
//! emits the same JSON schema — CI runs this so the bench cannot rot. When
//! a committed baseline report exists (`--baseline`, default
//! `BENCH_kernels.json`), smoke mode additionally re-times the tracked
//! full-size shapes and fails if any kernel's speedup regressed more than
//! 10% against the committed number.
//!
//! Full runs append a dated one-line summary to
//! `results/bench_history.jsonl`, so the perf trajectory is recorded
//! across PRs, with the runtime-dispatched CPU-feature level
//! (`kernels::dispatch_level()`) alongside every entry.

use std::hint::black_box;
use std::time::Instant;

use hieradmo_bench::cli::Cli;
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::{run, RunConfig};
use hieradmo_data::partition::x_class_partition;
use hieradmo_data::synthetic::SyntheticDataset;
use hieradmo_models::zoo;
use hieradmo_tensor::{conv, kernels, Tensor4, Vector};
use hieradmo_topology::Hierarchy;
use serde::Serialize;

// ---------------------------------------------------------------------------
// Old (pre-kernel-layer) scalar baselines
// ---------------------------------------------------------------------------

/// Old `Vector::dot`: one serial accumulator.
fn old_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Old `Vector::axpy`: scalar element loop.
fn old_axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    for (a, b) in y.iter_mut().zip(x) {
        *a += alpha * b;
    }
}

/// Old blocked `matmul_transposed_into`: 32×32 cache blocking with a
/// single `f32` accumulator per output element.
fn old_matmul_bt(a: &[f32], bt: &[f32], out: &mut [f32], n: usize, m: usize, k: usize) {
    const BLOCK: usize = 32;
    for r0 in (0..n).step_by(BLOCK) {
        let r1 = (r0 + BLOCK).min(n);
        for c0 in (0..m).step_by(BLOCK) {
            let c1 = (c0 + BLOCK).min(m);
            for r in r0..r1 {
                let arow = &a[r * k..(r + 1) * k];
                for c in c0..c1 {
                    let brow = &bt[c * k..(c + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    out[r * m + c] = acc;
                }
            }
        }
    }
}

/// Old `conv2d_forward`: the loop-nest with a scalar inner row update.
fn old_conv2d_forward(input: &Tensor4, weight: &Tensor4, bias: &[f32], pad: usize) -> Tensor4 {
    let (n, c_in, h, w) = input.shape();
    let (c_out, _, kh, kw) = weight.shape();
    let oh = h + 2 * pad - kh + 1;
    let ow = w + 2 * pad - kw + 1;
    let mut out = Tensor4::zeros(n, c_out, oh, ow);
    for b in 0..n {
        for (oc, &bias_v) in bias.iter().enumerate() {
            out.plane_mut(b, oc).iter_mut().for_each(|v| *v = bias_v);
            for ic in 0..c_in {
                let in_plane = input.plane(b, ic).to_vec();
                let w_plane = weight.plane(oc, ic).to_vec();
                let out_plane = out.plane_mut(b, oc);
                for ky in 0..kh {
                    for oy in 0..oh {
                        let iy = oy + ky;
                        if iy < pad || iy - pad >= h {
                            continue;
                        }
                        let in_row = &in_plane[(iy - pad) * w..(iy - pad) * w + w];
                        let out_row = &mut out_plane[oy * ow..oy * ow + ow];
                        for kx in 0..kw {
                            let wv = w_plane[ky * kw + kx];
                            let ox_start = pad.saturating_sub(kx);
                            let ox_end = (w + pad).saturating_sub(kx).min(ow);
                            if ox_start >= ox_end {
                                continue;
                            }
                            let ix_start = ox_start + kx - pad;
                            let len = ox_end - ox_start;
                            for (o, &i) in out_row[ox_start..ox_end]
                                .iter_mut()
                                .zip(&in_row[ix_start..ix_start + len])
                            {
                                *o += wv * i;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Old `Vector::weighted_average`: scalar f64 accumulation.
fn old_weighted_average(items: &[(f64, &Vector)]) -> Vector {
    let mut acc = vec![0.0f64; items[0].1.len()];
    let mut total = 0.0f64;
    for (w, v) in items {
        for (a, &b) in acc.iter_mut().zip(v.as_slice()) {
            *a += w * f64::from(b);
        }
        total += w;
    }
    acc.into_iter().map(|a| (a / total) as f32).collect()
}

/// Old aggregation + momentum composition (Algorithm 2 lines 12–13 before
/// fusion): finalize the mean from the f64 accumulator, then
/// clone / subtract / axpy for the look-ahead update — three extra passes
/// and two temporaries per aggregation.
fn old_finalize_momentum(
    acc: &[f64],
    total: f64,
    gamma: f32,
    y_old: &[f32],
) -> (Vec<f32>, Vec<f32>) {
    let mean: Vec<f32> = acc.iter().map(|&a| (a / total) as f32).collect();
    let mut delta = mean.clone();
    kernels::axpy(&mut delta, -1.0, y_old);
    let mut looked = mean.clone();
    kernels::axpy(&mut looked, gamma, &delta);
    (mean, looked)
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Minimum-of-`reps` wall time of `f`, in nanoseconds.
fn time_ns<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

#[derive(Serialize)]
struct KernelRow {
    name: String,
    shape: String,
    baseline_ns: f64,
    kernel_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EndToEnd {
    scenario: String,
    total_iters: usize,
    wall_s: f64,
    final_accuracy: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    mode: &'static str,
    target: String,
    /// CPU-feature level the kernel layer dispatched to at startup
    /// (`"avx2"` or `"scalar"`) — numbers are only comparable between
    /// reports with the same dispatch level.
    dispatch: &'static str,
    kernels: Vec<KernelRow>,
    end_to_end: Option<EndToEnd>,
    peak_rss_bytes: Option<u64>,
}

fn seq(n: usize, scale: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * scale).sin()).collect()
}

fn assert_close(name: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{name}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g.is_finite(), "{name}: non-finite output at {i}: {g}");
        assert!(
            (g - w).abs() <= 1e-3 * (1.0 + w.abs()),
            "{name}: kernel diverged from baseline at {i}: {g} vs {w}"
        );
    }
}

fn bench_matmul(rows: &mut Vec<KernelRow>, reps: usize, n: usize, m: usize, k: usize) {
    let a = seq(n * k, 0.013);
    let bt = seq(m * k, 0.029);
    let mut out_old = vec![0.0f32; n * m];
    let mut out_new = vec![0.0f32; n * m];
    old_matmul_bt(&a, &bt, &mut out_old, n, m, k);
    kernels::matmul_bt(&a, &bt, &mut out_new, n, m, k);
    assert_close("matmul", &out_new, &out_old);
    let baseline_ns = time_ns(reps, || {
        old_matmul_bt(black_box(&a), black_box(&bt), &mut out_old, n, m, k)
    });
    let kernel_ns = time_ns(reps, || {
        kernels::matmul_bt(black_box(&a), black_box(&bt), &mut out_new, n, m, k)
    });
    rows.push(KernelRow {
        name: "matmul_bt".into(),
        shape: format!("{n}x{k}·{k}x{m}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

fn bench_dot(rows: &mut Vec<KernelRow>, reps: usize, len: usize) {
    let a = seq(len, 0.017);
    let b = seq(len, 0.031);
    let want = old_dot(&a, &b);
    let got = kernels::dot(&a, &b);
    assert_close("dot", &[got], &[want]);
    let baseline_ns = time_ns(reps, || {
        black_box(old_dot(black_box(&a), black_box(&b)));
    });
    let kernel_ns = time_ns(reps, || {
        black_box(kernels::dot(black_box(&a), black_box(&b)));
    });
    rows.push(KernelRow {
        name: "dot".into(),
        shape: format!("{len}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

fn bench_axpy(rows: &mut Vec<KernelRow>, reps: usize, len: usize) {
    let x = seq(len, 0.019);
    let mut y_old = seq(len, 0.023);
    let mut y_new = y_old.clone();
    old_axpy(&mut y_old, 0.5, &x);
    kernels::axpy(&mut y_new, 0.5, &x);
    assert_close("axpy", &y_new, &y_old);
    let baseline_ns = time_ns(reps, || old_axpy(black_box(&mut y_old), 0.5, black_box(&x)));
    let kernel_ns = time_ns(reps, || {
        kernels::axpy(black_box(&mut y_new), 0.5, black_box(&x))
    });
    rows.push(KernelRow {
        name: "axpy".into(),
        shape: format!("{len}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

fn bench_weighted_average(rows: &mut Vec<KernelRow>, reps: usize, workers: usize, dim: usize) {
    let vs: Vec<Vector> = (0..workers)
        .map(|i| Vector::from(seq(dim, 0.011 + i as f32 * 0.002)))
        .collect();
    let items: Vec<(f64, &Vector)> = vs
        .iter()
        .enumerate()
        .map(|(i, v)| (1.0 + i as f64, v))
        .collect();
    let want = old_weighted_average(&items);
    let got = Vector::weighted_average(items.iter().copied());
    assert_close("weighted_average", got.as_slice(), want.as_slice());
    let baseline_ns = time_ns(reps, || {
        black_box(old_weighted_average(black_box(&items)));
    });
    let kernel_ns = time_ns(reps, || {
        black_box(Vector::weighted_average(black_box(&items).iter().copied()));
    });
    rows.push(KernelRow {
        name: "weighted_average".into(),
        shape: format!("{workers}x{dim}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

/// K-way batched accumulation vs the previous production path (K
/// sequential `weighted_accumulate` passes over the accumulator).
fn bench_weighted_sum_batch(rows: &mut Vec<KernelRow>, reps: usize, workers: usize, dim: usize) {
    let vs: Vec<Vec<f32>> = (0..workers)
        .map(|i| seq(dim, 0.011 + i as f32 * 0.002))
        .collect();
    let weights: Vec<f64> = (0..workers).map(|i| 1.0 + i as f64).collect();
    let views: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
    let mut acc_old = vec![0.0f64; dim];
    let mut acc_new = vec![0.0f64; dim];
    for (w, v) in weights.iter().zip(&views) {
        kernels::weighted_accumulate(&mut acc_old, *w, v);
    }
    kernels::weighted_sum_batch(&mut acc_new, &weights, &views);
    let old32: Vec<f32> = acc_old.iter().map(|&a| a as f32).collect();
    let new32: Vec<f32> = acc_new.iter().map(|&a| a as f32).collect();
    assert_close("weighted_sum_batch", &new32, &old32);
    let baseline_ns = time_ns(reps, || {
        acc_old.fill(0.0);
        for (w, v) in weights.iter().zip(&views) {
            kernels::weighted_accumulate(black_box(&mut acc_old), *w, black_box(v));
        }
    });
    let kernel_ns = time_ns(reps, || {
        acc_new.fill(0.0);
        kernels::weighted_sum_batch(
            black_box(&mut acc_new),
            black_box(&weights),
            black_box(&views),
        );
    });
    rows.push(KernelRow {
        name: "weighted_sum_batch".into(),
        shape: format!("{workers}x{dim}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

/// Fused mean-finalize + momentum look-ahead vs the unfused
/// clone/sub/axpy composition it replaced.
fn bench_fused_momentum(rows: &mut Vec<KernelRow>, reps: usize, dim: usize) {
    let acc: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.003).cos() * 5.0).collect();
    let total = 3.5f64;
    let gamma = 0.625f32;
    let y_old = seq(dim, 0.021);
    let (want_mean, want_looked) = old_finalize_momentum(&acc, total, gamma, &y_old);
    let mut mean = vec![0.0f32; dim];
    let mut looked = vec![0.0f32; dim];
    kernels::fused_aggregate_momentum(&acc, total, gamma, &y_old, &mut mean, &mut looked);
    assert_close("fused_aggregate_momentum mean", &mean, &want_mean);
    assert_close("fused_aggregate_momentum looked", &looked, &want_looked);
    let baseline_ns = time_ns(reps, || {
        black_box(old_finalize_momentum(
            black_box(&acc),
            total,
            gamma,
            black_box(&y_old),
        ));
    });
    let kernel_ns = time_ns(reps, || {
        kernels::fused_aggregate_momentum(
            black_box(&acc),
            total,
            gamma,
            black_box(&y_old),
            &mut mean,
            &mut looked,
        );
    });
    rows.push(KernelRow {
        name: "fused_aggregate_momentum".into(),
        shape: format!("{dim}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

fn bench_conv(
    rows: &mut Vec<KernelRow>,
    reps: usize,
    c_in: usize,
    c_out: usize,
    hw: usize,
    k: usize,
    pad: usize,
) {
    let input = Tensor4::from_data(1, c_in, hw, hw, seq(c_in * hw * hw, 0.01));
    let weight = Tensor4::from_data(c_out, c_in, k, k, seq(c_out * c_in * k * k, 0.07));
    let bias = seq(c_out, 0.5);
    let want = old_conv2d_forward(&input, &weight, &bias, pad);
    let mut scratch = conv::Im2colScratch::new();
    let mut out = Tensor4::zeros(0, 0, 0, 0);
    conv::conv2d_forward_into(&input, &weight, &bias, pad, &mut scratch, &mut out);
    assert_close("conv2d", out.as_slice(), want.as_slice());
    let baseline_ns = time_ns(reps, || {
        black_box(old_conv2d_forward(
            black_box(&input),
            black_box(&weight),
            &bias,
            pad,
        ));
    });
    let kernel_ns = time_ns(reps, || {
        conv::conv2d_forward_into(
            black_box(&input),
            black_box(&weight),
            &bias,
            pad,
            &mut scratch,
            &mut out,
        );
    });
    rows.push(KernelRow {
        name: "conv2d_forward".into(),
        shape: format!("{c_in}->{c_out} {hw}x{hw} k{k} p{pad}"),
        baseline_ns,
        kernel_ns,
        speedup: baseline_ns / kernel_ns,
    });
}

fn end_to_end(total_iters: usize) -> EndToEnd {
    let tt = SyntheticDataset::mnist_like(60, 10, 17);
    let shards = x_class_partition(&tt.train, 4, 2, 17);
    let model = zoo::logistic_regression(&tt.train, 7);
    let cfg = RunConfig {
        eta: 0.05,
        tau: 5,
        pi: 2,
        total_iters,
        batch_size: 16,
        eval_every: total_iters,
        threads: Some(1),
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(0.05, 0.5);
    let t = Instant::now();
    let res = run(
        &algo,
        &model,
        &Hierarchy::balanced(2, 2),
        &shards,
        &tt.test,
        &cfg,
    )
    .expect("end-to-end run should succeed");
    let wall_s = t.elapsed().as_secs_f64();
    let final_accuracy = res.curve.final_accuracy().unwrap_or(0.0);
    EndToEnd {
        scenario: "hieradmo-adaptive logistic mnist-like N=4 L=2 τ=5 π=2".into(),
        total_iters,
        wall_s,
        final_accuracy,
    }
}

/// The tracked full-size shapes: every production hot-path kernel at the
/// widths the training loop actually runs. Full mode times these for the
/// committed report; smoke mode re-times them (fewer reps) to enforce the
/// speedup floor against that report.
fn full_kernel_shapes(rows: &mut Vec<KernelRow>, reps: usize) {
    // MLP layer shapes (Algorithm 1's dense path; 256×784·784×128 is
    // the acceptance shape), a conv-as-im2col shape, and small blocks.
    bench_matmul(rows, reps, 256, 128, 784);
    bench_matmul(rows, reps, 32, 196, 288);
    bench_matmul(rows, reps, 128, 64, 128);
    // Aggregation-width vectors: logistic-MNIST (7850) and MLP (~100k).
    bench_dot(rows, reps, 7850);
    bench_dot(rows, reps, 101_770);
    bench_axpy(rows, reps, 7850);
    bench_axpy(rows, reps, 101_770);
    // A production fan-in (16 workers × logistic-MNIST width), not the
    // old 4-input toy.
    bench_weighted_average(rows, reps, 16, 7850);
    // Batched K-way aggregation at edge fan-in (16×7850), cloud-scale MLP
    // fan-in (64×101770), and virtual-population fan-in (2048×7850).
    bench_weighted_sum_batch(rows, reps, 16, 7850);
    bench_weighted_sum_batch(rows, reps, 64, 101_770);
    bench_weighted_sum_batch(rows, reps, 2048, 7850);
    // Fused aggregation + momentum at both aggregation widths.
    bench_fused_momentum(rows, reps, 7850);
    bench_fused_momentum(rows, reps, 101_770);
    // CNN zoo layers: MNIST first conv and a mid-network conv.
    bench_conv(rows, reps, 1, 8, 28, 5, 2);
    bench_conv(rows, reps, 8, 16, 14, 3, 1);
}

/// Parses the committed full-mode report into `(name, shape) → speedup`.
/// Returns `None` (gate skipped) when the file is missing or malformed —
/// a fresh checkout without a committed baseline must not fail smoke.
fn baseline_speedups(path: &str) -> Option<Vec<(String, String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde_json::Value = serde_json::from_str(&text).ok()?;
    let obj = value.as_object()?;
    if obj.get("mode").and_then(|m| m.as_str()) != Some("full") {
        return None;
    }
    let kernels = match obj.get("kernels")? {
        serde_json::Value::Array(rows) => rows,
        _ => return None,
    };
    let mut out = Vec::with_capacity(kernels.len());
    for row in kernels {
        let row = row.as_object()?;
        out.push((
            row.get("name")?.as_str()?.to_string(),
            row.get("shape")?.as_str()?.to_string(),
            row.get("speedup")?.as_number()?.as_f64(),
        ));
    }
    Some(out)
}

/// Shapes whose best observed speedup is >10% below the committed one.
fn speedup_violations<'a>(
    best: &[KernelRow],
    baseline: &'a [(String, String, f64)],
) -> Vec<(&'a str, &'a str, f64, f64)> {
    let mut out = Vec::new();
    for (name, shape, committed) in baseline {
        // Retired shapes just drop out of the gate; the committed report
        // is regenerated on the next full run.
        if let Some(row) = best.iter().find(|r| &r.name == name && &r.shape == shape) {
            if row.speedup < 0.9 * committed {
                out.push((name.as_str(), shape.as_str(), row.speedup, *committed));
            }
        }
    }
    out
}

/// Fails the smoke run if any tracked kernel's speedup fell more than 10%
/// below the committed baseline's (matched by name and shape).
///
/// Timing on a shared box is noisy in both the numerator and the
/// denominator of a speedup, so the gate keeps the best per-shape speedup
/// across up to three measurement passes and only fails a kernel that
/// stays below the floor in all of them — a real regression is persistent,
/// a scheduling hiccup is not.
fn enforce_speedup_floor(reps: usize, baseline: &[(String, String, f64)]) {
    let mut best: Vec<KernelRow> = Vec::new();
    for attempt in 0..3 {
        let mut tracked = Vec::new();
        full_kernel_shapes(&mut tracked, reps);
        for row in tracked {
            match best
                .iter_mut()
                .find(|b| b.name == row.name && b.shape == row.shape)
            {
                Some(b) if b.speedup < row.speedup => *b = row,
                Some(_) => {}
                None => best.push(row),
            }
        }
        let violations = speedup_violations(&best, baseline);
        if violations.is_empty() {
            println!(
                "speedup floor held for {} tracked kernel shapes (pass {})",
                best.len(),
                attempt + 1
            );
            return;
        }
        for (name, shape, got, committed) in &violations {
            println!(
                "pass {}: kernel {name} {shape} below floor: {got:.2}x vs committed {committed:.2}x",
                attempt + 1
            );
        }
    }
    let violations = speedup_violations(&best, baseline);
    assert!(
        violations.is_empty(),
        "kernels regressed more than 10% below the committed baseline in all \
         passes: {violations:?} — investigate or regenerate the baseline with a \
         full `kernel_bench` run"
    );
}

/// Civil date (UTC) from the system clock, for the bench history log.
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Howard Hinnant's days-to-civil algorithm.
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Appends a dated one-line summary of this full run to
/// `results/bench_history.jsonl`.
fn append_history(rows: &[KernelRow], dispatch: &str) {
    use serde_json::{Map, Number, Value};
    let kernels: Vec<Value> = rows
        .iter()
        .map(|r| {
            let mut k = Map::new();
            k.insert("name".into(), Value::String(r.name.clone()));
            k.insert("shape".into(), Value::String(r.shape.clone()));
            k.insert("speedup".into(), Value::Number(Number::from_f64(r.speedup)));
            Value::Object(k)
        })
        .collect();
    let mut entry = Map::new();
    entry.insert("date".into(), Value::String(today_utc()));
    entry.insert("bench".into(), Value::String("kernel_bench".into()));
    entry.insert("dispatch".into(), Value::String(dispatch.into()));
    entry.insert("kernels".into(), Value::Array(kernels));
    let line = serde_json::to_string(&Value::Object(entry)).expect("history entry must serialize");
    if std::fs::create_dir_all("results").is_err() {
        eprintln!("warning: could not create results/; skipping bench history");
        return;
    }
    use std::io::Write as _;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("results/bench_history.jsonl")
    {
        Ok(mut f) => {
            writeln!(f, "{line}").expect("append bench history");
            println!("appended results/bench_history.jsonl");
        }
        Err(e) => eprintln!("warning: could not append bench history: {e}"),
    }
}

fn main() {
    let cli = Cli::parse();
    let smoke = cli.get("smoke").is_some();
    let out_path = cli.get("out").unwrap_or("BENCH_kernels.json").to_string();
    let baseline_path = cli
        .get("baseline")
        .unwrap_or("BENCH_kernels.json")
        .to_string();
    let reps: usize = cli.get_or("reps", if smoke { 1 } else { 7 });
    let dispatch = kernels::dispatch_level().name();

    let mut rows = Vec::new();
    if smoke {
        // Tiny shapes: correctness + schema only, so CI stays fast.
        bench_matmul(&mut rows, reps, 9, 7, 33);
        bench_dot(&mut rows, reps, 100);
        bench_axpy(&mut rows, reps, 100);
        bench_weighted_average(&mut rows, reps, 3, 64);
        bench_weighted_sum_batch(&mut rows, reps, 4, 64);
        bench_fused_momentum(&mut rows, reps, 64);
        bench_conv(&mut rows, reps, 2, 3, 8, 3, 1);
    } else {
        // Three measurement passes, keeping each shape's LOWEST-speedup
        // row. A single pass's speedup is the ratio of two noisy minima
        // and swings with machine load; since the committed report doubles
        // as the smoke gate's baseline, it must record a conservative
        // claim — one the gate (which keeps the best of its own passes)
        // can hold every future build to without flaking.
        let mut passes: Vec<Vec<KernelRow>> = Vec::new();
        for _ in 0..3 {
            let mut pass = Vec::new();
            full_kernel_shapes(&mut pass, reps);
            passes.push(pass);
        }
        let shapes: Vec<(String, String)> = passes[0]
            .iter()
            .map(|r| (r.name.clone(), r.shape.clone()))
            .collect();
        for (name, shape) in shapes {
            let mut candidates: Vec<KernelRow> = passes
                .iter_mut()
                .flat_map(|p| {
                    p.iter()
                        .position(|r| r.name == name && r.shape == shape)
                        .map(|i| p.swap_remove(i))
                })
                .collect();
            candidates.sort_by(|a, b| a.speedup.total_cmp(&b.speedup));
            candidates.truncate(1);
            rows.push(candidates.remove(0));
        }
    }

    for r in &rows {
        assert!(
            r.baseline_ns.is_finite() && r.kernel_ns.is_finite() && r.speedup.is_finite(),
            "non-finite timing for {}",
            r.name
        );
    }

    if smoke {
        match baseline_speedups(&baseline_path) {
            Some(baseline) => {
                // Re-time the tracked shapes at full size (a few reps keep
                // this quick) and hold them to the committed speedups.
                enforce_speedup_floor(reps.max(5), &baseline);
            }
            None => println!("no committed full baseline at {baseline_path}; gate skipped"),
        }
    }

    let e2e = Some(end_to_end(if smoke { 20 } else { 200 }));

    let report = BenchReport {
        bench: "kernel_bench",
        mode: if smoke { "smoke" } else { "full" },
        target: std::env::consts::ARCH.to_string(),
        dispatch,
        kernels: rows,
        end_to_end: e2e,
        peak_rss_bytes: hieradmo_bench::peak_rss_bytes(),
    };

    println!(
        "== kernel_bench ({}, dispatch: {}) ==",
        report.mode, report.dispatch
    );
    for r in &report.kernels {
        println!(
            "{:>18} {:>24}  old {:>12.0} ns  new {:>12.0} ns  speedup {:>5.2}x",
            r.name, r.shape, r.baseline_ns, r.kernel_ns, r.speedup
        );
    }
    if let Some(e) = &report.end_to_end {
        println!(
            "{:>18} {:>24}  wall {:.3} s  acc {:.3}",
            "end_to_end", e.scenario, e.wall_s, e.final_accuracy
        );
    }
    if let Some(rss) = report.peak_rss_bytes {
        println!(
            "{:>18} {:>24}  {:.1} MiB",
            "peak_rss",
            "",
            rss as f64 / (1024.0 * 1024.0)
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report must serialize");
    std::fs::write(&out_path, json + "\n").expect("write BENCH json");
    println!("wrote {out_path}");

    if !smoke {
        append_history(&report.kernels, report.dispatch);
    }
}
