//! **Fig. 2(e)–(g)**: the effect of the non-i.i.d. level — each worker
//! holds only x ∈ {3, 6, 9} of the 10 classes (CNN on MNIST, 4 workers,
//! 2 edges). Smaller x = harsher heterogeneity; HierAdMo must stay on top
//! at every level.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin fig2efg_noniid -- \
//!     [--scale quick|paper] [--workload cnn-mnist] [--full]
//! ```

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Workload};
use hieradmo_core::algorithms::{table2_lineup, FedAvg, FedNag, HierAdMo, HierFavg};
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;
use serde_json::json;

const EDGES: usize = 2;
const WORKERS: usize = 4;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let workload = Workload::from_name(cli.get("workload").unwrap_or("cnn-mnist"));
    let lineup: Vec<Box<dyn Strategy>> = if cli.get("full").is_some() {
        table2_lineup(0.01, 0.5, 0.5)
    } else {
        vec![
            Box::new(HierAdMo::adaptive(0.01, 0.5)),
            Box::new(HierAdMo::reduced(0.01, 0.5, 0.5)),
            Box::new(HierFavg::new(0.01)),
            Box::new(FedNag::new(0.01, 0.5)),
            Box::new(FedAvg::new(0.01)),
        ]
    };

    let tt = workload.dataset(scale, 31);
    let model = workload.model(&tt.train, 131);
    let (tau, pi) = workload.tau_pi();
    let total = workload.total_iters(scale);
    let cfg = RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 8).max(1),
        ..RunConfig::default()
    };

    let levels = [3usize, 6, 9];
    let mut header = vec!["Algorithm".to_string()];
    header.extend(levels.iter().map(|x| format!("{x}-class acc %")));
    let mut report = Report::new("fig2efg_noniid", header);

    for algo in &lineup {
        let mut cells = vec![algo.name().to_string()];
        let mut record = serde_json::Map::new();
        record.insert("algorithm".into(), json!(algo.name()));
        for &x in &levels {
            eprintln!("[fig2efg] {} with {x}-class non-iid", algo.name());
            let shards = x_class_partition(&tt.train, WORKERS, x, 33);
            let out = run_partitioned(algo.as_ref(), &model, &shards, &tt.test, &cfg, EDGES);
            cells.push(format!("{:.2}", out.accuracy * 100.0));
            record.insert(format!("x{x}"), json!(out.accuracy));
        }
        report.row(cells, &record);
    }
    println!("{}", report.render());
}
