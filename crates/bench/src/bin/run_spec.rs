//! Execute a JSON experiment spec (see [`hieradmo_bench::spec`]):
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin run_spec -- path/to/spec.json
//! ```
//!
//! With `--print-template` it emits a filled-in template spec instead.
//! The result (final accuracy, curve as CSV) goes to stdout.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::spec::ExperimentSpec;
use hieradmo_metrics::export::curve_to_csv;

fn main() {
    let cli = Cli::parse();
    if cli.get("print-template").is_some() {
        let template = ExperimentSpec {
            workload: "cnn-mnist".into(),
            algorithm: "HierAdMo".into(),
            scale: "quick".into(),
            edges: 2,
            workers_per_edge: 2,
            noniid_classes: Some(3),
            seed: 0,
            config: None,
        };
        println!("{}", template.to_json());
        return;
    }
    let path = cli
        .positional(0)
        .expect("usage: run_spec <spec.json> | run_spec --print-template");
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let spec =
        ExperimentSpec::from_json(&json).unwrap_or_else(|e| panic!("invalid spec {path}: {e}"));
    eprintln!(
        "[run_spec] {} / {} on {} edges × {} workers",
        spec.algorithm, spec.workload, spec.edges, spec.workers_per_edge
    );
    let outcome = spec
        .execute()
        .unwrap_or_else(|e| panic!("spec failed: {e}"));
    println!(
        "algorithm: {}\nfinal accuracy: {:.4}\n",
        outcome.algorithm, outcome.accuracy
    );
    println!("{}", curve_to_csv(&outcome.curve));
}
