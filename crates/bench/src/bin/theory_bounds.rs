//! **Theory companion**: tabulates the paper's bound functions so the
//! analytic claims of Section IV can be inspected numerically.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin theory_bounds
//! ```
//!
//! Prints:
//! 1. `h(x, δ)` (Theorem 1) against the interval length `x` for several
//!    worker momentum factors γ — larger γ and longer intervals grow the
//!    worker/edge gap;
//! 2. `s(τ)` (Theorem 2) against γℓ — the Theorem-5 mechanism: expected
//!    adaptive γℓ = 1/4 gives a smaller edge-momentum displacement than
//!    the fixed-γℓ expectation 1/2;
//! 3. `j(τ, π)` (Theorem 4) over the Fig. 2(a)–(c) grid — the analytic
//!    counterpart of the measured τ/π trends.

use hieradmo_bench::Report;
use hieradmo_core::theory::BoundConstants;
use serde_json::json;

fn main() {
    let eta = 0.01f64;
    let beta = 1.0f64;
    let delta = 1.0f64;
    let rho = 1.0f64;
    let mu = 1.0f64;

    // 1. h(x, δ) vs interval length, per γ.
    let gammas = [0.3f64, 0.5, 0.9];
    let mut header = vec!["x".to_string()];
    header.extend(gammas.iter().map(|g| format!("h(x) @ γ={g}")));
    let mut report = Report::new("theorem1_h_growth", header);
    for x in [0usize, 1, 2, 5, 10, 20, 40] {
        let mut cells = vec![x.to_string()];
        let mut rec = serde_json::Map::new();
        rec.insert("x".into(), json!(x));
        for &g in &gammas {
            let c = BoundConstants::new(eta, beta, g);
            let h = c.h(x, delta);
            cells.push(format!("{h:.6}"));
            rec.insert(format!("gamma{g}"), json!(h));
        }
        report.row(cells, &rec);
    }
    println!("{}", report.render());

    // 2. s(τ) vs γℓ (Theorem 2 / Theorem 5 mechanism).
    let c = BoundConstants::new(eta, beta, 0.5);
    let mut report = Report::new(
        "theorem2_s_vs_gamma_edge",
        vec!["γℓ".into(), "s(τ=10)".into(), "s(τ=20)".into()],
    );
    for ge in [0.0f64, 0.25, 0.5, 0.75, 0.99] {
        report.row(
            vec![
                format!("{ge}"),
                format!("{:.5}", c.s(10, ge, rho, mu)),
                format!("{:.5}", c.s(20, ge, rho, mu)),
            ],
            &json!({"gamma_edge": ge, "s10": c.s(10, ge, rho, mu), "s20": c.s(20, ge, rho, mu)}),
        );
    }
    println!("{}", report.render());
    println!(
        "Theorem 5: E[adaptive γℓ] = 1/4 ⇒ s(10) = {:.5} < {:.5} = s(10) at the \
         fixed-γℓ expectation 1/2\n",
        c.s(10, 0.25, rho, mu),
        c.s(10, 0.5, rho, mu)
    );

    // 3. j(τ, π) over the Fig. 2 grid.
    let edges = [(0.5, 1.0), (0.5, 1.0)];
    let mut report = Report::new(
        "theorem4_j_grid",
        vec!["τ".into(), "π".into(), "τ·π".into(), "j(τ,π)".into()],
    );
    for &(tau, pi) in &[
        (5usize, 2usize),
        (10, 2),
        (20, 2),
        (50, 2),
        (10, 1),
        (10, 5),
        (10, 10),
        (40, 1),
        (20, 2),
        (10, 4),
        (5, 8),
    ] {
        let j = c.j_round(tau, pi, &edges, delta, 0.5, rho, mu);
        report.row(
            vec![
                tau.to_string(),
                pi.to_string(),
                (tau * pi).to_string(),
                format!("{j:.5}"),
            ],
            &json!({"tau": tau, "pi": pi, "j": j}),
        );
    }
    println!("{}", report.render());
}
