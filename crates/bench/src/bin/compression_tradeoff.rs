//! **Extension experiment**: accuracy vs uplink bytes under lossy
//! compression (the paper's cited follow-on ref. 8, hierarchical FL with
//! quantization).
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin compression_tradeoff -- \
//!     [--scale quick|paper] [--workload logistic-mnist]
//! ```
//!
//! Runs hierarchical FedAvg with the worker→edge uplink compressed by
//! top-k / random-k / b-bit uniform quantization (all with error
//! feedback), reporting final accuracy next to the per-round uplink bytes.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Workload};
use hieradmo_core::compression::{Compression, QuantizedHierFavg};
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;
use hieradmo_models::Model;
use hieradmo_tensor::Vector;
use serde_json::json;

const EDGES: usize = 2;
const WORKERS: usize = 4;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let workload = Workload::from_name(cli.get("workload").unwrap_or("logistic-mnist"));

    let tt = workload.dataset(scale, 71);
    let model = workload.model(&tt.train, 171);
    let dim = model.dim();
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, 73);
    let (tau, pi) = workload.tau_pi();
    let total = workload.total_iters(scale);
    let cfg = RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 8).max(1),
        ..RunConfig::default()
    };

    let k10 = (dim / 10).max(1);
    let k100 = (dim / 100).max(1);
    let schemes = [
        Compression::None,
        Compression::TopK { k: k10 },
        Compression::TopK { k: k100 },
        Compression::RandomK { k: k10 },
        Compression::Uniform { bits: 8 },
        Compression::Uniform { bits: 4 },
        Compression::Uniform { bits: 2 },
    ];

    let mut report = Report::new(
        "compression_tradeoff",
        vec![
            "scheme".into(),
            "uplink bytes/round".into(),
            "vs dense".into(),
            "accuracy %".into(),
        ],
    );
    for scheme in schemes {
        eprintln!("[compression] {scheme:?}");
        let algo = QuantizedHierFavg::new(cfg.eta, scheme);
        let out = run_partitioned(&algo, &model, &shards, &tt.test, &cfg, EDGES);
        // Measure the actual wire size of one compressed update.
        let probe = Vector::filled(dim, 0.123);
        let bytes = scheme.compress(&probe, 0).wire_bytes();
        let dense = Compression::None.compress(&probe, 0).wire_bytes();
        report.row(
            vec![
                format!("{scheme:?}"),
                bytes.to_string(),
                format!("{:.1}%", bytes as f64 / dense as f64 * 100.0),
                format!("{:.2}", out.accuracy * 100.0),
            ],
            &json!({
                "scheme": format!("{scheme:?}"),
                "uplink_bytes": bytes,
                "compression_ratio": bytes as f64 / dense as f64,
                "accuracy": out.accuracy,
            }),
        );
    }
    println!("{}", report.render());
}
