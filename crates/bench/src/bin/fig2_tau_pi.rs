//! **Fig. 2(a)–(c)**: the effect of the aggregation periods τ and π on
//! HierAdMo's convergence (CNN on MNIST, N = 16 workers, L = 4 edges,
//! T = 1000, γ = 0.5).
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin fig2_tau_pi -- \
//!     [tau|pi|joint|all] [--scale quick|paper] [--workload cnn-mnist]
//! ```
//!
//! - `tau`   (Fig. 2a): τ ∈ {5, 10, 20, 50}, π = 2 — larger τ hurts.
//! - `pi`    (Fig. 2b): π ∈ {1, 2, 5, 10}, τ = 10 — larger π hurts.
//! - `joint` (Fig. 2c): τ·π = 40 fixed — smaller τ (more frequent edge
//!   aggregation) wins.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Scale, Workload};
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;
use serde_json::json;

const EDGES: usize = 4;
const WORKERS: usize = 16;

fn run_one(workload: Workload, scale: Scale, tau: usize, pi: usize, total: usize) -> f64 {
    let tt = workload.dataset(scale, 11);
    let model = workload.model(&tt.train, 111);
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, 13);
    let cfg = RunConfig {
        tau,
        pi,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 8).max(1),
        ..RunConfig::default()
    };
    let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
    run_partitioned(&algo, &model, &shards, &tt.test, &cfg, EDGES).accuracy
}

fn sweep(
    name: &str,
    pairs: &[(usize, usize)],
    workload: Workload,
    scale: Scale,
    total: usize,
) -> Report {
    let mut report = Report::new(name, vec!["tau".into(), "pi".into(), "accuracy %".into()]);
    for &(tau, pi) in pairs {
        // Keep T divisible by τ·π (paper uses T = 1000 with compatible
        // period choices); round T up to the next multiple.
        let round = tau * pi;
        let total = total.div_ceil(round) * round;
        eprintln!("[{name}] tau={tau} pi={pi} T={total}");
        let acc = run_one(workload, scale, tau, pi, total);
        report.row(
            vec![
                tau.to_string(),
                pi.to_string(),
                format!("{:.2}", acc * 100.0),
            ],
            &json!({"tau": tau, "pi": pi, "accuracy": acc}),
        );
    }
    report
}

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let workload = Workload::from_name(cli.get("workload").unwrap_or("cnn-mnist"));
    let total = workload.total_iters(scale);
    let mode = cli.positional(0).unwrap_or("all");

    if mode == "tau" || mode == "all" {
        // Fig. 2(a): vary τ at fixed π = 2.
        let pairs: Vec<(usize, usize)> = [5, 10, 20, 50].iter().map(|&t| (t, 2)).collect();
        println!(
            "{}",
            sweep("fig2a_tau", &pairs, workload, scale, total).render()
        );
    }
    if mode == "pi" || mode == "all" {
        // Fig. 2(b): vary π at fixed τ = 10.
        let pairs: Vec<(usize, usize)> = [1, 2, 5, 10].iter().map(|&p| (10, p)).collect();
        println!(
            "{}",
            sweep("fig2b_pi", &pairs, workload, scale, total).render()
        );
    }
    if mode == "joint" || mode == "all" {
        // Fig. 2(c): τ·π = 40 fixed.
        let pairs = [(40, 1), (20, 2), (10, 4), (5, 8)];
        println!(
            "{}",
            sweep("fig2c_joint", &pairs, workload, scale, total).render()
        );
    }
}
