//! **Table II**: accuracy of all eleven algorithms on the seven
//! model × dataset workloads.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin table2 -- \
//!     [--scale quick|paper] [--seeds N] [--workload cnn-mnist] [--algorithm HierAdMo]
//! ```
//!
//! Paper setting: 4 workers (2 edges × 2), γ = γℓ = 0.5, η = 0.01,
//! convex models τ=10/π=2 (two-tier τ=20), non-convex τ=20/π=2 (two-tier
//! τ=40). Reproduction target: the *ranking* — HierAdMo ≥ HierAdMo-R >
//! momentum baselines > momentum-free baselines.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::{run_on_scenario, Report, Workload};
use hieradmo_core::algorithms::table2_lineup;
use hieradmo_metrics::MeanStd;
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let seeds = cli.get_or("seeds", 1u64);
    let workloads: Vec<Workload> = match cli.get("workload") {
        Some(name) => vec![Workload::from_name(name)],
        None => Workload::all().to_vec(),
    };
    let mut lineup = table2_lineup(0.01, 0.5, 0.5);
    if let Some(name) = cli.get("algorithm") {
        lineup.retain(|a| a.name() == name);
        assert!(!lineup.is_empty(), "unknown --algorithm {name}");
    }

    let mut header = vec!["Algorithm".to_string()];
    header.extend(workloads.iter().map(|w| w.name().to_string()));
    let mut report = Report::new("table2", header);

    for algo in &lineup {
        let mut cells = vec![algo.name().to_string()];
        let mut record = serde_json::Map::new();
        record.insert("algorithm".into(), json!(algo.name()));
        for &w in &workloads {
            let accs: Vec<f64> = (0..seeds)
                .map(|s| {
                    eprintln!("[table2] {} / {} / seed {s}", algo.name(), w.name());
                    run_on_scenario(algo.as_ref(), w, scale, s).accuracy
                })
                .collect();
            let stat = MeanStd::of(&accs);
            cells.push(stat.as_percent());
            record.insert(w.name().into(), json!(stat.mean));
        }
        report.row(cells, &record);
    }
    println!("{}", report.render());
}
