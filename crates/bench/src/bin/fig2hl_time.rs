//! **Fig. 2(h)/(l)**: trace-driven total training time to reach a target
//! accuracy (CNN on MNIST, 4 workers).
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin fig2hl_time -- \
//!     [1|2|both] [--scale quick|paper] [--target 0.8] [--workload cnn-mnist]
//! ```
//!
//! - Setting **1** (Fig. 2h): three-tier τ=10/π=2, two-tier τ=20.
//! - Setting **2** (Fig. 2l): three-tier τ=20/π=2, two-tier τ=40.
//!
//! Each algorithm's convergence curve is trained in simulation, then
//! replayed against the emulated paper testbed (laptop + 3 phones, WiFi
//! LAN, WAN to the cloud) with honest per-algorithm payload sizes.
//! Reproduction target: HierAdMo reaches the target accuracy fastest,
//! with a 1.3×–4.4× speedup band over the baselines.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Scale, Workload};
use hieradmo_core::algorithms::table2_lineup;
use hieradmo_core::strategy::Tier;
use hieradmo_core::RunConfig;
use hieradmo_data::partition::x_class_partition;
use hieradmo_models::Model;
use hieradmo_netsim::payload::payload_bytes;
use hieradmo_netsim::{simulate_timeline, Architecture, NetworkEnv, TraceConfig};
use hieradmo_topology::{Hierarchy, Schedule};
use serde_json::json;

const EDGES: usize = 2;
const WORKERS: usize = 4;

/// Worker-upload vector count per algorithm (see `payload` docs): the
/// number of model-sized vectors shipped per aggregation.
fn upload_vectors(name: &str) -> usize {
    match name {
        // Algorithm 1 line 9: y, x, Σ∇F, Σy.
        "HierAdMo" | "HierAdMo-R" => 4,
        // Model + momentum/statistic.
        "FedNAG" | "FastSlowMo" | "FedADC" | "Mime" => 2,
        // Model only.
        _ => 1,
    }
}

fn download_vectors(name: &str) -> usize {
    match name {
        "HierAdMo" | "HierAdMo-R" | "FedNAG" | "FastSlowMo" | "FedADC" | "Mime" => 2,
        _ => 1,
    }
}

fn run_setting(setting: u8, scale: Scale, target: f64, workload: Workload) -> Report {
    let (tau3, pi3) = match setting {
        1 => (10usize, 2usize),
        2 => (20, 2),
        other => panic!("unknown setting {other}; use 1 or 2"),
    };
    let tt = workload.dataset(scale, 41);
    let model = workload.model(&tt.train, 141);
    let dim = model.dim();
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, 43);
    let total = {
        let round = tau3 * pi3;
        workload.total_iters(scale).div_ceil(round) * round
    };
    let cfg = RunConfig {
        tau: tau3,
        pi: pi3,
        total_iters: total,
        batch_size: scale.batch_size(),
        eval_every: (total / 20).max(1),
        ..RunConfig::default()
    };
    let env = NetworkEnv::paper_testbed(WORKERS);

    let mut report = Report::new(
        &format!("fig2hl_time_setting{setting}"),
        vec![
            "Algorithm".into(),
            "arch".into(),
            format!("iters to {target:.2}"),
            "time (s)".into(),
            "final acc %".into(),
        ],
    );

    let mut hieradmo_time = None;
    let mut rows = Vec::new();
    for algo in table2_lineup(0.01, 0.5, 0.5) {
        eprintln!("[fig2hl:{setting}] training {}", algo.name());
        let out = run_partitioned(algo.as_ref(), &model, &shards, &tt.test, &cfg, EDGES);
        let (arch, schedule, hierarchy) = match algo.tier() {
            Tier::Three => (
                Architecture::ThreeTier,
                Schedule::three_tier(tau3, pi3, total).expect("valid schedule"),
                Hierarchy::balanced(EDGES, WORKERS / EDGES),
            ),
            Tier::Two => (
                Architecture::TwoTier,
                Schedule::two_tier(tau3 * pi3, total).expect("valid schedule"),
                Hierarchy::two_tier(WORKERS),
            ),
        };
        let trace = TraceConfig {
            schedule,
            hierarchy,
            architecture: arch,
            upload_bytes: payload_bytes(dim, upload_vectors(algo.name())),
            download_bytes: payload_bytes(dim, download_vectors(algo.name())),
            seed: 47,
        };
        let timeline = simulate_timeline(&env, &trace);
        let iters = out.curve.iterations_to_accuracy(target);
        let secs = timeline.time_to_accuracy(&out.curve, target);
        if algo.name() == "HierAdMo" {
            hieradmo_time = secs;
        }
        rows.push((out, arch, iters, secs));
    }

    for (out, arch, iters, secs) in rows {
        let speedup = match (hieradmo_time, secs) {
            (Some(h), Some(s)) if h > 0.0 => Some(s / h),
            _ => None,
        };
        report.row(
            vec![
                out.algorithm.clone(),
                format!("{arch:?}"),
                iters.map_or("never".into(), |i| i.to_string()),
                secs.map_or("n/a".into(), |s| format!("{s:.2}")),
                format!("{:.2}", out.accuracy * 100.0),
            ],
            &json!({
                "algorithm": out.algorithm,
                "setting": setting,
                "iters_to_target": iters,
                "seconds_to_target": secs,
                "speedup_vs_hieradmo": speedup,
                "final_accuracy": out.accuracy,
            }),
        );
    }
    report
}

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    // Quick scale cannot reach 0.95 in few iterations; default target is
    // scale-dependent and overridable.
    let default_target = match scale {
        Scale::Quick => 0.80,
        Scale::Paper => 0.95,
    };
    let target = cli.get_or("target", default_target);
    let workload = Workload::from_name(cli.get("workload").unwrap_or("cnn-mnist"));
    match cli.positional(0).unwrap_or("both") {
        "1" => println!("{}", run_setting(1, scale, target, workload).render()),
        "2" => println!("{}", run_setting(2, scale, target, workload).render()),
        _ => {
            println!("{}", run_setting(1, scale, target, workload).render());
            println!("{}", run_setting(2, scale, target, workload).render());
        }
    }
}
