//! **Ablation** (DESIGN.md §6): dissect the adaptive edge momentum.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin ablation_adaptive -- \
//!     [--scale quick|paper] [--workload logistic-mnist] [--seeds N]
//! ```
//!
//! Compares, on the same shards and schedule:
//!
//! 1. `γℓ = 0` — edge momentum disabled (isolates the worker momentum);
//! 2. fixed `γℓ = 0.5` — HierAdMo-R, the paper's reduced variant;
//! 3. adaptive, verbatim-Eq.6 cosine (`Σyᵗ`) — HierAdMo's default;
//! 4. adaptive, footnote-1 agreement and gradient-alignment variants;
//! 5. HierFAVG — no momentum anywhere (the floor).

use hieradmo_bench::cli::Cli;
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Report, Workload};
use hieradmo_core::algorithms::{HierAdMo, HierFavg};
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;
use hieradmo_metrics::MeanStd;
use serde_json::json;

const EDGES: usize = 2;
const WORKERS: usize = 4;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let seeds = cli.get_or("seeds", 2u64);
    let workload = Workload::from_name(cli.get("workload").unwrap_or("logistic-mnist"));

    let variants: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "edge momentum off (γℓ=0)",
            Box::new(HierAdMo::reduced(0.01, 0.5, 0.0)),
        ),
        (
            "fixed γℓ=0.5 (HierAdMo-R)",
            Box::new(HierAdMo::reduced(0.01, 0.5, 0.5)),
        ),
        (
            "adaptive verbatim Σy (HierAdMo)",
            Box::new(HierAdMo::adaptive(0.01, 0.5)),
        ),
        (
            "adaptive agreement Σv",
            Box::new(HierAdMo::adaptive_agreement(0.01, 0.5)),
        ),
        (
            "adaptive grad-align",
            Box::new(HierAdMo::adaptive_gradient_alignment(0.01, 0.5)),
        ),
        ("no momentum (HierFAVG)", Box::new(HierFavg::new(0.01))),
    ];

    let (tau, pi) = workload.tau_pi();
    let total = workload.total_iters(scale);
    let mut report = Report::new(
        "ablation_adaptive",
        vec!["variant".into(), "accuracy %".into(), "mean γℓ".into()],
    );

    for (label, algo) in &variants {
        let mut accs = Vec::new();
        let mut gammas = Vec::new();
        for seed in 0..seeds {
            eprintln!("[ablation] {label} seed {seed}");
            let tt = workload.dataset(scale, 61 + seed);
            let model = workload.model(&tt.train, 161 + seed);
            let x = workload.noniid_classes(tt.train.num_classes());
            let shards = x_class_partition(&tt.train, WORKERS, x, 63 + seed);
            let cfg = RunConfig {
                tau,
                pi,
                total_iters: total,
                batch_size: scale.batch_size(),
                eval_every: (total / 8).max(1),
                seed,
                ..RunConfig::default()
            };
            let out = run_partitioned(algo.as_ref(), &model, &shards, &tt.test, &cfg, EDGES);
            accs.push(out.accuracy);
            if !out.gamma_trace.is_empty() {
                gammas.push(
                    f64::from(out.gamma_trace.iter().map(|&(_, g)| g).sum::<f32>())
                        / out.gamma_trace.len() as f64,
                );
            }
        }
        let stat = MeanStd::of(&accs);
        let mean_gamma = if gammas.is_empty() {
            "-".to_string()
        } else {
            format!("{:.3}", gammas.iter().sum::<f64>() / gammas.len() as f64)
        };
        report.row(
            vec![label.to_string(), stat.as_percent(), mean_gamma.clone()],
            &json!({"variant": label, "accuracy": stat.mean, "std": stat.std, "mean_gamma": mean_gamma}),
        );
    }
    println!("{}", report.render());
}
