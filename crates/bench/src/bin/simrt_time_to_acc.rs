//! **Fig. 2(h)/(l), co-simulated**: time-to-target-accuracy under the
//! event-driven runtime, in one pass per (policy, architecture) cell.
//!
//! ```text
//! cargo run -p hieradmo-bench --release --bin simrt_time_to_acc -- \
//!     [--scale quick|paper] [--target 0.8] [--workload logistic-mnist] \
//!     [--seed 41] [--faults none|flaky|hostile] \
//!     [--adversary none|sign_flip|momentum_poison] \
//!     [--defense mean|trimmed|median|clip] [--tiers 3,4,5]
//! ```
//!
//! Unlike `fig2hl_time` — which trains a logical-time curve and *replays*
//! it against a fixed network trace — this binary runs training **inside**
//! the network simulation (`hieradmo-simrt`), so delays gate aggregation
//! and the synchronization policy changes the trajectory itself:
//!
//! - `full-sync`: the paper's barrier semantics on an honest time axis;
//! - `deadline(q=0.5,200ms)`: semi-synchronous quorum firing — stragglers
//!   carry over with recorded staleness;
//! - `async(age<=2)`: per-arrival firing with a bounded age.
//!
//! Each is swept over the three-tier (τ=10, π=2) and two-tier (τ=20, π=1)
//! architectures of Fig. 2, and every row is emitted as a
//! `SimRunRecord` JSON line with its derived `time_to_target_s`.
//!
//! `--faults` attaches a named [`FaultScenario`] plan (crashes, lossy
//! links, stragglers) to every cell, reporting time-to-accuracy *under
//! faults*; per-actor fault tallies ride along in each record.
//!
//! `--adversary` turns a named minority of workers Byzantine
//! ([`AdversaryScenario`]) and `--defense` selects the robust aggregation
//! rule that guards both the model and momentum reductions — one
//! (attack, defense) cell per invocation, so a shell loop over both flags
//! sweeps the full grid (recipe in `EXPERIMENTS.md`). The defaults
//! (`none` × `mean`) reproduce the clean run bit-for-bit; per-actor
//! poisoned-upload tallies ride along in each record.
//!
//! `--tiers` sweeps hierarchy depth: each listed depth beyond 3 adds a
//! binary N-tier cell (2 children per node, leaf period τ=10, every upper
//! tier syncing its children every 2 rounds) run under `full-sync` on the
//! three-tier network — middle tiers are co-hosted at the cloud actor.
//! Depth 3 keeps the classic (policy × architecture) grid. Deeper trees
//! have more workers (2^(depth-1)), so cells are comparable within a
//! depth, not across depths.
//!
//! `--churn` attaches a named topology-churn scenario and routes the cell
//! through the elastic runtime (`simulate_elastic`):
//!
//! - `flaky_edges`: the minority edge dies at the one-third mark (its
//!   workers re-home onto the survivor) and the live edges re-form every
//!   quarter of the run;
//! - `mass_migration`: half the workers swap edges at each quarter
//!   boundary, with a final re-formation pass.
//!
//! Churn needs at least two edges and a frozen depth-3 tree, so it skips
//! the two-tier architecture and any `--tiers` depth beyond 3. Topology
//! counters (joins, migrations, reformations, orphaned rounds) ride
//! along in each record.

use hieradmo_bench::cli::Cli;
use hieradmo_bench::{
    defense_from_name, AdversaryScenario, FaultScenario, Report, Scale, Workload,
};
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;
use hieradmo_metrics::export::SimRunRecord;
use hieradmo_models::Model;
use hieradmo_netsim::payload::payload_bytes;
use hieradmo_netsim::{Architecture, NetworkEnv};
use hieradmo_simrt::{simulate, simulate_elastic, SimConfig, SyncPolicy};
use hieradmo_topology::{ChurnPlan, Hierarchy, ScheduledEvent, TierSpec, TierTree, TopologyEvent};

const EDGES: usize = 2;
const WORKERS: usize = 4;
/// Algorithm 1 line 9 ships y, x, Σ∇F, Σy per upload.
const UPLOAD_VECTORS: usize = 4;

/// Builds the named churn scenario over a run of `rounds` cloud rounds
/// on the 2-edge depth-3 grid. `none` returns the empty plan (frozen
/// tree, classic engine).
fn churn_scenario(name: &str, rounds: usize) -> ChurnPlan {
    let quarter = (rounds / 4).max(1);
    match name {
        "none" => ChurnPlan::none(),
        "flaky_edges" => ChurnPlan {
            events: vec![ScheduledEvent {
                round: (rounds / 3).max(1),
                event: TopologyEvent::EdgeFail { edge: 1 },
            }],
            reform_every: Some(quarter),
        },
        "mass_migration" => ChurnPlan {
            events: vec![
                ScheduledEvent {
                    round: quarter,
                    event: TopologyEvent::Migrate { worker: 0, edge: 1 },
                },
                ScheduledEvent {
                    round: quarter,
                    event: TopologyEvent::Migrate { worker: 2, edge: 0 },
                },
                ScheduledEvent {
                    round: 2 * quarter,
                    event: TopologyEvent::Migrate { worker: 0, edge: 0 },
                },
                ScheduledEvent {
                    round: 2 * quarter,
                    event: TopologyEvent::Migrate { worker: 2, edge: 1 },
                },
                ScheduledEvent {
                    round: 3 * quarter,
                    event: TopologyEvent::EdgeReform,
                },
            ],
            reform_every: None,
        },
        other => panic!("unknown --churn scenario {other:?} (none|flaky_edges|mass_migration)"),
    }
}

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale();
    let target: f64 = cli.get_or("target", 0.8);
    let seed: u64 = cli.get_or("seed", 41);
    let workload = Workload::from_name(cli.get("workload").unwrap_or("logistic-mnist"));
    let scenario = FaultScenario::from_name(cli.get("faults").unwrap_or("none"));
    let adversary = AdversaryScenario::from_name(cli.get("adversary").unwrap_or("none"));
    let defense = defense_from_name(cli.get("defense").unwrap_or("mean"));
    let churn_name = cli.get("churn").unwrap_or("none").to_string();
    let churn_on = churn_name != "none";
    let depths: Vec<usize> = cli
        .get("tiers")
        .unwrap_or("3")
        .split(',')
        .map(|s| {
            let d: usize = s
                .trim()
                .parse()
                .expect("--tiers takes a comma-separated list of depths, e.g. 3,4,5");
            assert!(d >= 3, "--tiers depths must be at least 3, got {d}");
            d
        })
        .collect();

    let tt = workload.dataset(scale, seed);
    let model = workload.model(&tt.train, seed.wrapping_add(100));
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, WORKERS, x, seed.wrapping_add(2));
    let env = NetworkEnv::paper_testbed(WORKERS);
    let payload = payload_bytes(model.dim(), UPLOAD_VECTORS);

    let policies = [
        SyncPolicy::FullSync,
        SyncPolicy::Deadline {
            quorum: 0.5,
            timeout_ms: 200.0,
        },
        SyncPolicy::AsyncAge { max_staleness: 2 },
    ];
    let architectures = [
        (Architecture::ThreeTier, 10usize, 2usize),
        (Architecture::TwoTier, 20, 1),
    ];

    let mut report = Report::new(
        "simrt_time_to_acc",
        vec![
            "policy".into(),
            "arch".into(),
            "tiers".into(),
            "faults".into(),
            "adversary".into(),
            "defense".into(),
            "churn".into(),
            format!("time to {target:.2} (s)"),
            "total (s)".into(),
            "final acc %".into(),
            "events".into(),
        ],
    );

    for &(arch, tau, pi) in architectures.iter().filter(|_| depths.contains(&3)) {
        if churn_on && arch == Architecture::TwoTier {
            eprintln!("[simrt] skipping TwoTier under churn (needs at least two edges)");
            continue;
        }
        let hierarchy = match arch {
            Architecture::ThreeTier => Hierarchy::balanced(EDGES, WORKERS / EDGES),
            Architecture::TwoTier => Hierarchy::two_tier(WORKERS),
        };
        let total = {
            let round = tau * pi;
            match scale {
                Scale::Quick => (workload.total_iters(scale) / 4).max(round),
                Scale::Paper => workload.total_iters(scale),
            }
            .div_ceil(round)
                * round
        };
        let cfg = RunConfig {
            tau,
            pi,
            total_iters: total,
            batch_size: scale.batch_size(),
            eval_every: (total / 20).max(1),
            seed,
            aggregator: defense,
            adversary: adversary.plan(WORKERS),
            churn: churn_scenario(&churn_name, total / (tau * pi)),
            ..RunConfig::default()
        };
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        for &policy in &policies {
            eprintln!(
                "[simrt] {} under {} on {arch:?} (faults: {}, adversary: {}, defense: {}, \
                 churn: {churn_name})",
                algo.name(),
                policy.label(),
                scenario.name(),
                adversary.name(),
                defense.label()
            );
            let sim = SimConfig::new(env.clone(), arch, payload, seed.wrapping_add(7), policy)
                .with_faults(scenario.plan());
            let res = if churn_on {
                simulate_elastic(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
            } else {
                simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
            }
            .expect("co-simulation failed");
            let final_acc = res
                .timed_curve
                .points()
                .last()
                .map_or(0.0, |p| p.test_accuracy);
            let record = SimRunRecord::new(
                res.algorithm.clone(),
                res.policy.clone(),
                res.timed_curve.clone(),
                target,
                res.utilization.clone(),
            )
            .with_faults(res.faults.clone())
            .with_adversaries(res.adversaries.clone())
            .with_run_stats(res.events, res.simulated_seconds)
            .with_topology(res.topology);
            report.row(
                vec![
                    res.policy.clone(),
                    format!("{arch:?}"),
                    "3".into(),
                    scenario.name().into(),
                    adversary.name().into(),
                    defense.label().to_string(),
                    churn_name.clone(),
                    record
                        .time_to_target_s
                        .map_or("never".into(), |s| format!("{s:.2}")),
                    format!("{:.2}", res.simulated_seconds),
                    format!("{:.2}", final_acc * 100.0),
                    res.events.to_string(),
                ],
                &record,
            );
        }
    }

    // Depth sweep: one full-sync three-tier-network cell per depth ≥ 4,
    // on a binary tree (2 children per node) with leaf period τ = 10 and
    // every upper tier syncing its children every 2 of their rounds.
    for &depth in depths.iter().filter(|&&d| d > 3) {
        if churn_on {
            eprintln!("[simrt] skipping depth {depth} under churn (elastic runs are depth-3)");
            continue;
        }
        let mut levels = vec![TierSpec::new(2, 2); depth - 1];
        *levels.last_mut().expect("depth >= 4 has levels") = TierSpec::new(2, 10);
        let tree = TierTree::new(levels).expect("sweep tree is valid");
        let hierarchy = tree.edge_hierarchy();
        let n = tree.num_workers();
        let shards = x_class_partition(&tt.train, n, x, seed.wrapping_add(2));
        let env = NetworkEnv::paper_testbed(n);
        let (tau, pi) = (tree.tau(), tree.pi_total());
        let total = {
            let round = tau * pi;
            match scale {
                Scale::Quick => (workload.total_iters(scale) / 4).max(round),
                Scale::Paper => workload.total_iters(scale),
            }
            .div_ceil(round)
                * round
        };
        let cfg = RunConfig {
            tau,
            pi,
            total_iters: total,
            batch_size: scale.batch_size(),
            eval_every: (total / 20).max(1),
            seed,
            aggregator: defense,
            adversary: adversary.plan(n),
            ..RunConfig::default()
        };
        let algo = HierAdMo::adaptive(cfg.eta, cfg.gamma);
        let policy = SyncPolicy::FullSync;
        eprintln!(
            "[simrt] {} under {} at depth {depth} ({n} workers; faults: {}, adversary: {}, \
             defense: {})",
            algo.name(),
            policy.label(),
            scenario.name(),
            adversary.name(),
            defense.label()
        );
        let sim = SimConfig::new(
            env,
            Architecture::ThreeTier,
            payload,
            seed.wrapping_add(7),
            policy,
        )
        .with_faults(scenario.plan())
        .with_tiers(tree);
        let res = simulate(&algo, &model, &hierarchy, &shards, &tt.test, &cfg, &sim)
            .expect("co-simulation failed");
        let final_acc = res
            .timed_curve
            .points()
            .last()
            .map_or(0.0, |p| p.test_accuracy);
        let record = SimRunRecord::new(
            res.algorithm.clone(),
            res.policy.clone(),
            res.timed_curve.clone(),
            target,
            res.utilization.clone(),
        )
        .with_faults(res.faults.clone())
        .with_adversaries(res.adversaries.clone())
        .with_run_stats(res.events, res.simulated_seconds);
        report.row(
            vec![
                res.policy.clone(),
                "ThreeTier".into(),
                depth.to_string(),
                scenario.name().into(),
                adversary.name().into(),
                defense.label().to_string(),
                "none".into(),
                record
                    .time_to_target_s
                    .map_or("never".into(), |s| format!("{s:.2}")),
                format!("{:.2}", res.simulated_seconds),
                format!("{:.2}", final_acc * 100.0),
                res.events.to_string(),
            ],
            &record,
        );
    }

    println!("{}", report.render());
}
