//! A minimal `--key value` argument parser for the experiment binaries
//! (keeps the workspace free of CLI dependencies).

use std::collections::HashMap;

/// Parsed command line: positionals plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

impl Cli {
    /// Parses `std::env::args` (skipping the binary name).
    ///
    /// `--flag value` pairs become options; bare `--flag` at the end of the
    /// line (or followed by another `--`) becomes `"true"`; everything else
    /// is positional.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (for tests).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Cli::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                cli.options.insert(key.to_string(), value);
            } else {
                cli.positional.push(arg);
            }
        }
        cli
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// An option's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("invalid --{key} {v}: {e}")),
        }
    }

    /// The experiment scale from `--scale quick|paper` (default quick).
    ///
    /// # Panics
    ///
    /// Panics on an unknown scale name.
    pub fn scale(&self) -> crate::Scale {
        match self.get("scale").unwrap_or("quick") {
            "quick" => crate::Scale::Quick,
            "paper" => crate::Scale::Paper,
            other => panic!("unknown --scale {other}; use quick or paper"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(s: &str) -> Cli {
        Cli::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_options_and_positionals() {
        let c = cli("tau --seeds 3 --scale paper trailing");
        assert_eq!(c.positional(0), Some("tau"));
        assert_eq!(c.positional(1), Some("trailing"));
        assert_eq!(c.get_or("seeds", 1usize), 3);
        assert_eq!(c.scale(), crate::Scale::Paper);
    }

    #[test]
    fn bare_flag_is_true() {
        let c = cli("--verbose --seeds 2");
        assert_eq!(c.get("verbose"), Some("true"));
        assert_eq!(c.get_or("seeds", 0usize), 2);
    }

    #[test]
    fn defaults_apply() {
        let c = cli("");
        assert_eq!(c.get_or("seeds", 5usize), 5);
        assert_eq!(c.scale(), crate::Scale::Quick);
        assert_eq!(c.positional(0), None);
    }

    #[test]
    #[should_panic(expected = "invalid --seeds")]
    fn bad_value_panics() {
        let c = cli("--seeds abc");
        let _ = c.get_or("seeds", 1usize);
    }
}
