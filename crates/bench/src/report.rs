//! Experiment reports: a text table for humans plus JSON lines for
//! `EXPERIMENTS.md` regeneration.

use hieradmo_metrics::Table;
use serde::Serialize;

/// A report accumulating rows for one experiment.
///
/// # Example
///
/// ```
/// use hieradmo_bench::Report;
///
/// let mut r = Report::new("table2", vec!["Algorithm".into(), "Acc".into()]);
/// r.row(vec!["HierAdMo".into(), "86.2".into()], &serde_json::json!({"acc": 0.862}));
/// let text = r.render();
/// assert!(text.contains("HierAdMo"));
/// ```
#[derive(Debug)]
pub struct Report {
    experiment: String,
    table: Table,
    json_lines: Vec<String>,
}

impl Report {
    /// Starts a report for the named experiment with table headers.
    pub fn new(experiment: &str, header: Vec<String>) -> Self {
        Report {
            experiment: experiment.to_string(),
            table: Table::new(header),
            json_lines: Vec::new(),
        }
    }

    /// Adds a table row plus its machine-readable JSON record.
    ///
    /// # Panics
    ///
    /// Panics if the row width mismatches the header, or the record cannot
    /// serialize.
    pub fn row<S: Serialize>(&mut self, cells: Vec<String>, record: &S) {
        self.table.add_row(cells);
        let mut value = serde_json::to_value(record).expect("record must serialize");
        if let serde_json::Value::Object(map) = &mut value {
            map.insert(
                "experiment".into(),
                serde_json::Value::String(self.experiment.clone()),
            );
        }
        self.json_lines
            .push(serde_json::to_string(&value).expect("value must serialize"));
    }

    /// Renders the full report: banner, table, then JSON lines.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n{}", self.experiment, self.table);
        out.push_str("\n--- json ---\n");
        for line in &self.json_lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.table.num_rows()
    }

    /// Returns `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.table.num_rows() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_carry_experiment_tag() {
        let mut r = Report::new("figX", vec!["a".into()]);
        r.row(vec!["1".into()], &serde_json::json!({"v": 1}));
        let text = r.render();
        assert!(text.contains("\"experiment\":\"figX\""));
        assert!(text.contains("== figX =="));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}
