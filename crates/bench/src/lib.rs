//! Experiment harness shared by the per-table/per-figure binaries and the
//! Criterion benches.
//!
//! - [`scenarios`] — the seven model × dataset workloads of Table II, with
//!   a [`scenarios::Scale`] knob (quick / paper) controlling dataset sizes
//!   and iteration counts.
//! - [`harness`] — assembly code that partitions data, builds topologies,
//!   runs a [`hieradmo_core::Strategy`] (three-tier or its two-tier
//!   equivalent per the paper's fairness rule), and collects outcomes.
//! - [`report`] — result rows rendered both as text tables and JSON lines
//!   (so `EXPERIMENTS.md` numbers are regenerable and diffable).
//! - [`sys`] — process-level measurements (peak RSS) shared by the
//!   benchmark binaries.

#![deny(missing_docs)]

pub mod cli;
pub mod harness;
pub mod report;
pub mod scenarios;
pub mod spec;
pub mod sys;

pub use harness::{run_on_scenario, Outcome};
pub use report::Report;
pub use scenarios::{defense_from_name, AdversaryScenario, FaultScenario, Scale, Workload};
pub use sys::peak_rss_bytes;
