//! The seven Table II workloads (model × dataset), the scale knob, and
//! named fault scenarios for the chaos benches.

use hieradmo_core::RobustAggregator;
use hieradmo_data::dataset::TrainTest;
use hieradmo_data::synthetic::SyntheticDataset;
use hieradmo_models::{zoo, Sequential};
use hieradmo_netsim::{
    AdversaryPlan, AttackModel, CrashProfile, DelaySpikes, FaultPlan, LinkFaults,
};

/// How large to make each experiment.
///
/// `Quick` keeps every binary runnable in minutes on a laptop; `Paper`
/// approaches the paper's sample sizes and iteration counts (hours). The
/// *shape* of results (algorithm ranking, τ/π trends) is stable across
/// scales — that is the reproduction target (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: small shards, short schedules.
    Quick,
    /// Near-paper scale.
    Paper,
}

impl Scale {
    /// Training samples per class.
    pub fn train_per_class(self) -> usize {
        match self {
            Scale::Quick => 40,
            Scale::Paper => 400,
        }
    }

    /// Test samples per class (large enough that accuracy quanta stay
    /// below the algorithm separations being measured).
    pub fn test_per_class(self) -> usize {
        match self {
            Scale::Quick => 30,
            Scale::Paper => 100,
        }
    }

    /// Total local iterations `T` for convex models (paper: 1000 on MNIST).
    pub fn iters_convex(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Paper => 1000,
        }
    }

    /// Total local iterations `T` for non-convex models (paper: up to 10k).
    pub fn iters_nonconvex(self) -> usize {
        match self {
            Scale::Quick => 400,
            Scale::Paper => 4000,
        }
    }

    /// Mini-batch size (paper: 64).
    pub fn batch_size(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Paper => 64,
        }
    }
}

/// A named fault environment for the co-simulation benches, so
/// `simrt_time_to_acc` can report time-to-accuracy *under faults* with a
/// reproducible, CLI-selectable plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// No injected faults (the empty plan).
    None,
    /// A realistically unreliable deployment: occasional worker crashes
    /// with sub-second downtime, mildly lossy links, a few stragglers.
    Flaky,
    /// An adversarially bad deployment: frequent crashes, heavy loss and
    /// duplication, strong delay spikes.
    Hostile,
}

impl FaultScenario {
    /// Parses a CLI scenario name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the valid ones.
    pub fn from_name(name: &str) -> FaultScenario {
        match name {
            "none" => FaultScenario::None,
            "flaky" => FaultScenario::Flaky,
            "hostile" => FaultScenario::Hostile,
            other => panic!("unknown fault scenario {other}; valid: none flaky hostile"),
        }
    }

    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::None => "none",
            FaultScenario::Flaky => "flaky",
            FaultScenario::Hostile => "hostile",
        }
    }

    /// The concrete fault plan. Always passes `FaultPlan::validate`.
    pub fn plan(&self) -> FaultPlan {
        match self {
            FaultScenario::None => FaultPlan::none(),
            FaultScenario::Flaky => FaultPlan {
                crash: Some(CrashProfile {
                    per_step: 0.02,
                    min_downtime_ms: 50.0,
                    max_downtime_ms: 400.0,
                }),
                permanent: Vec::new(),
                link: Some(LinkFaults::flaky()),
                spikes: Some(DelaySpikes {
                    prob: 0.1,
                    factor: 4.0,
                }),
            },
            FaultScenario::Hostile => FaultPlan {
                crash: Some(CrashProfile {
                    per_step: 0.08,
                    min_downtime_ms: 100.0,
                    max_downtime_ms: 1500.0,
                }),
                permanent: Vec::new(),
                link: Some(LinkFaults {
                    loss_prob: 0.15,
                    fail_prob: 0.1,
                    dup_prob: 0.1,
                    ..LinkFaults::flaky()
                }),
                spikes: Some(DelaySpikes {
                    prob: 0.25,
                    factor: 8.0,
                }),
            },
        }
    }
}

/// A named Byzantine-worker scenario for the co-simulation benches, so
/// `simrt_time_to_acc` can sweep an attack × defense grid with
/// reproducible, CLI-selectable plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryScenario {
    /// No Byzantine workers (the empty plan).
    None,
    /// A strict minority (one in four, rounded up to at least one worker)
    /// uploads sign-flipped, 3×-amplified state — the classic label-flip
    /// style model attack.
    SignFlip,
    /// The same minority poisons only its momentum upload (5× reversed),
    /// leaving the model honest — the HierAdMo-specific vector aimed at
    /// the Eq. 6–7 adaptive γℓ path.
    MomentumPoison,
}

impl AdversaryScenario {
    /// Parses a CLI scenario name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the valid ones.
    pub fn from_name(name: &str) -> AdversaryScenario {
        match name {
            "none" => AdversaryScenario::None,
            "sign_flip" => AdversaryScenario::SignFlip,
            "momentum_poison" => AdversaryScenario::MomentumPoison,
            other => {
                panic!("unknown adversary scenario {other}; valid: none sign_flip momentum_poison")
            }
        }
    }

    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryScenario::None => "none",
            AdversaryScenario::SignFlip => "sign_flip",
            AdversaryScenario::MomentumPoison => "momentum_poison",
        }
    }

    /// The concrete plan over a topology of `workers` flat workers: the
    /// first `max(1, workers / 4)` indices turn Byzantine. Always passes
    /// `AdversaryPlan::validate`.
    pub fn plan(&self, workers: usize) -> AdversaryPlan {
        let attack = match self {
            AdversaryScenario::None => return AdversaryPlan::none(),
            AdversaryScenario::SignFlip => AttackModel::SignFlip { scale: 3.0 },
            AdversaryScenario::MomentumPoison => AttackModel::MomentumPoison { scale: 5.0 },
        };
        AdversaryPlan::uniform(0..(workers / 4).max(1).min(workers), attack)
    }
}

/// Parses a CLI defense name into the robust aggregation rule applied to
/// every model *and* momentum reduction.
///
/// # Panics
///
/// Panics on an unknown name, listing the valid ones.
pub fn defense_from_name(name: &str) -> RobustAggregator {
    match name {
        "mean" => RobustAggregator::Mean,
        "trimmed" => RobustAggregator::TrimmedMean { trim_ratio: 0.25 },
        "median" => RobustAggregator::Median,
        "clip" => RobustAggregator::NormClip { threshold: 10.0 },
        other => panic!("unknown defense {other}; valid: mean trimmed median clip"),
    }
}

/// A Table II column: which model on which dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Linear regression (MSE vs one-hot) on MNIST-like data.
    LinearMnist,
    /// Logistic regression on MNIST-like data.
    LogisticMnist,
    /// LeNet-style CNN on MNIST-like data.
    CnnMnist,
    /// LeNet-style CNN on CIFAR-10-like data.
    CnnCifar,
    /// VGG-style network on CIFAR-10-like data.
    VggCifar,
    /// ResNet-style network on Tiny-ImageNet-like data.
    ResnetImagenet,
    /// The paper's "CNN on UCI-HAR" column: our HAR substitute is a flat
    /// 561-d feature vector (DESIGN.md §4), so the workload maps to an
    /// MLP over those features.
    MlpHar,
}

impl Workload {
    /// All seven Table II columns, in the paper's order.
    pub fn all() -> [Workload; 7] {
        [
            Workload::LinearMnist,
            Workload::LogisticMnist,
            Workload::CnnMnist,
            Workload::CnnCifar,
            Workload::VggCifar,
            Workload::ResnetImagenet,
            Workload::MlpHar,
        ]
    }

    /// Parses a CLI workload name (kebab-case).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name, listing the valid ones.
    pub fn from_name(name: &str) -> Workload {
        match name {
            "linear-mnist" => Workload::LinearMnist,
            "logistic-mnist" => Workload::LogisticMnist,
            "cnn-mnist" => Workload::CnnMnist,
            "cnn-cifar" => Workload::CnnCifar,
            "vgg-cifar" => Workload::VggCifar,
            "resnet-imagenet" => Workload::ResnetImagenet,
            "mlp-har" => Workload::MlpHar,
            other => panic!(
                "unknown workload {other}; valid: linear-mnist logistic-mnist cnn-mnist \
                 cnn-cifar vgg-cifar resnet-imagenet mlp-har"
            ),
        }
    }

    /// Table II column header.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::LinearMnist => "Linear on MNIST",
            Workload::LogisticMnist => "Logistic on MNIST",
            Workload::CnnMnist => "CNN on MNIST",
            Workload::CnnCifar => "CNN on CIFAR10",
            Workload::VggCifar => "VGG16 on CIFAR10",
            Workload::ResnetImagenet => "ResNet18 on ImageNet",
            Workload::MlpHar => "CNN on UCI-HAR",
        }
    }

    /// Whether the paper treats this model as convex (τ = 10/π = 2 setting
    /// instead of τ = 20/π = 2).
    pub fn is_convex(&self) -> bool {
        matches!(self, Workload::LinearMnist | Workload::LogisticMnist)
    }

    /// Generates the dataset pair for this workload.
    pub fn dataset(&self, scale: Scale, seed: u64) -> TrainTest {
        let (tr, te) = (scale.train_per_class(), scale.test_per_class());
        match self {
            Workload::LinearMnist | Workload::LogisticMnist | Workload::CnnMnist => {
                SyntheticDataset::mnist_like(tr, te, seed)
            }
            Workload::CnnCifar | Workload::VggCifar => SyntheticDataset::cifar10_like(tr, te, seed),
            Workload::ResnetImagenet => SyntheticDataset::imagenet_like(tr, te, seed),
            Workload::MlpHar => SyntheticDataset::har_like(tr * 2, te * 2, seed),
        }
    }

    /// Builds the workload's model for the given training set.
    pub fn model(&self, train: &hieradmo_data::Dataset, seed: u64) -> Sequential {
        match self {
            Workload::LinearMnist => zoo::linear_regression(train, seed),
            Workload::LogisticMnist => zoo::logistic_regression(train, seed),
            Workload::CnnMnist | Workload::CnnCifar => zoo::cnn(train, seed),
            Workload::VggCifar => zoo::vgg_like(train, seed),
            Workload::ResnetImagenet => zoo::resnet_like(train, seed),
            Workload::MlpHar => zoo::mlp(train, 64, seed),
        }
    }

    /// Total iterations at the given scale (convex vs non-convex).
    ///
    /// The ResNet workload gets a 3× longer schedule: residual nets
    /// trained from scratch sit on a loss plateau for roughly a thousand
    /// iterations before the head separates (measured in
    /// `EXPERIMENTS.md`), so a shorter budget would record random
    /// accuracy for every algorithm.
    pub fn total_iters(&self, scale: Scale) -> usize {
        let base = if self.is_convex() {
            scale.iters_convex()
        } else {
            scale.iters_nonconvex()
        };
        match self {
            Workload::ResnetImagenet => base * 3,
            _ => base,
        }
    }

    /// The paper's three-tier `(τ, π)` for this workload: `(10, 2)` for
    /// convex models, `(20, 2)` otherwise.
    pub fn tau_pi(&self) -> (usize, usize) {
        if self.is_convex() {
            (10, 2)
        } else {
            (20, 2)
        }
    }

    /// The non-iid classes-per-worker used for Table II: roughly 30% of
    /// the class count (3-of-10 for the MNIST/CIFAR-style sets) — harsh
    /// enough heterogeneity to separate the algorithms, while 4 workers
    /// still collectively cover every class.
    pub fn noniid_classes(&self, num_classes: usize) -> usize {
        (num_classes * 3 / 10).max(2).min(num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_models::Model;

    #[test]
    fn all_workloads_build_quickly() {
        for w in Workload::all() {
            let tt = w.dataset(Scale::Quick, 1);
            let model = w.model(&tt.train, 1);
            assert!(model.dim() > 0, "{}", w.name());
            assert!(!w.name().is_empty());
            assert!(
                w.total_iters(Scale::Quick) % (w.tau_pi().0 * w.tau_pi().1) == 0,
                "{}: T must divide the round length",
                w.name()
            );
        }
    }

    #[test]
    fn convex_flags_match_paper() {
        assert!(Workload::LinearMnist.is_convex());
        assert!(Workload::LogisticMnist.is_convex());
        assert!(!Workload::CnnMnist.is_convex());
        assert_eq!(Workload::LinearMnist.tau_pi(), (10, 2));
        assert_eq!(Workload::VggCifar.tau_pi(), (20, 2));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.train_per_class() < Scale::Paper.train_per_class());
        assert!(Scale::Quick.iters_nonconvex() < Scale::Paper.iters_nonconvex());
    }

    #[test]
    fn fault_scenarios_parse_and_validate() {
        for (name, scenario) in [
            ("none", FaultScenario::None),
            ("flaky", FaultScenario::Flaky),
            ("hostile", FaultScenario::Hostile),
        ] {
            assert_eq!(FaultScenario::from_name(name), scenario);
            assert_eq!(scenario.name(), name);
            scenario
                .plan()
                .validate()
                .unwrap_or_else(|e| panic!("{name} plan invalid: {e}"));
        }
        assert!(FaultScenario::None.plan().is_empty());
        assert!(!FaultScenario::Flaky.plan().is_empty());
    }

    #[test]
    fn adversary_scenarios_parse_and_validate() {
        for (name, scenario) in [
            ("none", AdversaryScenario::None),
            ("sign_flip", AdversaryScenario::SignFlip),
            ("momentum_poison", AdversaryScenario::MomentumPoison),
        ] {
            assert_eq!(AdversaryScenario::from_name(name), scenario);
            assert_eq!(scenario.name(), name);
            for workers in [1, 4, 8] {
                let plan = scenario.plan(workers);
                plan.validate()
                    .unwrap_or_else(|e| panic!("{name} plan invalid: {e}"));
                if scenario == AdversaryScenario::None {
                    assert!(plan.is_empty());
                } else {
                    // A strict minority, and at least one Byzantine worker.
                    assert!(!plan.is_empty());
                    assert!(plan.byzantine.len() <= (workers / 4).max(1));
                }
            }
        }
    }

    #[test]
    fn defenses_parse_and_validate() {
        for name in ["mean", "trimmed", "median", "clip"] {
            defense_from_name(name)
                .validate()
                .unwrap_or_else(|e| panic!("{name} defense invalid: {e}"));
        }
        assert_eq!(defense_from_name("mean"), RobustAggregator::Mean);
    }
}
