//! Declarative experiment specs: a JSON file fully describes one run
//! (workload, algorithm, topology, hyper-parameters), so experiments are
//! shareable and re-runnable without writing Rust — the `run_spec` binary
//! executes them.

use serde::{Deserialize, Serialize};

use hieradmo_core::algorithms::table2_lineup;
use hieradmo_core::{RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;

use crate::harness::{run_partitioned, Outcome};
use crate::scenarios::{Scale, Workload};

/// A complete experiment description.
///
/// # Example
///
/// ```
/// use hieradmo_bench::spec::ExperimentSpec;
///
/// let json = r#"{
///     "workload": "logistic-mnist",
///     "algorithm": "HierAdMo",
///     "edges": 2,
///     "workers_per_edge": 2,
///     "seed": 7
/// }"#;
/// let spec = ExperimentSpec::from_json(json).unwrap();
/// assert_eq!(spec.algorithm, "HierAdMo");
/// assert_eq!(spec.edges, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Workload name (see [`Workload::from_name`]).
    pub workload: String,
    /// Algorithm name (a Table II row label).
    pub algorithm: String,
    /// Experiment scale: `"quick"` (default) or `"paper"`.
    #[serde(default = "default_scale")]
    pub scale: String,
    /// Number of edge nodes.
    pub edges: usize,
    /// Workers per edge node.
    pub workers_per_edge: usize,
    /// Classes per worker for the x-class partition (defaults to the
    /// workload's Table II setting).
    #[serde(default)]
    pub noniid_classes: Option<usize>,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
    /// Full run-config override; when absent the workload's Table II
    /// settings apply.
    #[serde(default)]
    pub config: Option<RunConfig>,
}

fn default_scale() -> String {
    "quick".to_string()
}

impl ExperimentSpec {
    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec fields always serialize")
    }

    /// Resolves and executes the experiment.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown algorithm names or invalid topology
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if the resolved run itself fails (mirrors
    /// [`run_partitioned`]).
    pub fn execute(&self) -> Result<Outcome, String> {
        let workload = Workload::from_name(&self.workload);
        let scale = match self.scale.as_str() {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            other => return Err(format!("unknown scale {other}")),
        };
        let lineup = table2_lineup(0.01, 0.5, 0.5);
        let algo: &dyn Strategy = lineup
            .iter()
            .find(|a| a.name() == self.algorithm)
            .map(|a| a.as_ref())
            .ok_or_else(|| {
                format!(
                    "unknown algorithm {}; valid: {}",
                    self.algorithm,
                    lineup
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?;
        if self.edges == 0 || self.workers_per_edge == 0 {
            return Err("edges and workers_per_edge must be positive".into());
        }

        let tt = workload.dataset(scale, self.seed);
        let model = workload.model(&tt.train, self.seed.wrapping_add(100));
        let workers = self.edges * self.workers_per_edge;
        let x = self
            .noniid_classes
            .unwrap_or_else(|| workload.noniid_classes(tt.train.num_classes()));
        let shards = x_class_partition(&tt.train, workers, x, self.seed.wrapping_add(7));

        let cfg = self.config.clone().unwrap_or_else(|| {
            let (tau, pi) = workload.tau_pi();
            let total = workload.total_iters(scale);
            RunConfig {
                tau,
                pi,
                total_iters: total,
                batch_size: scale.batch_size(),
                eval_every: (total / 8).max(1),
                seed: self.seed,
                ..RunConfig::default()
            }
        });
        Ok(run_partitioned(
            algo, &model, &shards, &tt.test, &cfg, self.edges,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            workload: "logistic-mnist".into(),
            algorithm: "HierAdMo".into(),
            scale: "quick".into(),
            edges: 2,
            workers_per_edge: 2,
            noniid_classes: Some(5),
            seed: 3,
            config: Some(RunConfig {
                tau: 5,
                pi: 2,
                total_iters: 50,
                batch_size: 8,
                eval_every: 50,
                ..RunConfig::default()
            }),
        }
    }

    #[test]
    fn json_round_trips_with_defaults() {
        let s = spec();
        let back = ExperimentSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Minimal JSON applies defaults.
        let minimal = ExperimentSpec::from_json(
            r#"{"workload":"logistic-mnist","algorithm":"FedAvg","edges":1,"workers_per_edge":4}"#,
        )
        .unwrap();
        assert_eq!(minimal.scale, "quick");
        assert_eq!(minimal.seed, 0);
        assert!(minimal.config.is_none());
    }

    #[test]
    fn executes_end_to_end() {
        let out = spec().execute().unwrap();
        assert_eq!(out.algorithm, "HierAdMo");
        assert!(out.accuracy > 0.0);
    }

    #[test]
    fn reports_unknown_names() {
        let mut s = spec();
        s.algorithm = "NoSuchAlgo".into();
        let err = s.execute().unwrap_err();
        assert!(err.contains("unknown algorithm"));
        let mut s = spec();
        s.scale = "huge".into();
        assert!(s.execute().unwrap_err().contains("unknown scale"));
    }
}
