//! Assembly code: partition → topology → run, for both architectures.

use hieradmo_core::strategy::Tier;
use hieradmo_core::{run, RunConfig, RunResult, Strategy};
use hieradmo_data::partition::x_class_partition;
use hieradmo_data::Dataset;
use hieradmo_metrics::ConvergenceCurve;
use hieradmo_topology::Hierarchy;

use crate::scenarios::{Scale, Workload};

/// One algorithm's result on one workload.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Algorithm name.
    pub algorithm: String,
    /// Final test accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Full convergence curve.
    pub curve: ConvergenceCurve,
    /// Mean adapted `γℓ` per edge aggregation (HierAdMo diagnostics).
    pub gamma_trace: Vec<(usize, f32)>,
}

impl From<RunResult> for Outcome {
    fn from(r: RunResult) -> Self {
        Outcome {
            accuracy: r.curve.final_accuracy().unwrap_or(0.0),
            algorithm: r.algorithm,
            curve: r.curve,
            gamma_trace: r.gamma_trace,
        }
    }
}

/// Paper defaults for Table II: 4 workers, 2 edges × 2 workers.
pub const TABLE2_EDGES: usize = 2;
/// Workers per edge in the Table II topology.
pub const TABLE2_WORKERS_PER_EDGE: usize = 2;

/// Runs `strategy` on `workload` at `scale`, handling the two-tier /
/// three-tier topology split per the paper's fairness rule (two-tier
/// `τ = τ₃·π₃`, same data shards).
///
/// `seed` controls data generation, partitioning, model init and batching.
///
/// # Panics
///
/// Panics if the run fails (bad config combinations are programmer errors
/// in experiment code).
pub fn run_on_scenario(
    strategy: &dyn Strategy,
    workload: Workload,
    scale: Scale,
    seed: u64,
) -> Outcome {
    let tt = workload.dataset(scale, seed);
    let model = workload.model(&tt.train, seed.wrapping_add(100));
    let (tau, pi) = workload.tau_pi();
    let cfg = RunConfig {
        tau,
        pi,
        total_iters: workload.total_iters(scale),
        batch_size: scale.batch_size(),
        eval_every: (workload.total_iters(scale) / 8).max(1),
        seed,
        ..RunConfig::default()
    };
    let n_workers = TABLE2_EDGES * TABLE2_WORKERS_PER_EDGE;
    let x = workload.noniid_classes(tt.train.num_classes());
    let shards = x_class_partition(&tt.train, n_workers, x, seed.wrapping_add(7));
    run_partitioned(strategy, &model, &shards, &tt.test, &cfg, TABLE2_EDGES)
}

/// Runs a strategy on pre-partitioned shards, assembling the right
/// topology for its tier.
///
/// For three-tier strategies the shards are grouped into `edges` equal
/// groups; two-tier strategies get a flat topology over the same shards
/// with the `π`-folded schedule.
///
/// # Panics
///
/// Panics if the shard count is not divisible by `edges`, or the run
/// fails.
pub fn run_partitioned(
    strategy: &dyn Strategy,
    model: &hieradmo_models::Sequential,
    shards: &[Dataset],
    test: &Dataset,
    cfg: &RunConfig,
    edges: usize,
) -> Outcome {
    let n = shards.len();
    let (hierarchy, cfg) = match strategy.tier() {
        Tier::Three => {
            assert_eq!(n % edges, 0, "{n} shards cannot split into {edges} edges");
            (Hierarchy::balanced(edges, n / edges), cfg.clone())
        }
        Tier::Two => (Hierarchy::two_tier(n), cfg.two_tier_equivalent()),
    };
    run(strategy, model, &hierarchy, shards, test, &cfg)
        .unwrap_or_else(|e| panic!("{} run failed: {e}", strategy.name()))
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hieradmo_core::algorithms::{FedAvg, HierAdMo};

    #[test]
    fn three_and_two_tier_strategies_share_the_harness() {
        // Tiny scale: prove the assembly works end to end for both tiers.
        let hier = HierAdMo::adaptive(0.05, 0.5);
        let out3 = run_on_scenario(&hier, Workload::LogisticMnist, Scale::Quick, 5);
        assert!(out3.accuracy > 0.3, "3-tier acc = {}", out3.accuracy);

        let fedavg = FedAvg::new(0.05);
        let out2 = run_on_scenario(&fedavg, Workload::LogisticMnist, Scale::Quick, 5);
        assert!(out2.accuracy > 0.2, "2-tier acc = {}", out2.accuracy);
    }
}
