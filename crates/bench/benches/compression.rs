//! Compression and wire-protocol micro-benchmarks: cost of compressing a
//! model-sized update and of encoding/decoding protocol frames.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hieradmo_core::compression::Compression;
use hieradmo_netsim::proto::Message;
use hieradmo_tensor::Vector;

fn model_vector(dim: usize) -> Vector {
    (0..dim).map(|i| ((i as f32) * 0.37).sin()).collect()
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    let dim = 50_000;
    let v = model_vector(dim);
    for (label, scheme) in [
        ("top_k_10pct", Compression::TopK { k: dim / 10 }),
        ("random_k_10pct", Compression::RandomK { k: dim / 10 }),
        ("uniform_8bit", Compression::Uniform { bits: 8 }),
        ("uniform_2bit", Compression::Uniform { bits: 2 }),
    ] {
        group.bench_with_input(BenchmarkId::new(label, dim), &v, |b, v| {
            b.iter(|| scheme.compress(v, 1))
        });
    }
    group.finish();
}

fn bench_proto(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_protocol");
    let dim = 50_000;
    let msg = Message::WorkerUpload {
        sender: 1,
        round: 9,
        y: model_vector(dim),
        x: model_vector(dim),
        grad_sum: model_vector(dim),
        y_sum: model_vector(dim),
    };
    group.bench_function("encode_worker_upload_50k", |b| b.iter(|| msg.encode()));
    let frame = msg.encode();
    group.bench_function("decode_worker_upload_50k", |b| {
        b.iter(|| Message::decode(&frame).expect("valid frame"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_compression, bench_proto
}
criterion_main!(benches);
