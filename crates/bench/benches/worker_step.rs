//! Worker local-step cost: one NAG iteration (Algorithm 1 lines 5–6),
//! including the mini-batch gradient, per model family — plus a
//! thread-count sweep over a full tick loop so the persistent pool's win
//! over serial stepping shows up in the bench trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_bench::harness::run_partitioned;
use hieradmo_bench::{Scale, Workload};
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::{state::WorkerState, RunConfig, Strategy};
use hieradmo_data::partition::x_class_partition;
use hieradmo_models::Model;
use hieradmo_tensor::Vector;

fn bench_local_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_local_step");
    let algo = HierAdMo::adaptive(0.01, 0.5);
    for (label, workload) in [
        ("logistic_mnist", Workload::LogisticMnist),
        ("cnn_mnist", Workload::CnnMnist),
    ] {
        let tt = workload.dataset(Scale::Quick, 1);
        let model = workload.model(&tt.train, 1);
        let batch: Vec<usize> = (0..8).collect();
        group.bench_function(label, |b| {
            let mut worker = WorkerState::new(&model.params());
            let mut m = model.clone();
            b.iter(|| {
                let mut grad = |p: &Vector, out: &mut Vector| {
                    m.set_params(p);
                    m.loss_and_grad_into(&tt.train, &batch, out);
                };
                algo.local_step(1, &mut worker, &mut grad);
            })
        });
    }
    group.finish();
}

/// Full worker-step loops (τ·π = one cloud round, 8 workers) across
/// execution-engine thread counts. Curves are bitwise identical across the
/// sweep; only wall-clock should move.
fn bench_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_steps_threads");
    let workload = Workload::LogisticMnist;
    let tt = workload.dataset(Scale::Quick, 1);
    let model = workload.model(&tt.train, 1);
    let shards = x_class_partition(&tt.train, 8, 5, 1);
    let algo = HierAdMo::adaptive(0.01, 0.5);
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = vec![1usize, 2, 4, max];
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        let cfg = RunConfig {
            tau: 5,
            pi: 2,
            total_iters: 10,
            batch_size: 8,
            eval_every: 10,
            threads: Some(threads),
            ..RunConfig::default()
        };
        group.bench_function(format!("round_t{threads}"), |b| {
            b.iter(|| run_partitioned(&algo, &model, &shards, &tt.test, &cfg, 2))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_local_step, bench_thread_sweep
}
criterion_main!(benches);
