//! Worker local-step cost: one NAG iteration (Algorithm 1 lines 5–6),
//! including the mini-batch gradient, per model family.

use criterion::{criterion_group, criterion_main, Criterion};
use hieradmo_bench::{Scale, Workload};
use hieradmo_core::algorithms::HierAdMo;
use hieradmo_core::{state::WorkerState, Strategy};
use hieradmo_models::Model;
use hieradmo_tensor::Vector;

fn bench_local_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_local_step");
    let algo = HierAdMo::adaptive(0.01, 0.5);
    for (label, workload) in [
        ("logistic_mnist", Workload::LogisticMnist),
        ("cnn_mnist", Workload::CnnMnist),
    ] {
        let tt = workload.dataset(Scale::Quick, 1);
        let model = workload.model(&tt.train, 1);
        let batch: Vec<usize> = (0..8).collect();
        group.bench_function(label, |b| {
            let mut worker = WorkerState::new(&model.params());
            let mut m = model.clone();
            b.iter(|| {
                let mut grad = |p: &Vector| {
                    m.set_params(p);
                    m.loss_and_grad(&tt.train, &batch).1
                };
                algo.local_step(1, &mut worker, &mut grad);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_local_step
}
criterion_main!(benches);
